//! Offline vendored shim of `serde`.
//!
//! The build container has no network access to crates.io. This workspace
//! only uses serde as derive annotations on netsim config types (no
//! serializer backend crate is present), so the shim provides marker traits
//! and no-op derives: `#[derive(Serialize, Deserialize)]` compiles and the
//! trait bounds exist, but there is no data format to drive them. If a real
//! serializer is ever added, replace this shim with the real crate.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Namespace mirror of `serde::de` for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
