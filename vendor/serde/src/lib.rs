//! Offline vendored shim of `serde`, upgraded from marker traits to a real
//! (minimal) serialization framework.
//!
//! The build container has no network access to crates.io, so this crate
//! implements the subset of serde's surface this workspace needs, driven by
//! a self-describing [`Value`] tree instead of serde's visitor machinery:
//!
//! - [`Serialize`] converts a type into a [`Value`];
//! - [`Deserialize`] reconstructs a type from a [`Value`];
//! - `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates field-by-field impls for named structs and unit enums;
//! - the sibling `serde_json` shim renders a [`Value`] to JSON text and
//!   parses it back.
//!
//! Object fields preserve insertion order, so serialization is fully
//! deterministic — a property the benchmark baseline files
//! (`BENCH_<profile>.json`) rely on for byte-identical re-runs.

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the shim's data model, playing the
/// role of both `serde::Serializer` input and `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (and `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative integers land here).
    Int(i64),
    /// An unsigned integer (all non-negative integers land here).
    UInt(u64),
    /// A floating-point number. Non-finite values are preserved (the JSON
    /// backend writes them as the extended tokens `Infinity` / `-Infinity`
    /// / `NaN`, which the parser accepts back).
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Array(Vec<Value>),
    /// A map with *insertion-ordered* string keys (derived structs push
    /// fields in declaration order, so output is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside [`Value::Str`], if that is what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the variant (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serializes a type into the shim's [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from the shim's [`Value`] data model. The lifetime
/// parameter mirrors real serde's `Deserialize<'de>` so existing bounds
/// keep compiling; this shim always deserializes owned data.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, de::Error>;

    /// Called when a struct field is absent from the serialized object.
    /// Defaults to an error; `Option<T>` overrides it to produce `None`,
    /// giving optional fields for free.
    fn from_missing_field(field: &str) -> Result<Self, de::Error> {
        Err(de::Error::missing_field(field))
    }
}

/// Deserialization support: the error type and helpers the derive macro
/// generates calls to.
pub mod de {
    use super::{Deserialize, Value};
    use std::fmt;

    /// Why a [`Value`] could not be turned back into a type.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error(String);

    impl Error {
        /// A free-form deserialization error.
        pub fn custom(msg: impl fmt::Display) -> Error {
            Error(msg.to_string())
        }

        /// The value had the wrong variant for the requested type.
        pub fn type_mismatch(expected: &str, got: &Value) -> Error {
            Error(format!("expected {expected}, got {}", got.kind()))
        }

        /// A struct field was absent.
        pub fn missing_field(field: &str) -> Error {
            Error(format!("missing field `{field}`"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Marker for types deserializable without borrowing from the input —
    /// everything here, since the shim always produces owned data.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// Extracts struct field `name` from `value` (derive-generated structs
    /// call this once per field). Missing fields defer to
    /// [`Deserialize::from_missing_field`], so `Option` fields tolerate
    /// absence.
    pub fn field<T: DeserializeOwned>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Object(_) => match value.get(name) {
                Some(v) => {
                    T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
                }
                None => T::from_missing_field(name),
            },
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

pub use de::DeserializeOwned;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let n = match *value {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => return Err(de::Error::type_mismatch("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let n = match *value {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| de::Error::custom(format!("{n} overflows i64")))?,
                    ref other => return Err(de::Error::type_mismatch("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match *value {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    ref other => Err(de::Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, de::Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for BTreeMap<String, T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
                .collect(),
            other => Err(de::Error::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

impl fmt::Display for Value {
    /// Debug-ish display; use the `serde_json` shim for real JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(5)).unwrap(), Some(5));
        assert_eq!(Option::<u64>::from_missing_field("x").unwrap(), None);
        assert!(u64::from_missing_field("x").is_err());
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn object_get_preserves_order() {
        let obj = Value::Object(vec![
            ("b".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        assert_eq!(obj.get("a"), Some(&Value::UInt(2)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn float_accepts_integers() {
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
    }

    #[test]
    fn nonfinite_floats_preserved_in_model() {
        let v = f64::INFINITY.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), f64::INFINITY);
        let nan = f64::NAN.to_value();
        assert!(f64::from_value(&nan).unwrap().is_nan());
    }
}
