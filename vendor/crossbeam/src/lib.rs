//! Offline vendored shim of `crossbeam`, providing `crossbeam::channel`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the channel subset it uses: `unbounded()`, cloneable `Sender`s
//! that are `Sync` (shared across scoped threads by reference), blocking
//! `recv`, and `recv_timeout` with `RecvTimeoutError::{Timeout,
//! Disconnected}` semantics. Backed by a `Mutex<VecDeque>` + `Condvar`;
//! adequate for the simulator's rank-to-rank message traffic, which is
//! latency-tolerant by design (virtual time, not wall time).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Matches the real crate: does not require `T: Debug`.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with the channel still empty but connected.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but still connected.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect instead of sleeping forever.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, (0..100).sum::<u32>());
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(15));
            drop(tx);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
