//! Offline vendored shim of the `criterion` benchmark harness.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input` / `iter` / `iter_custom`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a deliberately simple fixed-budget loop: each benchmark
//! warms up, then runs batches until the measurement budget is spent, and
//! the median per-iteration time is reported together with the derived
//! throughput. That is enough for before/after comparisons on one machine
//! (the way this repo uses benches); it does not attempt criterion's
//! statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter display.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Measured per-iteration time, filled by `iter`/`iter_custom`.
    elapsed_per_iter_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Times `f`, called repeatedly, and records the median batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow until one batch takes
        // at least ~1/20 of the warm-up budget.
        let mut batch = 1u64;
        let calibration_floor = self.warm_up_time.as_secs_f64() / 20.0;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed().as_secs_f64();
            if took >= calibration_floor || batch >= 1 << 30 {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut samples = Vec::new();
        let budget = self.measurement_time;
        let started = Instant::now();
        while started.elapsed() < budget || samples.len() < 3 {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(s.elapsed().as_secs_f64() / batch as f64);
            if samples.len() >= 1000 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        *self.elapsed_per_iter_ns = samples[samples.len() / 2] * 1e9;
    }

    /// Lets the closure time `iters` iterations itself and return the total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate an iteration count that fills the measurement budget.
        let probe = f(1).as_secs_f64().max(1e-9);
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = (budget / 5.0 / probe).clamp(1.0, 1e7) as u64;
        let mut samples = Vec::new();
        for _ in 0..5 {
            let took = f(per_sample).as_secs_f64() / per_sample as f64;
            samples.push(took);
        }
        samples.sort_by(f64::total_cmp);
        *self.elapsed_per_iter_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim keys on time budget, not count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility with criterion group configuration.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark harness.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for compatibility; the shim keys on time budget, not count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for compatibility; the shim takes no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, None, |b| f(b));
        self
    }

    fn run_one<F>(&mut self, label: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut per_iter_ns = f64::NAN;
        {
            let mut bencher = Bencher {
                measurement_time: self.measurement_time,
                warm_up_time: self.warm_up_time,
                elapsed_per_iter_ns: &mut per_iter_ns,
            };
            f(&mut bencher);
        }
        let rate = match throughput {
            Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
                let gib_s = n as f64 / (per_iter_ns * 1e-9) / (1u64 << 30) as f64;
                format!("  {gib_s:>9.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
                let elem_s = n as f64 / (per_iter_ns * 1e-9);
                format!("  {elem_s:>12.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{label:<44} {:>12} ns/iter{rate}", format_ns(per_iter_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e6 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("xor", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc
            })
        });
        group.finish();
    }

    #[test]
    fn iter_custom_runs() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                let mut acc = 0u64;
                for i in 0..iters {
                    acc = acc.wrapping_add(black_box(i));
                }
                black_box(acc);
                start.elapsed()
            })
        });
    }
}
