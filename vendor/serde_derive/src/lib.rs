//! No-op derive macros backing the vendored `serde` shim: the attributes
//! compile away to marker-trait impls with no serialization logic, since no
//! data-format crate exists in this offline workspace.

use proc_macro::TokenStream;

/// Emits a marker `Serialize` impl for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize", false)
}

/// Emits a marker `Deserialize` impl for the annotated type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize", true)
}

/// Minimal parse: find the type name after `struct`/`enum` and emit
/// `impl serde::Trait for Name {}`. Generic types are not handled — the
/// netsim config types this workspace derives on are all concrete.
fn marker_impl(input: TokenStream, trait_name: &str, lifetime: bool) -> TokenStream {
    let source = input.to_string();
    let name = type_name(&source).unwrap_or_else(|| {
        panic!("serde_derive shim: could not find struct/enum name in `{source}`")
    });
    let imp = if lifetime {
        format!("impl<'de> serde::{trait_name}<'de> for {name} {{}}")
    } else {
        format!("impl serde::{trait_name} for {name} {{}}")
    };
    imp.parse().expect("generated impl must tokenize")
}

fn type_name(source: &str) -> Option<String> {
    let mut tokens = source.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        if tok == "struct" || tok == "enum" {
            let raw = tokens.next()?;
            let name: String = raw
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                return None;
            }
            return Some(name);
        }
    }
    None
}
