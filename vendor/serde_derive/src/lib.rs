//! Derive macros backing the vendored `serde` shim.
//!
//! Unlike the original no-op version, these derives generate *real*
//! field-by-field `Serialize`/`Deserialize` impls against the shim's
//! `Value` data model:
//!
//! - **named-field structs** serialize to an insertion-ordered object with
//!   one entry per field (declaration order — deterministic output) and
//!   deserialize via `serde::de::field`, which lets `Option` fields
//!   tolerate absence;
//! - **unit structs** serialize to an empty object;
//! - **enums with unit variants** serialize to the variant name as a
//!   string and deserialize by exact-match on it.
//!
//! Tuple structs, enums with payloads, and generic types are rejected with
//! a compile-time panic: nothing in this workspace derives them, and the
//! parser (a hand-rolled `TokenTree` walk — no `syn` in the offline
//! container) stays honest about its limits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Parsed::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut fields: Vec<(String, serde::Value)> = \
                             Vec::with_capacity({n});\n\
                         {pushes}\
                         serde::Value::Object(fields)\n\
                     }}\n\
                 }}",
                n = fields.len()
            )
        }
        Parsed::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("generated Serialize impl must tokenize")
}

/// Derives `serde::Deserialize` for a named-field struct or unit enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Parsed::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::de::field(value, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &serde::Value) \
                         -> Result<Self, serde::de::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &serde::Value) \
                         -> Result<Self, serde::de::Error> {{\n\
                         match value.as_str() {{\n\
                             Some(s) => match s {{\n\
                                 {arms}\
                                 other => Err(serde::de::Error::custom(format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             None => Err(serde::de::Error::type_mismatch(\n\
                                 \"string ({name} variant)\", value)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("generated Deserialize impl must tokenize")
}

/// What the derive input turned out to be.
enum Parsed {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Parses the derive input by walking `TokenTree`s directly (attributes and
/// doc comments arrive as `#[...]` groups and are skipped atomically, so
/// braces inside doc text cannot confuse the parser).
fn parse(input: TokenStream) -> Parsed {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(i)) => {
                let s = i.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde_derive shim: unexpected token `{s}` before struct/enum");
            }
            Some(other) => panic!("serde_derive shim: unexpected token `{other}`"),
            None => panic!("serde_derive shim: ran out of tokens before struct/enum"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break TokenStream::new(),
            Some(_) => continue, // e.g. trailing tokens before the body
            None => panic!("serde_derive shim: `{name}` has no body"),
        }
    };
    if kind == "struct" {
        Parsed::Struct {
            name,
            fields: parse_struct_fields(body),
        }
    } else {
        Parsed::Enum {
            name,
            variants: parse_enum_variants(body),
        }
    }
}

/// Extracts field names from a named-field struct body: per field, skip
/// attributes and visibility, take the identifier before `:`, then skip the
/// type — tracking `<`/`>` depth so commas inside generics (e.g.
/// `Option<Foo>`, `HashMap<K, V>`) do not end the field early.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(other) => {
                    panic!("serde_derive shim: unexpected token `{other}` in struct body")
                }
                None => return fields,
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Extracts variant names from an enum body, rejecting payload-carrying
/// variants (nothing in this workspace serializes them).
fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let variant = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => {
                    panic!("serde_derive shim: unexpected token `{other}` in enum body")
                }
                None => return variants,
            }
        };
        if let Some(TokenTree::Group(_)) = tokens.peek() {
            panic!(
                "serde_derive shim: enum variant `{variant}` carries a payload; \
                 only unit variants are supported"
            );
        }
        variants.push(variant);
    }
}
