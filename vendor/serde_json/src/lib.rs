//! Offline vendored JSON backend for the `serde` shim: renders a
//! [`serde::Value`] to JSON text and parses it back.
//!
//! Guarantees the benchmark pipeline relies on:
//!
//! - **Deterministic output.** Object fields keep insertion order and `f64`
//!   values print via Rust's shortest-round-trip formatting, so serializing
//!   the same data twice yields byte-identical text.
//! - **Lossless floats.** The shortest-round-trip form parses back to the
//!   exact same bit pattern. Non-finite values — which standard JSON cannot
//!   express but the cost models use (`bandwidth: inf` for free links) —
//!   are written as the extended tokens `Infinity`, `-Infinity` and `NaN`,
//!   and the parser accepts them back (a documented deviation, in the
//!   spirit of JSON5).
//! - **Integer fidelity.** Integers stay integers (`i64`/`u64`), never
//!   silently routed through `f64`.

use serde::{de, DeserializeOwned, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Error {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{:?}` prints the shortest string that round-trips to the same
        // f64, and always includes a `.` or exponent so the parser reads
        // it back as a float (e.g. `1.0`, not `1`).
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses JSON text into `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the generic [`Value`] model.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            // Extended tokens for values standard JSON cannot express.
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed — the
                            // writer never emits them (it escapes only
                            // control characters, which are in the BMP).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up one and
                    // take the full code point.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad integer {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad integer {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        assert_eq!(
            parse_value_str("Infinity").unwrap(),
            Value::Float(f64::INFINITY)
        );
        assert_eq!(
            parse_value_str("-Infinity").unwrap(),
            Value::Float(f64::NEG_INFINITY)
        );
        assert!(matches!(
            parse_value_str("NaN").unwrap(),
            Value::Float(f) if f.is_nan()
        ));
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "Infinity");
    }

    #[test]
    fn float_precision_is_exact() {
        for f in [0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE, 1e300] {
            let text = to_string(&f).unwrap();
            let back = parse_value_str(&text).unwrap();
            assert_eq!(back, Value::Float(f), "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":false}}"#;
        let v = parse_value_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value_str(r#"{"a":[1,2],"b":"s"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("line\nquote\"back\\slash\ttab\u{1}".into());
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&text).unwrap(), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::Str("ℓm × π — ≥".into());
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("{} x").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("{\"a\"}").is_err());
    }

    #[test]
    fn big_integers_survive() {
        let big = u64::MAX;
        let text = to_string(&Value::UInt(big)).unwrap();
        assert_eq!(parse_value_str(&text).unwrap(), Value::UInt(big));
    }
}
