//! Offline vendored shim of `parking_lot` over `std::sync` primitives.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the subset it uses: `Mutex` whose `lock()` returns a guard
//! directly (no poison `Result`), and `Condvar` whose `wait` reblocks the
//! guard in place instead of consuming and returning it. Poisoned std locks
//! are recovered rather than propagated, matching parking_lot's
//! no-poisoning behavior.

use std::ops::{Deref, DerefMut};
use std::sync::{self, Condvar as StdCondvar};

/// A mutex without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back
    // while the caller keeps holding this wrapper by `&mut`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is reacquired into the same guard before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard invariant");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Like [`Condvar::wait`] with an upper bound; returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard invariant");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_wait_in_place() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let observer = Arc::clone(&shared);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*observer;
            let mut flag = lock.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
            *flag
        });
        thread::sleep(Duration::from_millis(10));
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        assert!(cv.wait_for(&mut guard, Duration::from_millis(5)));
    }
}
