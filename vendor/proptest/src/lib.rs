//! Offline vendored shim of the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`Strategy`] trait
//! with `prop_map`, `any::<T>()`, range and tuple strategies, [`Just`],
//! `prop_oneof!`, `proptest::collection::vec`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert*` macros.
//!
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name) so failures reproduce across runs. The shim
//! does not shrink counterexamples: a failing case reports the case number
//! and the assertion message.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (test identity).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A failed `prop_assert*` inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Number of cases to run per property (and other knobs proptest exposes).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.next_usize_below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_sint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_strategy_sint_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification: a fixed count or a range of counts.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty size range");
            start + (rng.next_u64() % (end - start + 1) as u64) as usize
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest {}: case {} of {} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0usize..5, 0usize..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn oneof_picks_from_arms(tag in prop_oneof![Just(Tag::A), Just(Tag::B)]) {
            prop_assert!(tag == Tag::A || tag == Tag::B);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_header_is_honored(_x in 0usize..2) {
            // Runs, with the reduced case count, without panicking.
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("label");
        let mut b = crate::TestRng::deterministic("label");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
