//! Offline vendored shim of the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small API surface it actually uses: `StdRng`, `SeedableRng`,
//! the `Rng`/`RngExt` extension trait (`random`, `random_range`,
//! `fill_bytes`), and the `rng()` entropy source. The generator is
//! SplitMix64 — statistically solid for tests and simulations, not intended
//! as a cryptographic RNG (key/nonce material in this workspace only needs
//! uniqueness and reproducibility, not secrecy against prediction).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s and raw bytes.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing generator methods (the rand 0.9+ `Rng` extension trait).
pub trait Rng: RngCore {
    /// Draws one uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept for callers written against the split `RngExt` trait name.
pub use crate::Rng as RngExt;

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator by drawing seed material from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// A generator freshly seeded from process-local entropy.
    pub type ThreadRng = StdRng;
}

/// Returns a generator seeded from process-local entropy (time, process id,
/// and a per-call counter), one fresh instance per call.
pub fn rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let uniquifier = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let seed = nanos ^ uniquifier ^ ((std::process::id() as u64) << 32);
    SeedableRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        RngCore::fill_bytes(&mut rng, &mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn entropy_rngs_differ() {
        let mut a = super::rng();
        let mut b = super::rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
