//! Property-based end-to-end test: a randomly chosen algorithm on a randomly
//! shaped world must satisfy the all-gather postcondition with real bytes
//! and real AES-GCM, and encrypted algorithms must keep the wire clean.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};
use proptest::prelude::*;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0..Algorithm::all().len()).prop_map(|i| Algorithm::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_world_random_algorithm_is_correct(
        algo in arb_algorithm(),
        ell in 1usize..=4,
        nodes in 1usize..=5,
        mapping in prop_oneof![Just(Mapping::Block), Just(Mapping::Cyclic)],
        m in 0usize..100,
        seed in any::<u64>(),
    ) {
        let p = ell * nodes;
        let mut spec = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed },
        );
        spec.capture_wire = true;
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, m).verify(seed);
        });
        if algo.is_encrypted() {
            prop_assert!(
                !report.wiretap.saw_plaintext_frame(),
                "{algo} leaked plaintext on p={p} N={nodes} {mapping} m={m}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// All-gather-v with random per-rank lengths (zeros included) is
    /// bit-exact and wire-clean for every supporting algorithm.
    #[test]
    fn random_lens_allgatherv_is_correct(
        algo_idx in 0usize..8,
        ell in 1usize..=3,
        nodes in 2usize..=4,
        lens_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let supporting: Vec<Algorithm> = Algorithm::all()
            .iter()
            .copied()
            .filter(Algorithm::supports_varying)
            .collect();
        let algo = supporting[algo_idx % supporting.len()];
        let p = ell * nodes;
        // Deterministic pseudo-random lengths from the seed.
        let lens: Vec<usize> = (0..p)
            .map(|r| ((lens_seed.wrapping_mul(r as u64 + 1) >> 17) % 128) as usize)
            .collect();
        let mut spec = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::free(),
            DataMode::Real { seed },
        );
        spec.capture_wire = true;
        let lens2 = lens.clone();
        let report = run(&spec, move |ctx| {
            eag_core::allgatherv(ctx, algo, &lens2).verify(seed);
        });
        if algo.is_encrypted() {
            prop_assert!(!report.wiretap.saw_plaintext_frame(), "{algo} lens={lens:?}");
        }
    }
}
