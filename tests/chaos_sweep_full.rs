//! Full chaos sweep as a test: every encrypted algorithm × every fault kind
//! × several seeds, plus the canonical mix, at p = 16 over 8 nodes.
//!
//! Heavyweight by design — gated behind the `chaos` cargo feature:
//! `cargo test -p eag-integration --features chaos --test chaos_sweep_full`

use eag_core::Algorithm;
use eag_integration::chaos_run;
use eag_netsim::{FaultKind, FaultPlan};

const SEEDS: &[u64] = &[0xC0FFEE, 1, 0xDEAD_BEEF];

fn assert_sweep(label: &str, plan: FaultPlan) {
    for &algo in Algorithm::encrypted_all() {
        let r = chaos_run(algo, 16, 8, 128, plan.clone());
        assert!(
            r.byte_identical,
            "{algo} under {label}: not byte-identical ({:?})",
            r.error
        );
    }
}

#[test]
fn every_fault_kind_at_two_percent_recovers() {
    for &seed in SEEDS {
        for &kind in FaultKind::all() {
            assert_sweep(
                &format!("{} 20‰ seed {seed:#x}", kind.label()),
                FaultPlan::only(kind, 20, seed),
            );
        }
    }
}

#[test]
fn canonical_mix_recovers_across_seeds() {
    for &seed in SEEDS {
        assert_sweep(
            &format!("drop+tamper 10‰ seed {seed:#x}"),
            FaultPlan::drop_and_tamper(10, 10, seed),
        );
    }
}

#[test]
fn adversarial_tamper_recovers_across_seeds() {
    for &seed in SEEDS {
        let mut plan = FaultPlan::only(FaultKind::Tamper, 20, seed);
        plan.adversarial_tamper = true;
        assert_sweep(&format!("adversarial tamper 20‰ seed {seed:#x}"), plan);
    }
}
