//! Multi-tenant stress: many small concurrent encrypted all-gathers pushed
//! through one [`SessionManager`] — mixed cipher suites, mixed algorithms,
//! a cooperative `workers = 1` session in the mix — asserting that every
//! session's output is byte-exact, that no nonce is reused across session
//! wiretaps, that the serialized sweep reproduces bit-identically, and
//! that the whole thing drains without deadlock (blocking admissions over
//! a shared run-permit gate).

use eag_core::{allgather, recover_allgather, Algorithm};
use eag_crypto::Key;
use eag_netsim::{profile, Crash, FaultPlan, Mapping, Topology};
use eag_runtime::{
    AdmitError, CipherSuite, DataMode, RetryPolicy, SessionConfig, SessionManager, WorldSpec,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

const MASTER: [u8; 16] = [0xC0; 16];
const SEED_BASE: u64 = 0xC0FFEE;

fn service(max_live: usize, nic_bandwidth: f64) -> SessionManager {
    let mut cfg = SessionConfig::new(Key::from_bytes(MASTER));
    cfg.max_live = max_live;
    cfg.queue_capacity = 64;
    cfg.gate_width = Some(4); // one shared pool for every live world
    cfg.physical_nodes = 2;
    cfg.nic_bandwidth = nic_bandwidth;
    SessionManager::new(cfg)
}

/// The per-(tenant, index) session shape: cycles algorithms, cipher
/// suites, and message sizes; every 5th session pins `workers = 1` to run
/// as a cooperative single-thread interleave inside the service.
fn session_spec(tenant: u64, idx: u64) -> (WorldSpec, Algorithm, usize, u64) {
    let algos = Algorithm::encrypted_all();
    let algo = algos[(tenant as usize + idx as usize) % algos.len()];
    let suite = CipherSuite::ALL[idx as usize % CipherSuite::ALL.len()];
    let seed = SEED_BASE ^ (tenant << 16) ^ idx;
    let mut spec = WorldSpec::new(
        Topology::new(8, 2, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed },
    );
    spec.suite = suite;
    spec.capture_wire = true;
    if idx % 5 == 4 {
        spec.workers = Some(1);
    }
    let msg = 48 + 16 * (idx as usize % 4);
    (spec, algo, msg, seed)
}

/// What one session left behind: its virtual latency and every wire
/// frame's leading nonce paired with the 16 ciphertext bytes after it.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    latency_us: f64,
    frames: Vec<([u8; 12], [u8; 16])>,
}

/// Admits and runs one session. `force_coop` pins `workers = 1` on every
/// session: a cooperatively-interleaved world reserves shared NICs in a
/// deterministic order, which the bit-reproducibility test depends on
/// (free-threaded worlds race their reservation order under finite NIC
/// bandwidth, which is fine for isolation but not for byte-equality).
fn run_session(mgr: &SessionManager, tenant: u64, idx: u64, force_coop: bool) -> (u64, Outcome) {
    let (mut spec, algo, msg, seed) = session_spec(tenant, idx);
    if force_coop {
        spec.workers = Some(1);
    }
    let session = mgr.admit(tenant).expect("admission under capacity");
    let id = session.id();
    let report = session.run(&spec, move |ctx| {
        // verify() checks the gathered output byte-for-byte against the
        // expected pattern blocks of this session's data seed.
        allgather(ctx, algo, msg).verify(seed);
    });
    let mut frames = Vec::new();
    for f in report.wiretap.frames() {
        let flat = f.bytes.to_vec();
        assert!(flat.len() >= 28, "frame below AEAD framing size");
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&flat[..12]);
        let mut ct = [0u8; 16];
        ct.copy_from_slice(&flat[12..28]);
        frames.push((nonce, ct));
    }
    // The wiretap appends in wall-clock arrival order, which races across
    // rank threads; the frame *set* is the deterministic artifact.
    frames.sort_unstable();
    assert!(!frames.is_empty(), "session captured no inter-node frames");
    (
        id,
        Outcome {
            latency_us: report.latency_us,
            frames,
        },
    )
}

/// The headline stress: 3 tenants x 8 sessions over a 4-slot service with
/// one shared width-4 gate and shared NIC ledgers. Every session's output
/// verifies byte-exactly, blocking admissions all drain (no deadlock), and
/// across the 24 wiretaps no nonce ever pairs with two different
/// ciphertexts — per-session nonce streams must not collide even though
/// all worlds run concurrently over the same fabric.
#[test]
fn concurrent_mixed_suite_sessions_stay_isolated() {
    let mgr = Arc::new(service(4, 5_000.0));
    let outcomes: Arc<Mutex<Vec<(u64, Outcome)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for tenant in 1..=3u64 {
        let mgr = Arc::clone(&mgr);
        let outcomes = Arc::clone(&outcomes);
        handles.push(thread::spawn(move || {
            for idx in 0..8u64 {
                let out = run_session(&mgr, tenant, idx, false);
                outcomes.lock().unwrap().push(out);
            }
        }));
    }
    for h in handles {
        h.join().expect("tenant thread completed without deadlock");
    }

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 24);

    // Cross-session nonce discipline: one global map over all sessions'
    // wire captures. A repeated nonce is only legal as an unmodified
    // forward *within* one session (same session id, same ciphertext).
    let mut seen: HashMap<[u8; 12], (u64, [u8; 16])> = HashMap::new();
    for (id, out) in outcomes.iter() {
        for &(nonce, ct) in &out.frames {
            if let Some(&(prev_id, prev_ct)) = seen.get(&nonce) {
                assert_eq!(
                    (prev_id, prev_ct),
                    (*id, ct),
                    "nonce reused across sessions {prev_id} and {id}"
                );
            } else {
                seen.insert(nonce, (*id, ct));
            }
        }
    }

    let stats = mgr.stats();
    assert_eq!(stats.admitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.shed, 0);
    assert!(
        stats.peak_live <= 4,
        "admission exceeded max_live: {stats:?}"
    );
}

/// A cooperative `workers = 1` session and a default (shared-gate) session
/// running the same collective land on the same virtual latency: the gate
/// only schedules, it never prices, so cooperative interleaving inside the
/// service is an execution detail, not a timing change.
#[test]
fn cooperative_session_matches_shared_gate_latency() {
    let mgr = service(2, f64::INFINITY);
    let (mut spec, algo, msg, seed) = session_spec(1, 0);

    let shared = mgr.admit(1).unwrap();
    let a = shared.run(&spec, move |ctx| {
        allgather(ctx, algo, msg).verify(seed);
    });
    drop(shared);

    spec.workers = Some(1);
    let coop = mgr.admit(1).unwrap();
    let b = coop.run(&spec, move |ctx| {
        allgather(ctx, algo, msg).verify(seed);
    });

    assert_eq!(a.latency_us, b.latency_us);
}

/// Serialized reproducibility: the same 8-session sweep through a fresh
/// single-threaded service is bit-identical across managers — same session
/// ids, same virtual latencies, same wire nonces and ciphertext prefixes.
/// Finite NIC bandwidth keeps the shared ledgers in play; per-session
/// retirement must leave nothing behind to perturb the next session.
#[test]
fn serialized_stress_reproduces_bit_identically() {
    let sweep = || -> Vec<(u64, Outcome)> {
        let mgr = service(1, 2_000.0);
        (0..8u64)
            .map(|idx| run_session(&mgr, 1, idx, true))
            .collect()
    };
    let first = sweep();
    let second = sweep();
    assert_eq!(first, second);
}

/// The world one tenant's crash-recovery session runs: a 6-rank / 2-node
/// crash-tolerant all-gather surviving a two-crash schedule.
fn recovery_spec(seed: u64) -> WorldSpec {
    let mut spec = WorldSpec::new(
        Topology::new(6, 2, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed },
    );
    spec.faults = FaultPlan {
        crashes: vec![Crash::before(0, 0), Crash::before(3, 1)],
        ..FaultPlan::default()
    };
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_millis(20),
        max_attempts: 10,
        backoff: 1.5,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    spec
}

/// Backpressure keeps firing while the service is occupied by a tenant
/// deep in multi-crash recovery: with the only slot held by a session
/// surviving a two-crash schedule (run via `Session::run_crashable`), a
/// flooding second tenant gets a typed `AdmitError::Shed` — never a hang —
/// both while the recovery world is mid-flight and after it retires.
#[test]
fn flooding_tenant_is_shed_while_recovery_occupies_the_service() {
    eag_runtime::quiet_expected_panics();
    let mut cfg = SessionConfig::new(Key::from_bytes(MASTER));
    cfg.max_live = 1;
    cfg.queue_capacity = 0; // every queued admission sheds immediately
    cfg.gate_width = Some(2);
    cfg.physical_nodes = 2;
    let mgr = Arc::new(SessionManager::new(cfg));

    let seed = SEED_BASE ^ 0xA;
    let s1 = mgr.admit(1).expect("empty service admits");
    let started = Arc::new(AtomicBool::new(false));
    let (report_tx, report_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let recovering = {
        let started = Arc::clone(&started);
        thread::spawn(move || {
            let report = s1.run_crashable(&recovery_spec(seed), move |ctx| {
                started.store(true, Ordering::SeqCst);
                let out = recover_allgather(ctx, Algorithm::ORing, 64);
                out.verify(seed);
                out
            });
            report_tx.send(report).unwrap();
            // Hold the session (and its slot) until the main thread has
            // finished probing admission.
            release_rx.recv().unwrap();
        })
    };

    while !started.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    // The recovery world is live and tenant 1 owns the only slot: a
    // flooding tenant must be shed with a typed error, not parked forever.
    match mgr.admit(2).map(|s| s.id()) {
        Err(AdmitError::Shed { tenant: 2, .. }) => {}
        other => panic!("expected Shed during recovery, got {other:?}"),
    }

    let report = report_rx.recv().expect("recovery world completed");
    assert_eq!(report.crashed, vec![0, 3], "both planned crashes fired");
    let failed_sets: Vec<_> = report
        .outputs
        .iter()
        .flatten()
        .map(|out| out.failed.clone())
        .collect();
    assert_eq!(failed_sets.len(), 4, "4 survivors produced output");
    assert!(
        failed_sets.iter().all(|f| f == &failed_sets[0]),
        "survivors diverged on the failed set: {failed_sets:?}"
    );

    // The slot is still held (session not yet retired): shed again.
    assert!(matches!(mgr.admit(2), Err(AdmitError::Shed { .. })));
    release_tx.send(()).unwrap();
    recovering.join().expect("recovery thread");

    let stats = mgr.stats();
    assert_eq!(stats.admitted, 1);
    assert!(stats.shed >= 2, "{stats:?}");
    assert_eq!(stats.completed, 1);
}

/// A tenant parked in the admission queue holds *no* run-gate permits: the
/// shared gate only ever backs running worlds. With the single slot held
/// by a tenant that just finished a crash-recovery world, a second
/// tenant's blocking admission parks — and the gate reads fully free.
/// Releasing the slot un-parks the tenant, whose session then runs
/// normally.
#[test]
fn parked_tenant_holds_no_run_gate_permits() {
    eag_runtime::quiet_expected_panics();
    let mut cfg = SessionConfig::new(Key::from_bytes(MASTER));
    cfg.max_live = 1;
    cfg.queue_capacity = 1;
    cfg.gate_width = Some(2);
    cfg.physical_nodes = 2;
    let mgr = Arc::new(SessionManager::new(cfg));
    let gate = mgr.gate();

    let seed = SEED_BASE ^ 0xB;
    let s1 = mgr.admit(1).expect("empty service admits");
    let report = s1.run_crashable(&recovery_spec(seed), move |ctx| {
        let out = recover_allgather(ctx, Algorithm::OBruck, 64);
        out.verify(seed);
        out
    });
    assert_eq!(report.crashed, vec![0, 3]);
    assert_eq!(
        gate.free_permits(),
        gate.width(),
        "a finished world must return every permit"
    );

    // Tenant 2 parks behind the still-held slot.
    let parked = {
        let mgr = Arc::clone(&mgr);
        thread::spawn(move || {
            let session = mgr.admit(2).expect("parked admission is granted, not shed");
            let spec = WorldSpec::new(
                Topology::new(4, 2, Mapping::Block),
                profile::noleland(),
                DataMode::Real { seed },
            );
            session.run(&spec, move |ctx| {
                allgather(ctx, Algorithm::ORing, 64).verify(seed);
            });
        })
    };
    // Give the admission time to park, then check it consumed nothing
    // from the gate: parked tenants wait on the admission queue, not on
    // run permits.
    thread::sleep(Duration::from_millis(100));
    assert_eq!(
        gate.free_permits(),
        gate.width(),
        "a parked tenant must hold no run-gate permits"
    );

    drop(s1); // frees the slot; the parked tenant is granted and runs
    parked
        .join()
        .expect("parked tenant completed after the slot freed");
    let stats = mgr.stats();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shed, 0);
}

/// Nonce-stream separation by session id: two sessions running the *same*
/// spec (same data seed, suite, algorithm) under one manager get distinct
/// session ids, and their wire nonces must differ even though everything
/// else about the runs — including the virtual latency — is identical.
#[test]
fn same_spec_different_session_ids_use_distinct_nonce_streams() {
    let mgr = service(1, f64::INFINITY);
    let (id_a, a) = run_session(&mgr, 1, 0, false);
    let (id_b, b) = run_session(&mgr, 1, 0, false);
    assert_ne!(id_a, id_b);
    assert_eq!(a.latency_us, b.latency_us);
    assert_ne!(a.frames, b.frames);
}
