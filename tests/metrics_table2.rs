//! Validates the paper's Table II: for every encrypted algorithm, the
//! runtime-measured critical-path metrics (rc, sc, re, se, rd, sd) must
//! equal the closed-form predictions, for powers of two under block-order
//! mapping — the table's stated assumptions.

use eag_bench::tables::table2_rows;
use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

#[test]
fn table2_holds_at_16_over_4() {
    for row in table2_rows(16, 4, 32) {
        assert_eq!(row.predicted, row.measured, "{}", row.algo);
    }
}

#[test]
fn table2_holds_at_64_over_8() {
    for row in table2_rows(64, 8, 17) {
        assert_eq!(row.predicted, row.measured, "{}", row.algo);
    }
}

#[test]
fn table2_holds_at_64_over_16() {
    // N > ℓ: exercises HS1's multi-ciphertext-per-process decryption split.
    for row in table2_rows(64, 16, 8) {
        assert_eq!(row.predicted, row.measured, "{}", row.algo);
    }
}

#[test]
fn table2_holds_at_128_over_8() {
    // The paper's Noleland configuration.
    for row in table2_rows(128, 8, 8) {
        assert_eq!(row.predicted, row.measured, "{}", row.algo);
    }
}

#[test]
fn table2_holds_with_two_nodes() {
    // N = 2: the smallest encrypted configuration.
    for row in table2_rows(8, 2, 40) {
        assert_eq!(row.predicted, row.measured, "{}", row.algo);
    }
}

/// The headline of the paper: for C-Ring, C-RD, and HS2, the measured
/// decrypted volume per process is exactly (N−1)·m — the Table I lower
/// bound — while Naive decrypts (p−1)·m.
#[test]
fn sd_lower_bound_is_met_by_concurrent_and_hs2() {
    let (p, nodes, m) = (32usize, 4usize, 100usize);
    let lb = eag_core::lower_bounds(p, nodes, m);
    for algo in [Algorithm::CRing, Algorithm::CRd, Algorithm::Hs2] {
        let spec = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::unit(),
            DataMode::Phantom,
        );
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, m).verify(0);
        });
        assert_eq!(report.max_metrics().dec_bytes, lb.sd, "{algo}");
    }
}

/// Unencrypted baselines never touch the cipher.
#[test]
fn unencrypted_algorithms_do_no_crypto() {
    for &algo in Algorithm::unencrypted_all() {
        let spec = WorldSpec::new(
            Topology::new(16, 4, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 1 },
        );
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, 64).verify(1);
        });
        let sum = eag_runtime::Metrics::component_sum(&report.metrics);
        assert_eq!(sum.enc_rounds, 0, "{algo}");
        assert_eq!(sum.dec_rounds, 0, "{algo}");
    }
}

/// Aggregate conservation: total bytes sent equals total bytes received.
#[test]
fn bytes_sent_equals_bytes_received_globally() {
    for &algo in Algorithm::all() {
        let spec = WorldSpec::new(
            Topology::new(12, 3, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 2 },
        );
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, 33).verify(2);
        });
        let sum = eag_runtime::Metrics::component_sum(&report.metrics);
        assert_eq!(sum.bytes_sent, sum.bytes_recv, "{algo}");
        assert_eq!(sum.payload_sent, sum.payload_recv, "{algo}");
    }
}

/// The wire carries exactly 28 extra bytes per sealed item: total wire bytes
/// minus total payload bytes is a multiple of 28.
#[test]
fn framing_overhead_is_a_multiple_of_28() {
    for &algo in Algorithm::encrypted_all() {
        let spec = WorldSpec::new(
            Topology::new(16, 4, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 3 },
        );
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, 50).verify(3);
        });
        let sum = eag_runtime::Metrics::component_sum(&report.metrics);
        let overhead = sum.bytes_sent - sum.payload_sent;
        assert_eq!(overhead % 28, 0, "{algo}: framing overhead {overhead}");
    }
}
