//! Chaos recovery: the issue's acceptance criteria for the fault-injection
//! layer, always-on (no `chaos` feature needed).
//!
//! * At the canonical mix (drop 1% + tamper 1%, fixed seed) every encrypted
//!   algorithm at p = 16 finishes byte-identical to its fault-free run with
//!   non-zero retry counts.
//! * Property: any *single* injected fault — one dropped or one tampered
//!   frame at a random position — is recovered by every encrypted algorithm
//!   at p ∈ {4, 8, 16}.
//! * A receive from a rank that exited early fails fast with a typed
//!   `DeadPeer` error carrying the algorithm name as its phase, instead of
//!   hanging.
//! * Property: any *single* injected rank crash — random rank, send step,
//!   before/after-send, and algorithm — resolves within an absolute
//!   deadline to either a complete result at every rank or the identical
//!   `DegradedOutput` at every survivor. Never a hang.

use eag_core::{allgather, Algorithm};
use eag_integration::{chaos_run, chaos_spec, crash_run, crash_schedule_run};
use eag_netsim::{Crash, FaultKind, FaultPlan};
use eag_runtime::{try_run, FailureCause};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// The fixed seed of the acceptance run (also CI's `chaos_sweep` default).
const ACCEPT_SEED: u64 = 0xC0FFEE;

#[test]
fn canonical_mix_all_encrypted_algorithms_recover_byte_identical() {
    let plan = FaultPlan::drop_and_tamper(10, 10, ACCEPT_SEED);
    for &algo in Algorithm::encrypted_all() {
        let r = chaos_run(algo, 16, 8, 128, plan.clone());
        assert!(
            r.byte_identical,
            "{algo} not byte-identical under drop 1% + tamper 1%: {:?}",
            r.error
        );
        assert!(
            r.faults_injected > 0,
            "{algo}: seed {ACCEPT_SEED:#x} injected no faults — acceptance run is vacuous"
        );
        assert!(
            r.retries > 0,
            "{algo}: faults were injected but no retries recorded"
        );
    }
}

#[test]
fn adversarial_tamper_is_recovered_by_hop_verification() {
    // Checksum-evading tamper: only the per-hop GCM check can catch it.
    let mut plan = FaultPlan::only(FaultKind::Tamper, 20, ACCEPT_SEED);
    plan.adversarial_tamper = true;
    for &algo in Algorithm::encrypted_all() {
        let r = chaos_run(algo, 16, 8, 128, plan.clone());
        assert!(
            r.byte_identical,
            "{algo} not byte-identical under adversarial tamper: {:?}",
            r.error
        );
    }
}

#[test]
fn dead_peer_during_collective_fails_with_typed_error_and_phase() {
    // Rank 1 exits without participating; its ring neighbour must fail fast
    // with a structured DeadPeer error whose phase names the algorithm.
    let spec = chaos_spec(4, 2, FaultPlan::default());
    let err = try_run(&spec, |ctx| {
        if ctx.rank() == 1 {
            return Vec::new();
        }
        allgather(ctx, Algorithm::ORing, 64)
            .into_blocks()
            .into_iter()
            .flat_map(|b| b.data.to_vec())
            .collect::<Vec<u8>>()
    })
    .err()
    .expect("collective with an absent rank must not succeed");
    assert_eq!(err.phase, "O-Ring", "phase should name the algorithm");
    match err.cause {
        FailureCause::DeadPeer { peer, .. } => assert_eq!(peer, 1),
        other => panic!("expected DeadPeer, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Any single fault — one dropped or one tampered inter-node frame at a
    /// random position — is recovered by every encrypted algorithm, at
    /// p ∈ {4, 8, 16}, with output byte-identical to the fault-free run.
    #[test]
    fn any_single_fault_is_recovered(
        algo_ix in 0..Algorithm::encrypted_all().len(),
        p_ix in 0..3usize,
        nth in 0u64..12,
        tamper in any::<bool>(),
    ) {
        let algo = Algorithm::encrypted_all()[algo_ix];
        let (p, nodes) = [(4, 2), (8, 4), (16, 8)][p_ix];
        let kind = if tamper { FaultKind::Tamper } else { FaultKind::Drop };
        let plan = FaultPlan {
            fault_nth_inter_frame: Some((nth, kind)),
            ..FaultPlan::default()
        };
        let r = chaos_run(algo, p, nodes, 64, plan);
        prop_assert!(
            r.byte_identical,
            "{algo} at p={p} did not recover a single {} of inter frame {nth}: {:?}",
            kind.label(),
            r.error
        );
    }

    /// Any single rank crash — random rank, send step, before/after-send,
    /// and encrypted algorithm — yields, within an absolute deadline,
    /// either a complete result at every rank (the crash never fired) or
    /// the same `DegradedOutput` at every survivor. Never a hang.
    #[test]
    fn any_single_crash_recovers_or_completes(
        algo_ix in 0..Algorithm::encrypted_all().len(),
        rank in 0..6usize,
        step in 0u64..4,
        after in any::<bool>(),
    ) {
        let algo = Algorithm::encrypted_all()[algo_ix];
        let crash = if after {
            Crash::after(rank, step)
        } else {
            Crash::before(rank, step)
        };
        let t0 = Instant::now();
        let r = crash_run(algo, 6, 2, 64, crash);
        let elapsed = t0.elapsed();
        prop_assert!(
            elapsed < Duration::from_secs(30),
            "{algo}: crash at rank {rank} step {step} took {elapsed:?} — \
             the failure detector should resolve in milliseconds"
        );
        prop_assert!(
            r.ok(),
            "{algo}: crash at rank {rank} step {step} (after={after}) broke \
             the recovery contract: {r:?}"
        );
        if r.fired {
            prop_assert_eq!(r.survivors, 5);
            // Either the crash was decided and every survivor completed
            // exactly one shrink-and-recover, or the victim died after
            // contributing its block (e.g. after its last send) and the
            // survivors uniformly kept the complete output. Uniformity is
            // the contract: a mixed count would mean divergence.
            prop_assert!(
                r.recoveries == 5 || r.recoveries == 0,
                "non-uniform recovery count {} across 5 survivors",
                r.recoveries
            );
        } else {
            prop_assert_eq!(r.survivors, 6);
            prop_assert_eq!(r.recoveries, 0);
        }
    }

    /// Any double-crash schedule — two distinct ranks, random steps, the
    /// second crash optionally armed inside round 0 of the first agreement
    /// instance — resolves within the deadline to one uniform decision:
    /// identical failed set (naming only real crashes) and byte-identical
    /// degraded output at every survivor. Never a hang.
    #[test]
    fn any_double_crash_schedule_recovers_uniformly(
        algo_ix in 0..Algorithm::encrypted_all().len(),
        rank1 in 0..6usize,
        rank2_off in 1..6usize,
        step1 in 0u64..3,
        step2 in 0u64..3,
        in_agreement in any::<bool>(),
    ) {
        let algo = Algorithm::encrypted_all()[algo_ix];
        let rank2 = (rank1 + rank2_off) % 6;
        let first = Crash::before(rank1, step1);
        let second = if in_agreement {
            Crash::before(rank2, 0).at_epoch(1)
        } else {
            Crash::before(rank2, step2)
        };
        let t0 = Instant::now();
        let r = crash_schedule_run(algo, 6, 2, 64, vec![first, second]);
        let elapsed = t0.elapsed();
        prop_assert!(
            elapsed < Duration::from_secs(30),
            "{algo}: schedule [{rank1}@{step1}, {rank2}@{}] took {elapsed:?}",
            if in_agreement { "0e1".to_string() } else { step2.to_string() }
        );
        prop_assert!(
            r.ok(),
            "{algo}: schedule [{rank1}@{step1}, {rank2}] (agreement={in_agreement}) \
             broke the recovery contract: {r:?}"
        );
        prop_assert!(r.survivors >= 4, "more ranks died than were scheduled");
    }
}
