//! Virtual-time simulation properties: the cost model behaves like the
//! paper's analysis says it should.

use eag_bench::{simulate, SimConfig};
use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn unit_latency(algo: Algorithm, p: usize, nodes: usize, m: usize) -> f64 {
    let spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::unit(),
        DataMode::Phantom,
    );
    let report = run(&spec, move |ctx| {
        allgather(ctx, algo, m).verify(0);
    });
    report.latency_us
}

/// In the unit Hockney model (uniform links, free crypto-wise? no — unit
/// crypto), the plain Ring matches the textbook closed form
/// (p−1)(α + β·m) = (p−1)(1 + m).
#[test]
fn ring_matches_hockney_closed_form() {
    for (p, m) in [(8usize, 10usize), (16, 1), (4, 100)] {
        let got = unit_latency(Algorithm::Ring, p, 2, m);
        let want = ((p - 1) * (1 + m)) as f64;
        assert!(
            (got - want).abs() < 1e-6,
            "p={p} m={m}: got {got}, want {want}"
        );
    }
}

/// RD matches lg(p)·α + (p−1)·m·β in the unit model.
#[test]
fn rd_matches_hockney_closed_form() {
    for (p, m) in [(8usize, 10usize), (16, 4)] {
        let got = unit_latency(Algorithm::Rd, p, 2, m);
        let want = (p.trailing_zeros() as usize + (p - 1) * m) as f64;
        assert!(
            (got - want).abs() < 1e-6,
            "p={p} m={m}: got {got}, want {want}"
        );
    }
}

/// Naive's unit-model latency matches rc·α + sc·β + te + td with
/// rc = lg p, sc = (p−1)(m+28) (wire bytes), te = 1+m, td = (p−1)(1+m).
#[test]
fn naive_matches_model_sum() {
    let (p, m) = (8usize, 50usize);
    let got = unit_latency(Algorithm::Naive, p, 2, m);
    let lg = p.trailing_zeros() as usize;
    let want = (lg + (p - 1) * (m + 28) + (1 + m) + (p - 1) * (1 + m)) as f64;
    assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
}

/// Latency is monotone in message size for every algorithm.
#[test]
fn latency_monotone_in_size() {
    let cfg = SimConfig {
        p: 16,
        nodes: 4,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    for &algo in Algorithm::all() {
        let mut prev = 0.0;
        for m in [1usize, 256, 4 * 1024, 64 * 1024] {
            let s = simulate(&cfg, algo, m);
            assert!(
                s.mean >= prev,
                "{algo}: latency not monotone at m={m} ({} < {prev})",
                s.mean
            );
            prev = s.mean;
        }
    }
}

/// The paper's headline: for large messages, every bound-meeting algorithm
/// (C-Ring, C-RD, HS2) beats Naive by a wide margin on Noleland.
#[test]
fn concurrent_family_beats_naive_at_large_sizes() {
    let cfg = SimConfig {
        p: 32,
        nodes: 4,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let m = 512 * 1024;
    let naive = simulate(&cfg, Algorithm::Naive, m).mean;
    for algo in [Algorithm::CRing, Algorithm::CRd] {
        let t = simulate(&cfg, algo, m).mean;
        assert!(
            t < 0.9 * naive,
            "{algo}: {t:.0} µs not below Naive {naive:.0} µs"
        );
    }
    // HS2 additionally avoids the intra-node channel entirely (shared
    // memory), so its win is much larger.
    let hs2 = simulate(&cfg, Algorithm::Hs2, m).mean;
    assert!(
        hs2 < 0.5 * naive,
        "HS2: {hs2:.0} µs not well below Naive {naive:.0} µs"
    );
}

/// For small messages the round-efficient algorithms (O-RD2, HS1) beat the
/// round-heavy ones (O-Ring, C-Ring) — the paper's small-message story.
#[test]
fn round_efficient_algorithms_win_small_messages() {
    let cfg = SimConfig {
        p: 64,
        nodes: 8,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let m = 4;
    let o_ring = simulate(&cfg, Algorithm::ORing, m).mean;
    let c_ring = simulate(&cfg, Algorithm::CRing, m).mean;
    for algo in [Algorithm::ORd2, Algorithm::Hs1] {
        let t = simulate(&cfg, algo, m).mean;
        assert!(t < o_ring, "{algo} {t:.2} vs O-Ring {o_ring:.2}");
        assert!(t < c_ring, "{algo} {t:.2} vs C-Ring {c_ring:.2}");
    }
}

/// O-RD vs O-RD2: the paper expects O-RD2 better for small messages and
/// O-RD better for large ones (the merge-recrypt trade-off).
#[test]
fn o_rd2_crossover() {
    let cfg = SimConfig {
        p: 64,
        nodes: 8,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let small = 4;
    assert!(
        simulate(&cfg, Algorithm::ORd2, small).mean <= simulate(&cfg, Algorithm::ORd, small).mean
    );
    let large = 512 * 1024;
    assert!(
        simulate(&cfg, Algorithm::ORd, large).mean < simulate(&cfg, Algorithm::ORd2, large).mean
    );
}

/// HS1 vs HS2: HS1 better for small messages (fewer decryption rounds),
/// HS2 better for large (less data encrypted).
#[test]
fn hs1_hs2_crossover() {
    let cfg = SimConfig {
        p: 64,
        nodes: 8,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    assert!(simulate(&cfg, Algorithm::Hs1, 1).mean <= simulate(&cfg, Algorithm::Hs2, 1).mean);
    let large = 1024 * 1024;
    assert!(
        simulate(&cfg, Algorithm::Hs2, large).mean < simulate(&cfg, Algorithm::Hs1, large).mean
    );
}

/// Without NIC contention the simulation is fully deterministic.
#[test]
fn no_contention_is_deterministic() {
    let cfg = SimConfig {
        p: 32,
        nodes: 4,
        mapping: Mapping::Cyclic,
        profile: "bridges2".into(),
        reps: 5,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    for algo in [Algorithm::Naive, Algorithm::CRd, Algorithm::Hs1] {
        let s = simulate(&cfg, algo, 4096);
        assert_eq!(s.min, s.max, "{algo}");
    }
}

/// With contention, repeated runs stay within a tight band (the paper's
/// measured standard deviations are within 10% of the mean).
#[test]
fn contention_noise_is_bounded() {
    let cfg = SimConfig {
        p: 32,
        nodes: 4,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 5,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    for algo in [Algorithm::Mvapich, Algorithm::CRing, Algorithm::Hs2] {
        let s = simulate(&cfg, algo, 64 * 1024);
        assert!(
            s.std_dev <= 0.10 * s.mean,
            "{algo}: std {} vs mean {}",
            s.std_dev,
            s.mean
        );
    }
}

/// A Bridges-2-shaped run at reduced scale completes and ranks HS2 first
/// for large messages, as in the paper's Table VI.
#[test]
fn bridges2_reduced_scale_ranking() {
    let cfg = SimConfig {
        p: 128,
        nodes: 16,
        mapping: Mapping::Block,
        profile: "bridges2".into(),
        reps: 1,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let m = 64 * 1024;
    let hs2 = simulate(&cfg, Algorithm::Hs2, m).mean;
    let naive = simulate(&cfg, Algorithm::Naive, m).mean;
    let mpi = simulate(&cfg, Algorithm::Mvapich, m).mean;
    assert!(
        hs2 < mpi,
        "HS2 {hs2:.0} should beat unencrypted MPI {mpi:.0}"
    );
    assert!(naive > mpi, "Naive {naive:.0} should trail MPI {mpi:.0}");
}

/// The analytic recommender ([`eag_core::recommend`]) picks an algorithm
/// whose *simulated* latency is close to the simulated best — the model is
/// good enough to drive online selection.
#[test]
fn recommender_tracks_the_simulated_best() {
    let cfg = SimConfig {
        p: 64,
        nodes: 8,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let model = cfg.cluster_profile().model;
    for m in [4usize, 1024, 64 * 1024, 1024 * 1024] {
        let pick = eag_core::recommend(64, 8, m, &model);
        let picked = simulate(&cfg, pick, m).mean;
        let best = Algorithm::encrypted_all()
            .iter()
            .filter(|&&a| a != Algorithm::Naive)
            .map(|&a| simulate(&cfg, a, m).mean)
            .fold(f64::INFINITY, f64::min);
        assert!(
            picked <= 2.5 * best,
            "m={m}: picked {pick} at {picked:.1} µs vs best {best:.1} µs"
        );
    }
}

/// Decryption overlaps with communication in the ring-based encrypted
/// algorithms: forwarding a ciphertext is never delayed by opening it for
/// local output, so per-hop latency is α + βm, not α + βm + t_dec
/// (the paper's communication/computation overlap).
#[test]
fn ring_forwarding_overlaps_decryption() {
    use eag_netsim::{ClusterProfile, CostModel, CryptoCost, LinkCost};
    // Latency-dominated network (α = 100 µs) with expensive decryption
    // (50 µs per op): the decrypts must hide under the arrival waits.
    let profile = ClusterProfile {
        name: "overlap-test".into(),
        model: CostModel {
            intra: LinkCost {
                alpha_us: 100.0,
                bandwidth: 1e12,
            },
            inter: LinkCost {
                alpha_us: 100.0,
                bandwidth: 1e12,
            },
            nic_bandwidth: f64::INFINITY,
            copy_alpha_us: 0.0,
            copy_bandwidth: f64::INFINITY,
            strided_copy_factor: 1.0,
            barrier_us: 0.0,
            crypto: CryptoCost {
                enc_alpha_us: 0.0,
                enc_bandwidth: f64::INFINITY,
                dec_alpha_us: 50.0,
                dec_bandwidth: f64::INFINITY,
            },
            fabric: None,
        },
        mvapich_switch_bytes: 8 * 1024,
    };
    let spec = WorldSpec::new(
        Topology::new(8, 8, Mapping::Block), // ℓ = 1: the C-Ring sub shape
        profile,
        DataMode::Phantom,
    );
    let report = run(&spec, |ctx| {
        allgather(ctx, Algorithm::ORing, 16).verify(0);
    });
    // 7 hops × 100 µs, with all but the last ~2 decrypts hidden in the
    // waits. Without overlap this would be ≥ 7 × 150 = 1050 µs.
    assert!(
        report.latency_us < 900.0,
        "decryption not overlapped: {:.1} µs",
        report.latency_us
    );
}

/// Under an oversubscribed two-level fabric, the node-ordered ring (which
/// crosses leaf boundaries only at leaf edges) beats recursive doubling
/// (whose large rounds all cross the core) — the locality effect the
/// related work's topology-aware collectives exploit.
#[test]
fn oversubscribed_fabric_rewards_locality() {
    use eag_netsim::FabricModel;
    let mut profile = profile::noleland();
    // 4 leaves of 2 nodes; uplinks at 1/4 of the NIC rate (4:1 oversub).
    profile.model.fabric = Some(FabricModel {
        nodes_per_leaf: 2,
        uplink_bandwidth: profile.model.nic_bandwidth / 4.0,
        extra_alpha_us: 1.0,
    });
    let latency = |algo: Algorithm| {
        let spec = WorldSpec::new(
            Topology::new(32, 8, Mapping::Block),
            profile.clone(),
            DataMode::Phantom,
        );
        let samples: Vec<f64> = (0..3)
            .map(|_| {
                run(&spec, move |ctx| {
                    allgather(ctx, algo, 256 * 1024).verify(0);
                })
                .latency_us
            })
            .collect();
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    let c_ring = latency(Algorithm::CRing);
    let c_rd = latency(Algorithm::CRd);
    assert!(
        c_ring < c_rd,
        "fabric should favor the ring's locality: C-Ring {c_ring:.0} vs C-RD {c_rd:.0}"
    );

    // And the same algorithms without a fabric are within noise of each
    // other (the full-bisection baseline).
    let mut flat = profile.clone();
    flat.model.fabric = None;
    let flat_latency = |algo: Algorithm| {
        let spec = WorldSpec::new(
            Topology::new(32, 8, Mapping::Block),
            flat.clone(),
            DataMode::Phantom,
        );
        run(&spec, move |ctx| {
            allgather(ctx, algo, 256 * 1024).verify(0);
        })
        .latency_us
    };
    let fr = flat_latency(Algorithm::CRing);
    let fd = flat_latency(Algorithm::CRd);
    assert!(
        (fr - fd).abs() / fr < 0.25,
        "flat network: C-Ring {fr:.0} vs C-RD {fd:.0} should be comparable"
    );
}
