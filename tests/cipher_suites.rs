//! Cross-suite equivalence: the AEAD backend protects the collective's
//! bytes, it must never change them. Running the same real-payload world
//! under every [`CipherSuite`] has to produce byte-identical gathered
//! outputs on every rank — the acceptance gate for swapping backends.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, CipherSuite, DataMode, WorldSpec};

const SEED: u64 = 0xC1F;

/// Runs `algo` over real payloads under `suite` and returns each rank's
/// fully gathered output as one contiguous byte vector.
fn gathered_bytes(suite: CipherSuite, algo: Algorithm, m: usize) -> Vec<Vec<u8>> {
    let mut spec = WorldSpec::new(
        Topology::new(12, 3, Mapping::Block),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    spec.suite = suite;
    let report = run(&spec, move |ctx| {
        let out = allgather(ctx, algo, m);
        out.verify(SEED);
        out.into_blocks()
            .iter()
            .flat_map(|c| c.data.to_vec())
            .collect::<Vec<u8>>()
    });
    report.outputs
}

/// Every suite gathers the exact same bytes as the default AES-GCM run,
/// on every rank, for both a bandwidth-optimal and a latency-optimal
/// algorithm.
#[test]
fn all_suites_gather_identical_bytes() {
    for algo in [Algorithm::ORing, Algorithm::OBruck] {
        let reference = gathered_bytes(CipherSuite::AesGcm128, algo, 96);
        assert_eq!(reference.len(), 12);
        assert!(reference.iter().all(|r| r.len() == 12 * 96));
        for suite in CipherSuite::ALL {
            let got = gathered_bytes(suite, algo, 96);
            assert_eq!(got, reference, "{algo} under {suite} diverged");
        }
    }
}

/// The suite is priced but not performed in phantom mode, and the cost
/// model charges by byte count with suite-invariant 28-byte framing — so
/// the virtual latency of a phantom run must not depend on the suite.
#[test]
fn phantom_latency_is_suite_invariant() {
    let latency = |suite: CipherSuite| {
        let mut spec = WorldSpec::new(
            Topology::new(16, 4, Mapping::Block),
            profile::noleland(),
            DataMode::Phantom,
        );
        // NIC contention races arrival order and perturbs the virtual clock
        // run to run; turn it off so any latency difference is the suite's.
        spec.nic_contention = false;
        spec.suite = suite;
        run(&spec, |ctx| {
            allgather(ctx, Algorithm::ORd, 4096).verify(0);
        })
        .latency_us
    };
    let reference = latency(CipherSuite::AesGcm128);
    for suite in CipherSuite::ALL {
        assert_eq!(latency(suite), reference, "{suite}");
    }
}
