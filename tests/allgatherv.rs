//! MPI_Allgatherv (variable block sizes) — correctness and security of the
//! extension across the algorithms that support it.

use eag_core::{allgatherv, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{pattern_block, run, DataMode, WorldSpec};

const SEED: u64 = 0xA11;

fn spec(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
    let mut s = WorldSpec::new(
        Topology::new(p, nodes, mapping),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    s.capture_wire = true;
    s
}

fn varying_lens(p: usize) -> Vec<usize> {
    // A mix of sizes including empty contributions.
    (0..p).map(|r| (r * 37) % 96).collect()
}

fn v_algorithms() -> Vec<Algorithm> {
    Algorithm::all()
        .iter()
        .copied()
        .filter(Algorithm::supports_varying)
        .collect()
}

#[test]
fn supports_varying_matches_the_documented_set() {
    use Algorithm::*;
    let got = v_algorithms();
    assert_eq!(
        got,
        vec![Ring, RingRanked, Bruck, Naive, ORing, CRing, Hs2, OBruck]
    );
}

#[test]
fn allgatherv_correct_all_supporting_algorithms() {
    for algo in v_algorithms() {
        for (p, nodes) in [(8usize, 4usize), (12, 3), (9, 3)] {
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                let lens = varying_lens(p);
                let lens2 = lens.clone();
                let report = run(&spec(p, nodes, mapping), move |ctx| {
                    allgatherv(ctx, algo, &lens2).verify(SEED);
                });
                if algo.is_encrypted() {
                    assert!(
                        !report.wiretap.saw_plaintext_frame(),
                        "{algo} leaked plaintext (p={p}, N={nodes}, {mapping})"
                    );
                }
            }
        }
    }
}

#[test]
fn allgatherv_handles_all_zero_and_single_huge_rank() {
    for algo in v_algorithms() {
        let mut lens = vec![0usize; 8];
        lens[3] = 4096; // one rank carries everything
        let lens2 = lens.clone();
        let report = run(&spec(8, 4, Mapping::Block), move |ctx| {
            allgatherv(ctx, algo, &lens2).verify(SEED);
        });
        assert_eq!(report.outputs.len(), 8);
    }
}

#[test]
fn allgatherv_content_is_bit_exact() {
    let lens = vec![5usize, 64, 0, 17, 100, 1, 33, 8];
    let lens2 = lens.clone();
    let report = run(&spec(8, 2, Mapping::Block), move |ctx| {
        let out = allgatherv(ctx, Algorithm::CRing, &lens2);
        out.into_blocks()
            .into_iter()
            .map(|c| c.data.to_vec())
            .collect::<Vec<_>>()
    });
    for blocks in &report.outputs {
        for (rank, block) in blocks.iter().enumerate() {
            assert_eq!(block, &pattern_block(SEED, rank, lens[rank]));
        }
    }
}

#[test]
fn allgatherv_no_block_leaks_on_the_wire() {
    let lens = vec![48usize, 96, 32, 80, 48, 96, 32, 80];
    for algo in v_algorithms().into_iter().filter(Algorithm::is_encrypted) {
        let lens2 = lens.clone();
        let report = run(&spec(8, 4, Mapping::Block), move |ctx| {
            allgatherv(ctx, algo, &lens2).verify(SEED);
        });
        for (rank, &len) in lens.iter().enumerate() {
            if len >= 16 {
                let block = pattern_block(SEED, rank, len);
                assert!(
                    !report.wiretap.contains(&block),
                    "{algo}: rank {rank}'s variable block leaked"
                );
            }
        }
    }
}

#[test]
#[should_panic(expected = "does not support variable block lengths")]
fn unsupported_algorithm_panics_cleanly() {
    let lens = vec![8usize; 4];
    run(&spec(4, 2, Mapping::Block), move |ctx| {
        let _ = allgatherv(ctx, Algorithm::ORd, &lens);
    });
}

#[test]
fn uniform_lens_match_the_uniform_path_metrics() {
    // allgatherv with equal lengths must move the same bytes as allgather.
    let p = 8;
    let lens = vec![64usize; p];
    for algo in [Algorithm::Ring, Algorithm::CRing, Algorithm::Hs2] {
        let lens2 = lens.clone();
        let rv = run(&spec(p, 4, Mapping::Block), move |ctx| {
            allgatherv(ctx, algo, &lens2).verify(SEED);
        });
        let ru = run(&spec(p, 4, Mapping::Block), move |ctx| {
            eag_core::allgather(ctx, algo, 64).verify(SEED);
        });
        let sv = eag_runtime::Metrics::component_sum(&rv.metrics);
        let su = eag_runtime::Metrics::component_sum(&ru.metrics);
        assert_eq!(sv.payload_sent, su.payload_sent, "{algo}");
        assert_eq!(sv.dec_rounds, su.dec_rounds, "{algo}");
    }
}
