//! End-to-end correctness: every algorithm, both mappings, power-of-two and
//! general (p, N), tiny to multi-KB blocks, real bytes with real AES-GCM.
//!
//! The postcondition of MPI_Allgather: after the call, every process holds
//! every process's block, bit-exact, in rank order.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

const SEED: u64 = 0xE46;

fn spec(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
    WorldSpec::new(
        Topology::new(p, nodes, mapping),
        profile::free(),
        DataMode::Real { seed: SEED },
    )
}

fn check(algo: Algorithm, p: usize, nodes: usize, mapping: Mapping, m: usize) {
    let report = run(&spec(p, nodes, mapping), move |ctx| {
        let out = allgather(ctx, algo, m);
        out.verify(SEED);
    });
    assert_eq!(report.outputs.len(), p);
}

/// Every algorithm on the canonical power-of-two world.
#[test]
fn all_algorithms_pow2_block() {
    for &algo in Algorithm::all() {
        check(algo, 16, 4, Mapping::Block, 64);
    }
}

#[test]
fn all_algorithms_pow2_cyclic() {
    for &algo in Algorithm::all() {
        check(algo, 16, 4, Mapping::Cyclic, 64);
    }
}

/// Non-power-of-two process counts (the paper's Table V regime).
#[test]
fn all_algorithms_general_p() {
    for &algo in Algorithm::all() {
        for (p, nodes) in [(12, 3), (21, 7), (10, 5)] {
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                check(algo, p, nodes, mapping, 48);
            }
        }
    }
}

/// The exact shape of the paper's Table V experiment, scaled down:
/// p and N odd, ℓ = 13 ≫ N.
#[test]
fn paper_table5_shape_small() {
    for &algo in Algorithm::all() {
        check(algo, 39, 3, Mapping::Block, 32);
    }
}

/// One process per node (ℓ = 1): Concurrent groups collapse to a single
/// member locally, HS nodes have only leaders.
#[test]
fn one_process_per_node() {
    for &algo in Algorithm::all() {
        check(algo, 8, 8, Mapping::Block, 32);
        check(algo, 6, 6, Mapping::Block, 32);
    }
}

/// A single node: nothing needs encryption, everything is intra-node.
#[test]
fn single_node_world() {
    for &algo in Algorithm::all() {
        check(algo, 8, 1, Mapping::Block, 32);
    }
}

/// Two processes total — the smallest world with communication.
#[test]
fn two_processes_two_nodes() {
    for &algo in Algorithm::all() {
        check(algo, 2, 2, Mapping::Block, 32);
    }
}

/// Odd block sizes straddling the AES block and GCM framing boundaries.
#[test]
fn odd_block_sizes() {
    for m in [1usize, 15, 16, 17, 28, 29, 255, 1000] {
        for algo in [
            Algorithm::Naive,
            Algorithm::ORd,
            Algorithm::CRing,
            Algorithm::Hs1,
            Algorithm::Hs2,
        ] {
            check(algo, 8, 4, Mapping::Block, m);
        }
    }
}

/// Zero-byte blocks: a degenerate but legal all-gather.
#[test]
fn zero_byte_blocks() {
    for &algo in Algorithm::all() {
        check(algo, 8, 2, Mapping::Block, 0);
    }
}

/// Larger blocks exercise the multi-block AES-CTR fast path end to end.
#[test]
fn multi_kilobyte_blocks() {
    for algo in [
        Algorithm::Naive,
        Algorithm::ORing,
        Algorithm::ORd2,
        Algorithm::CRd,
        Algorithm::Hs2,
    ] {
        check(algo, 8, 4, Mapping::Block, 8 * 1024);
    }
}

/// Phantom mode must preserve the postcondition via origin tracking.
#[test]
fn phantom_mode_tracks_origins() {
    for &algo in Algorithm::all() {
        let mut s = spec(16, 4, Mapping::Block);
        s.mode = DataMode::Phantom;
        let report = run(&s, move |ctx| {
            let out = allgather(ctx, algo, 1024);
            out.verify(SEED); // length + completeness check in phantom mode
        });
        assert_eq!(report.outputs.len(), 16);
    }
}

/// Different seeds produce different data but identical traffic shape.
#[test]
fn traffic_shape_is_data_independent() {
    let run_with = |seed: u64| {
        let s = WorldSpec::new(
            Topology::new(8, 4, Mapping::Block),
            profile::free(),
            DataMode::Real { seed },
        );
        let report = run(&s, move |ctx| {
            allgather(ctx, Algorithm::CRing, 128).verify(seed);
        });
        eag_runtime::Metrics::component_sum(&report.metrics)
    };
    assert_eq!(run_with(1), run_with(999));
}

/// Back-to-back collectives in one world must not interfere — including the
/// shared-memory algorithms, whose slot keys are scoped by collective epoch
/// (regression test: HS2 in a timestep loop used to double-deposit slots).
#[test]
fn repeated_collectives_in_one_world() {
    let report = run(&spec(8, 4, Mapping::Block), |ctx| {
        let a = allgather(ctx, Algorithm::Ring, 32);
        a.verify(SEED);
        let b = allgather(ctx, Algorithm::Rd, 64);
        b.verify(SEED);
        for _ in 0..3 {
            allgather(ctx, Algorithm::Hs2, 48).verify(SEED);
            allgather(ctx, Algorithm::Hs1, 16).verify(SEED);
            allgather(ctx, Algorithm::CRing, 24).verify(SEED);
        }
    });
    assert_eq!(report.outputs.len(), 8);
}

/// Exhaustive small-world sweep: every algorithm on every divisible (p, N)
/// with p ≤ 12, both mappings, two block sizes — over a thousand worlds.
#[test]
fn exhaustive_small_worlds() {
    let mut worlds = 0usize;
    for nodes in 1..=6usize {
        for ell in 1..=3usize {
            let p = nodes * ell;
            if !(2..=12).contains(&p) {
                continue;
            }
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                for m in [0usize, 17] {
                    for &algo in Algorithm::all() {
                        check(algo, p, nodes, mapping, m);
                        worlds += 1;
                    }
                }
            }
        }
    }
    assert!(worlds > 1000, "swept only {worlds} worlds");
}
