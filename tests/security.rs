//! Security contract of the encrypted algorithms under the paper's threat
//! model: a passive network adversary sees all inter-node traffic (and an
//! active one may tamper with it). Intra-node traffic is trusted.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, FrameKind, Mapping, Topology};
use eag_runtime::{pattern_block, run, DataMode, WorldSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEED: u64 = 0x5EC;

fn tapped_spec(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
    let mut s = WorldSpec::new(
        Topology::new(p, nodes, mapping),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    s.capture_wire = true;
    s
}

/// No encrypted algorithm ever sends a frame classified as plaintext over
/// an inter-node link.
#[test]
fn no_plaintext_frames_on_the_wire() {
    for &algo in Algorithm::encrypted_all() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (12, 4), (9, 3)] {
                let report = run(&tapped_spec(p, nodes, mapping), move |ctx| {
                    allgather(ctx, algo, 96).verify(SEED);
                });
                assert!(
                    !report.wiretap.saw_plaintext_frame(),
                    "{algo} p={p} N={nodes} {mapping}: plaintext frame captured"
                );
            }
        }
    }
}

/// Stronger: no input block ever appears as a byte substring of any
/// captured frame — GCM ciphertexts are indistinguishable from random, so
/// a match would mean plaintext leaked.
#[test]
fn no_input_block_leaks_into_captured_bytes() {
    let (p, nodes, m) = (12usize, 3usize, 128usize);
    for &algo in Algorithm::encrypted_all() {
        let report = run(&tapped_spec(p, nodes, Mapping::Block), move |ctx| {
            allgather(ctx, algo, m).verify(SEED);
        });
        for rank in 0..p {
            let block = pattern_block(SEED, rank, m);
            assert!(
                !report.wiretap.contains(&block),
                "{algo}: rank {rank}'s block found in wire capture"
            );
            // Even a 32-byte prefix must not appear.
            assert!(
                !report.wiretap.contains(&block[..32]),
                "{algo}: rank {rank}'s block prefix found in wire capture"
            );
        }
    }
}

/// Sanity check of the methodology: an *unencrypted* algorithm run through
/// the same tap DOES leak its blocks — so the negative results above are
/// meaningful.
#[test]
fn wiretap_catches_unencrypted_traffic() {
    let (p, nodes, m) = (8usize, 4usize, 128usize);
    let report = run(&tapped_spec(p, nodes, Mapping::Block), move |ctx| {
        allgather(ctx, Algorithm::Ring, m).verify(SEED);
    });
    assert!(report.wiretap.saw_plaintext_frame());
    let block0 = pattern_block(SEED, 0, m);
    assert!(report.wiretap.contains(&block0));
}

/// Every inter-node frame of every encrypted algorithm carries the GCM
/// framing: wire length = payload + k·28 for k ≥ 1 sealed items.
#[test]
fn captured_frames_are_cipher_frames() {
    for &algo in Algorithm::encrypted_all() {
        let report = run(&tapped_spec(8, 4, Mapping::Block), move |ctx| {
            allgather(ctx, algo, 64).verify(SEED);
        });
        for f in report.wiretap.frames() {
            assert_eq!(f.kind, FrameKind::Cipher, "{algo}: frame {f:?}");
            assert!(
                f.len >= 64 + 28,
                "{algo}: frame shorter than one sealed block"
            );
        }
    }
}

/// Ciphertexts are fresh: the same plaintext block crossing different links
/// never produces the same bytes (random nonces). We check that no two
/// captured frames are byte-identical.
#[test]
fn no_two_captured_frames_are_identical() {
    // O-Ring re-encrypts the same plaintext at every node exit — the
    // clearest place where nonce reuse would show as duplicate frames.
    let report = run(&tapped_spec(9, 3, Mapping::Block), |ctx| {
        allgather(ctx, Algorithm::ORing, 64).verify(SEED);
    });
    let frames = report.wiretap.frames();
    for (i, a) in frames.iter().enumerate() {
        for b in frames.iter().skip(i + 1) {
            assert_ne!(a.bytes, b.bytes, "identical ciphertext frames captured");
        }
    }
}

/// Active adversary: flipping any byte of a sealed message makes the
/// receiver's GCM authentication fail, which aborts the collective.
#[test]
fn tampered_ciphertext_aborts_the_collective() {
    use eag_crypto::{AesGcm128, Key, NonceSource};
    // Direct check at the seal/open layer with the runtime's framing.
    let key = Key::from_bytes([3u8; 16]);
    let gcm = AesGcm128::new(&key);
    let mut nonces = NonceSource::seeded(1);
    let mut wire = eag_crypto::seal_message(&gcm, &mut nonces, b"", b"the block");
    wire[14] ^= 0x40;
    assert!(eag_crypto::open_message(&gcm, b"", &wire).is_err());

    // And end to end: a world where one rank forwards a corrupted sealed
    // item must panic (GCM tag mismatch), not deliver wrong data.
    let spec = tapped_spec(4, 4, Mapping::Block);
    let result = catch_unwind(AssertUnwindSafe(|| {
        run(&spec, |ctx| {
            use eag_runtime::{Item, Parcel};
            let rank = ctx.rank();
            if rank == 0 {
                let mut sealed = ctx.encrypt(ctx.my_block(64));
                if let eag_runtime::Data::Real(bytes) = &mut sealed.data {
                    bytes.xor_byte(20, 0x01); // corrupt the ciphertext body
                }
                ctx.send(1, 9, Parcel::one(Item::Sealed(sealed)));
            } else if rank == 1 {
                let parcel = ctx.recv(0, 9);
                let _ = ctx.decrypt(parcel.items[0].clone().into_sealed());
            }
        })
    }));
    assert!(result.is_err(), "tampering went undetected");
}

/// Nonce discipline: forwarding the same ciphertext re-sends the same nonce
/// (harmless), but a nonce must never appear with two *different*
/// ciphertexts — that would be nonce reuse across encryptions, which breaks
/// GCM entirely.
#[test]
fn no_nonce_is_reused_for_distinct_ciphertexts() {
    use std::collections::HashMap;
    for &algo in Algorithm::encrypted_all() {
        let report = run(&tapped_spec(8, 2, Mapping::Block), move |ctx| {
            allgather(ctx, algo, 32).verify(SEED);
        });
        // Each sealed item of a 32-byte block is nonce(12)|ct(32)|tag(16)
        // = 60 bytes; O-RD/HS frames can carry larger merged items, so key
        // the check on the nonce prefix of each frame and of each 60-byte
        // item boundary where frames are exact multiples.
        let mut seen: HashMap<[u8; 12], Vec<u8>> = HashMap::new();
        for f in report.wiretap.frames() {
            if f.bytes.len() % 60 != 0 {
                continue; // merged-ciphertext frame; covered by prefix below
            }
            let flat = f.bytes.to_vec();
            for item in flat.chunks_exact(60) {
                let mut n = [0u8; 12];
                n.copy_from_slice(&item[..12]);
                let body = item[12..].to_vec();
                if let Some(prev) = seen.insert(n, body.clone()) {
                    assert_eq!(
                        prev, body,
                        "{algo}: one nonce used for two different ciphertexts"
                    );
                }
            }
        }
    }
}

/// Cross-rank nonce uniqueness: in a p = 16 real-mode world every rank
/// draws from its own independent nonce source, and no nonce observed on
/// the wire may ever pair with two different ciphertexts — neither within
/// one rank's stream nor *across* ranks (a collision there would mean the
/// per-rank sources are correlated, e.g. seeded identically).
#[test]
fn nonces_are_unique_across_ranks() {
    use std::collections::HashMap;
    for &algo in Algorithm::encrypted_all() {
        let report = run(&tapped_spec(16, 4, Mapping::Block), move |ctx| {
            allgather(ctx, algo, 48).verify(SEED);
        });
        // nonce of the frame's leading item → the first 16 ciphertext bytes
        // after it. A forwarded item re-sends both unchanged (possibly from
        // another rank, possibly with a different frame tail); two distinct
        // encryptions colliding on a nonce would disagree on the ciphertext.
        let mut seen: HashMap<[u8; 12], [u8; 16]> = HashMap::new();
        let mut frames = 0usize;
        for f in report.wiretap.frames() {
            assert!(f.bytes.len() >= 28, "{algo}: frame below GCM framing size");
            frames += 1;
            let flat = f.bytes.to_vec();
            let mut n = [0u8; 12];
            n.copy_from_slice(&flat[..12]);
            let mut ct = [0u8; 16];
            ct.copy_from_slice(&flat[12..28]);
            if let Some(prev) = seen.insert(n, ct) {
                assert_eq!(
                    prev, ct,
                    "{algo}: one nonce paired with two different ciphertexts"
                );
            }
        }
        assert!(frames > 0, "{algo}: wiretap captured nothing");
    }
}

/// Stronger issuance-level check: all ranks share one GCM key, so a nonce
/// must never repeat across *any* two encryptions anywhere in the world.
/// Sixteen single-process nodes seal 64 fresh messages each (every hop
/// inter-node, nothing forwarded), and all 1024 wire nonces must be
/// pairwise distinct.
#[test]
fn every_issued_nonce_is_unique_across_ranks() {
    use eag_runtime::{Item, Parcel};
    use std::collections::HashSet;
    let spec = tapped_spec(16, 16, Mapping::Block);
    let report = run(&spec, |ctx| {
        let p = ctx.p();
        let me = ctx.rank();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        for round in 0..64u64 {
            let sealed = ctx.encrypt(ctx.my_block(32));
            ctx.send(next, 1000 + round, Parcel::one(Item::Sealed(sealed)));
            let _ = ctx.recv(prev, 1000 + round);
        }
    });
    let mut seen: HashSet<[u8; 12]> = HashSet::new();
    for f in report.wiretap.frames() {
        let mut n = [0u8; 12];
        n.copy_from_slice(&f.bytes.to_vec()[..12]);
        assert!(seen.insert(n), "a 96-bit nonce was issued twice");
    }
    assert_eq!(seen.len(), 16 * 64, "expected one fresh nonce per seal");
}

/// Relabeling attack: an adversary swaps the (unauthenticated-looking)
/// origins metadata of a captured ciphertext. Because the runtime binds
/// origins and block length into the GCM associated data, decryption must
/// fail — blocks can never be placed under the wrong rank.
#[test]
fn relabeled_ciphertext_is_rejected() {
    let spec = tapped_spec(4, 4, Mapping::Block);
    let result = catch_unwind(AssertUnwindSafe(|| {
        run(&spec, |ctx| {
            use eag_runtime::{Item, Parcel};
            match ctx.rank() {
                0 => {
                    let mut sealed = ctx.encrypt(ctx.my_block(64));
                    // Claim the ciphertext carries rank 2's block.
                    sealed.origins = vec![2];
                    ctx.send(1, 9, Parcel::one(Item::Sealed(sealed)));
                }
                1 => {
                    let parcel = ctx.recv(0, 9);
                    let _ = ctx.decrypt(parcel.items[0].clone().into_sealed());
                }
                _ => {}
            }
        })
    }));
    assert!(result.is_err(), "origin relabeling went undetected");
}

/// Crash recovery must not weaken the nonce discipline: the survivors'
/// sealed agreement rounds and the shrunk-group re-run re-seal every
/// retransmitted block fresh, so across attempt + agreement + recovery no
/// wire nonce is ever paired with two different ciphertexts — and no
/// plaintext frame appears either (the adversary learns nothing extra from
/// watching a recovery).
#[test]
fn crash_recovery_reseals_with_fresh_nonces() {
    use eag_core::recover_allgather;
    use eag_netsim::{Crash, FaultPlan};
    use eag_runtime::{run_crashable, RetryPolicy};
    use std::collections::HashMap;
    use std::time::Duration;
    for &algo in Algorithm::encrypted_all() {
        // Rank 0 (a node leader) performs peer-bound sends in every
        // algorithm, so the planned crash always fires.
        let mut spec = tapped_spec(8, 2, Mapping::Block);
        spec.faults = FaultPlan {
            crashes: vec![Crash::before(0, 0)],
            ..FaultPlan::default()
        };
        spec.retry = RetryPolicy {
            attempt_timeout: Duration::from_millis(20),
            max_attempts: 10,
            backoff: 1.5,
        };
        let report = run_crashable(&spec, move |ctx| recover_allgather(ctx, algo, 48));
        assert_eq!(
            report.crashed,
            vec![0],
            "{algo}: planned crash did not fire"
        );
        for (_, out) in report.survivor_outputs() {
            assert_eq!(out.failed, vec![0], "{algo}: survivors disagreed");
            out.verify(SEED);
        }
        assert!(
            !report.wiretap.saw_plaintext_frame(),
            "{algo}: recovery leaked a plaintext frame"
        );
        // nonce of the frame's leading item → first 16 ciphertext bytes;
        // a nonce re-paired with different bytes means (key, nonce) reuse.
        let mut seen: HashMap<[u8; 12], [u8; 16]> = HashMap::new();
        let mut cipher_frames = 0usize;
        for f in report.wiretap.frames() {
            if f.kind != FrameKind::Cipher {
                continue; // phantom-free world: only cipher frames remain
            }
            assert!(f.bytes.len() >= 28, "{algo}: frame below GCM framing size");
            cipher_frames += 1;
            let flat = f.bytes.to_vec();
            let mut n = [0u8; 12];
            n.copy_from_slice(&flat[..12]);
            let mut ct = [0u8; 16];
            ct.copy_from_slice(&flat[12..28]);
            if let Some(prev) = seen.insert(n, ct) {
                assert_eq!(
                    prev, ct,
                    "{algo}: one nonce paired with two different ciphertexts \
                     across attempt and recovery"
                );
            }
        }
        assert!(cipher_frames > 0, "{algo}: wiretap captured nothing");
    }
}
