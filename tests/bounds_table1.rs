//! Validates the paper's Table I: no encrypted algorithm beats the lower
//! bounds on any of the six metrics (with the paper's own caveat that HS1
//! and HS2 undercut rc/sc because shared-memory transfers are not counted
//! as communication — Section IV-B notes exactly this).

use eag_core::{allgather, lower_bounds, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, Metrics, WorldSpec};

fn measure(algo: Algorithm, p: usize, nodes: usize, m: usize) -> Metrics {
    let spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::unit(),
        DataMode::Phantom,
    );
    let report = run(&spec, move |ctx| {
        allgather(ctx, algo, m).verify(0);
    });
    report.max_metrics()
}

fn uses_shared_memory(algo: Algorithm) -> bool {
    matches!(algo, Algorithm::Hs1 | Algorithm::Hs2)
}

#[test]
fn no_encrypted_algorithm_beats_the_bounds() {
    for &(p, nodes) in &[(16usize, 4usize), (32, 4), (64, 8), (16, 8), (64, 16)] {
        let m = 64;
        let lb = lower_bounds(p, nodes, m);
        for &algo in Algorithm::encrypted_all() {
            let mx = measure(algo, p, nodes, m);
            if !uses_shared_memory(algo) {
                assert!(
                    mx.comm_rounds >= lb.rc,
                    "{algo} p={p} N={nodes}: rc {} < bound {}",
                    mx.comm_rounds,
                    lb.rc
                );
                assert!(
                    mx.sc_payload() >= lb.sc,
                    "{algo} p={p} N={nodes}: sc {} < bound {}",
                    mx.sc_payload(),
                    lb.sc
                );
            }
            assert!(mx.enc_rounds >= lb.re, "{algo}: re below bound");
            assert!(mx.enc_bytes >= lb.se, "{algo}: se below bound");
            assert!(
                mx.dec_rounds >= lb.rd,
                "{algo} p={p} N={nodes}: rd {} < bound {}",
                mx.dec_rounds,
                lb.rd
            );
            assert!(
                mx.dec_bytes >= lb.sd,
                "{algo} p={p} N={nodes}: sd {} < bound {}",
                mx.dec_bytes,
                lb.sd
            );
        }
    }
}

/// The bounds are *tight* where the paper claims tightness:
/// - sd: C-Ring, C-RD and HS2 achieve exactly (N−1)m;
/// - se: Naive, C-Ring, C-RD and HS2 achieve exactly m;
/// - re: most algorithms achieve exactly 1;
/// - rc: Naive, O-RD, O-RD2 and C-RD achieve exactly lg p.
#[test]
fn bounds_are_tight_where_claimed() {
    let (p, nodes, m) = (64usize, 8usize, 32usize);
    let lb = lower_bounds(p, nodes, m);
    for algo in [Algorithm::CRing, Algorithm::CRd, Algorithm::Hs2] {
        assert_eq!(measure(algo, p, nodes, m).dec_bytes, lb.sd, "{algo} sd");
    }
    for algo in [
        Algorithm::Naive,
        Algorithm::CRing,
        Algorithm::CRd,
        Algorithm::Hs2,
    ] {
        assert_eq!(measure(algo, p, nodes, m).enc_bytes, lb.se, "{algo} se");
    }
    for algo in [
        Algorithm::Naive,
        Algorithm::ORd,
        Algorithm::CRing,
        Algorithm::CRd,
        Algorithm::Hs1,
        Algorithm::Hs2,
    ] {
        assert_eq!(measure(algo, p, nodes, m).enc_rounds, lb.re, "{algo} re");
    }
    for algo in [
        Algorithm::Naive,
        Algorithm::ORd,
        Algorithm::ORd2,
        Algorithm::CRd,
    ] {
        assert_eq!(measure(algo, p, nodes, m).comm_rounds, lb.rc, "{algo} rc");
    }
}

/// The rd bound's tightness claims from Section IV-A:
/// O-RD2 achieves rd = lg N (tight when ℓ is constant), and HS1 achieves
/// rd = ⌈N/ℓ⌉ (rd can be 1 when ℓ ≥ N).
#[test]
fn rd_bound_tightness_claims() {
    // ℓ = 1: O-RD2 gives rd = lg N.
    let mx = measure(Algorithm::ORd2, 16, 16, 8);
    assert_eq!(mx.dec_rounds, 4);

    // ℓ ≥ N: HS1 decrypts once per process.
    let mx = measure(Algorithm::Hs1, 64, 4, 8);
    assert_eq!(mx.dec_rounds, 1);
    assert_eq!(lower_bounds(64, 4, 8).rd, 1);
}

/// Unencrypted algorithms still respect the communication bounds
/// (they are classic results, not new to this paper).
#[test]
fn unencrypted_algorithms_respect_comm_bounds() {
    let (p, nodes, m) = (16usize, 4usize, 16usize);
    let lb = lower_bounds(p, nodes, m);
    for algo in [
        Algorithm::Ring,
        Algorithm::RingRanked,
        Algorithm::Rd,
        Algorithm::Bruck,
        Algorithm::Mvapich,
    ] {
        let mx = measure(algo, p, nodes, m);
        assert!(mx.comm_rounds >= lb.rc, "{algo}");
        assert!(mx.sc_payload() >= lb.sc, "{algo}");
    }
}
