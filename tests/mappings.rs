//! Process-mapping sensitivity: the paper's Tables III vs IV story.
//!
//! Block vs cyclic mapping changes which hops cross nodes. Algorithms react
//! very differently: natural-order Ring and RD degrade badly under cyclic
//! mapping, the rank-ordered Ring and C-Ring are oblivious, and HS1/HS2 pay
//! a rank-order rearrangement penalty.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, Metrics, WorldSpec};

const SEED: u64 = 7;

fn traffic(algo: Algorithm, p: usize, nodes: usize, mapping: Mapping, m: usize) -> Metrics {
    let spec = WorldSpec::new(
        Topology::new(p, nodes, mapping),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    let report = run(&spec, move |ctx| {
        allgather(ctx, algo, m).verify(SEED);
    });
    Metrics::component_sum(&report.metrics)
}

fn latency(algo: Algorithm, mapping: Mapping, m: usize) -> f64 {
    // NIC contention on: the cyclic-mapping penalty of the ring-based
    // baseline is precisely that every hop competes for the NIC. Average a
    // few runs to smooth the contention-ordering noise.
    let spec = WorldSpec::new(
        Topology::new(32, 4, mapping),
        profile::noleland(),
        DataMode::Phantom,
    );
    let samples: Vec<f64> = (0..3)
        .map(|_| {
            run(&spec, move |ctx| {
                allgather(ctx, algo, m).verify(SEED);
            })
            .latency_us
        })
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Natural-order Ring sends (almost) everything inter-node under cyclic
/// mapping, but only 1/ℓ of it under block mapping.
#[test]
fn natural_ring_is_mapping_sensitive() {
    let block = traffic(Algorithm::Ring, 16, 4, Mapping::Block, 64).inter_bytes_sent;
    let cyclic = traffic(Algorithm::Ring, 16, 4, Mapping::Cyclic, 64).inter_bytes_sent;
    assert!(
        cyclic >= 3 * block,
        "cyclic {cyclic} should dwarf block {block}"
    );
}

/// The rank-ordered Ring moves the same inter-node volume regardless of
/// mapping (Kandalla et al.'s point).
#[test]
fn ranked_ring_is_mapping_oblivious() {
    let block = traffic(Algorithm::RingRanked, 16, 4, Mapping::Block, 64).inter_bytes_sent;
    let cyclic = traffic(Algorithm::RingRanked, 16, 4, Mapping::Cyclic, 64).inter_bytes_sent;
    assert_eq!(block, cyclic);
}

/// C-Ring's groups contain one process per node under both mappings, so its
/// traffic mix is identical (the paper: "C-Ring is oblivious to process
/// mapping").
#[test]
fn c_ring_is_mapping_oblivious() {
    for (p, nodes) in [(16, 4), (24, 3)] {
        let block = traffic(Algorithm::CRing, p, nodes, Mapping::Block, 64);
        let cyclic = traffic(Algorithm::CRing, p, nodes, Mapping::Cyclic, 64);
        assert_eq!(block.inter_bytes_sent, cyclic.inter_bytes_sent);
        assert_eq!(block.enc_rounds, cyclic.enc_rounds);
        assert_eq!(block.dec_rounds, cyclic.dec_rounds);
    }
}

/// O-RD is mapping-sensitive: under cyclic mapping the early (inter-node)
/// rounds are small and the large late rounds run over the slower intra
/// links, so the crypto mix changes and large-message latency rises — the
/// paper's "the RD algorithm is sensitive to process mapping".
#[test]
fn o_rd_is_mapping_sensitive() {
    // Crypto distribution changes: cyclic decrypt-to-forward happens in the
    // intra rounds, and encrypted volume differs from block order.
    let block = traffic(Algorithm::ORd, 16, 4, Mapping::Block, 64);
    let cyclic = traffic(Algorithm::ORd, 16, 4, Mapping::Cyclic, 64);
    assert_ne!(
        (block.enc_bytes, block.dec_bytes),
        (cyclic.enc_bytes, cyclic.dec_bytes),
        "O-RD crypto mix should depend on the mapping"
    );
}

/// MVAPICH-style baseline latency degrades under cyclic mapping for large
/// messages (paper: 15.9 ms → 43.3 ms at 256 KB), while C-Ring's latency is
/// unchanged up to NIC-contention noise.
#[test]
fn baseline_latency_degrades_under_cyclic() {
    let m = 256 * 1024;
    let block = latency(Algorithm::Mvapich, Mapping::Block, m);
    let cyclic = latency(Algorithm::Mvapich, Mapping::Cyclic, m);
    assert!(
        cyclic > 1.25 * block,
        "cyclic {cyclic:.0} µs should be well above block {block:.0} µs"
    );

    let cb = latency(Algorithm::CRing, Mapping::Block, m);
    let cc = latency(Algorithm::CRing, Mapping::Cyclic, m);
    assert!((cb - cc).abs() / cb < 0.05, "C-Ring: {cb:.0} vs {cc:.0}");
}

/// HS1/HS2 pay the strided rearrangement copy under cyclic mapping
/// (the paper: "an extra copy is needed for maintaining the correct order").
#[test]
fn hs_pays_rearrangement_penalty_under_cyclic() {
    let m = 64 * 1024;
    for algo in [Algorithm::Hs1, Algorithm::Hs2] {
        let block = latency(algo, Mapping::Block, m);
        let cyclic = latency(algo, Mapping::Cyclic, m);
        assert!(
            cyclic > block,
            "{algo}: cyclic {cyclic:.0} should exceed block {block:.0}"
        );
    }
}

/// Under block mapping with ℓ ≥ 2, O-Ring concentrates crypto on the node
/// boundary processes; under ℓ = 1 every process is a boundary.
#[test]
fn o_ring_boundary_concentration() {
    let spec = WorldSpec::new(
        Topology::new(8, 4, Mapping::Block),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    let report = run(&spec, |ctx| {
        allgather(ctx, Algorithm::ORing, 32).verify(SEED);
    });
    // Ranks 1,3,5,7 are exit processes (succ on another node) → they encrypt;
    // ranks 0,2,4,6 are entry processes → they decrypt.
    for rank in 0..8 {
        let m = &report.metrics[rank];
        if rank % 2 == 1 {
            assert_eq!(m.enc_rounds, 7, "exit rank {rank}");
        } else {
            assert_eq!(m.dec_rounds, 7, "entry rank {rank}");
        }
    }
}
