//! Long-running stress tests (excluded from the default run; invoke with
//! `cargo test -p eag-integration --test stress -- --ignored`).

use eag_core::{allgather, allgatherv, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hundreds of random collectives in sequence inside long-lived worlds:
/// epochs, tag spaces, and shared-memory slots must never collide.
#[test]
#[ignore = "soak test: ~minutes"]
fn soak_random_collective_sequences() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for world_idx in 0..8 {
        let nodes = [2usize, 3, 4][world_idx % 3];
        let ell = 1 + world_idx % 4;
        let p = nodes * ell;
        let seed = rng.random::<u64>();
        let plan: Vec<(usize, usize)> = (0..40)
            .map(|_| {
                (
                    rng.random_range(0..Algorithm::all().len()),
                    rng.random_range(0..512usize),
                )
            })
            .collect();
        let spec = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::free(),
            DataMode::Real { seed },
        );
        let plan2 = plan.clone();
        run(&spec, move |ctx| {
            for &(ai, m) in &plan2 {
                let algo = Algorithm::all()[ai];
                allgather(ctx, algo, m).verify(seed);
            }
        });
    }
}

/// Alternating uniform and varying collectives in one world.
#[test]
#[ignore = "soak test: ~minutes"]
fn soak_mixed_allgather_and_allgatherv() {
    let (p, nodes, seed) = (12usize, 3usize, 77u64);
    let spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Cyclic),
        profile::free(),
        DataMode::Real { seed },
    );
    run(&spec, move |ctx| {
        for round in 0..60 {
            allgather(ctx, Algorithm::Hs2, 64 + round).verify(seed);
            let lens: Vec<usize> = (0..p).map(|r| (r * 13 + round) % 200).collect();
            allgatherv(ctx, Algorithm::CRing, &lens).verify(seed);
            allgather(ctx, Algorithm::ORd2, round % 97).verify(seed);
        }
    });
}

/// A large phantom world exercising the p = 1024 path outside the benches.
#[test]
#[ignore = "soak test: spawns 1024 threads"]
fn soak_bridges2_scale_phantom() {
    let spec = WorldSpec::new(
        Topology::new(1024, 16, Mapping::Block),
        profile::bridges2(),
        DataMode::Phantom,
    );
    let report = run(&spec, |ctx| {
        allgather(ctx, Algorithm::Hs2, 64 * 1024).verify(0);
    });
    assert!(report.latency_us > 0.0);
}
