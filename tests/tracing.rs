//! Virtual-time trace recording and active-adversary fault injection.

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, BusyBreakdown, DataMode, EventKind, FaultPlan, WorldSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEED: u64 = 0x7A;

fn traced_spec(p: usize, nodes: usize) -> WorldSpec {
    let mut s = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed: SEED },
    );
    s.trace = true;
    s.nic_contention = false;
    s
}

#[test]
fn traces_cover_every_rank_and_stay_monotone() {
    let report = run(&traced_spec(8, 4), |ctx| {
        allgather(ctx, Algorithm::Hs2, 256).verify(SEED);
    });
    assert_eq!(report.traces.len(), 8);
    for (rank, trace) in report.traces.iter().enumerate() {
        assert!(!trace.is_empty(), "rank {rank} recorded nothing");
        let mut prev_end = 0.0f64;
        for e in trace {
            assert!(e.start_us >= prev_end - 1e-9, "rank {rank}: overlap");
            assert!(e.end_us >= e.start_us, "rank {rank}: negative duration");
            prev_end = e.end_us;
        }
        // The last event ends at the rank's final clock.
        assert!((prev_end - report.clocks_us[rank]).abs() < 1e-9);
    }
}

#[test]
fn trace_accounts_for_the_whole_critical_path() {
    let report = run(&traced_spec(8, 4), |ctx| {
        allgather(ctx, Algorithm::CRing, 1024).verify(SEED);
    });
    for (rank, trace) in report.traces.iter().enumerate() {
        let busy = BusyBreakdown::of(trace).total_us();
        // Events are contiguous intervals on the virtual clock, so their sum
        // can never exceed the final clock; it can be less only by the gaps
        // between an arrival and the next operation (there are none here).
        assert!(
            busy <= report.clocks_us[rank] + 1e-9,
            "rank {rank}: busy {busy} > clock {}",
            report.clocks_us[rank]
        );
    }
}

#[test]
fn traces_show_the_expected_crypto_ops() {
    let report = run(&traced_spec(8, 4), |ctx| {
        allgather(ctx, Algorithm::Naive, 64).verify(SEED);
    });
    for trace in &report.traces {
        let encs = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Encrypt { .. }))
            .count();
        let decs = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Decrypt { .. }))
            .count();
        assert_eq!(encs, 1, "Naive encrypts exactly once per rank");
        assert_eq!(decs, 7, "Naive decrypts p-1 ciphertexts");
    }
}

#[test]
fn gantt_renders_all_ranks() {
    let report = run(&traced_spec(4, 2), |ctx| {
        allgather(ctx, Algorithm::Hs1, 64).verify(SEED);
    });
    let chart = eag_runtime::trace::render_gantt(&report.traces, 60);
    for rank in 0..4 {
        assert!(chart.contains(&format!("rank {rank:>4}")));
    }
    assert!(chart.contains('E') || chart.contains('D'));
}

/// An on-path adversary corrupting any inter-node frame aborts every
/// encrypted collective (GCM tag mismatch) — wrong data is never delivered.
#[test]
fn corrupting_any_early_frame_aborts_encrypted_collectives() {
    for &algo in Algorithm::encrypted_all() {
        for frame in [0u64, 1, 2] {
            let mut spec = WorldSpec::new(
                Topology::new(8, 4, Mapping::Block),
                profile::free(),
                DataMode::Real { seed: SEED },
            );
            spec.faults = FaultPlan {
                corrupt_nth_inter_frame: Some(frame),
                ..FaultPlan::default()
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                run(&spec, move |ctx| {
                    allgather(ctx, algo, 128).verify(SEED);
                })
            }));
            assert!(
                result.is_err(),
                "{algo}: corruption of inter-node frame {frame} went undetected"
            );
        }
    }
}

/// The same corruption against an *unencrypted* all-gather is silent: the
/// collective completes and delivers wrong bytes. This is the integrity
/// motivation of the paper's threat model.
#[test]
fn corruption_is_silent_without_encryption() {
    let mut spec = WorldSpec::new(
        Topology::new(8, 4, Mapping::Block),
        profile::free(),
        DataMode::Real { seed: SEED },
    );
    spec.faults = FaultPlan {
        corrupt_nth_inter_frame: Some(0),
        ..FaultPlan::default()
    };
    let report = run(&spec, |ctx| {
        let out = allgather(ctx, Algorithm::Ring, 128);
        // Completes without any error...
        assert!(out.is_complete());
        // ...but at least one delivered block no longer matches its source.
        let mut corrupted = 0;
        for (rank, block) in out.into_blocks().into_iter().enumerate() {
            if *block.data.rope() != eag_runtime::pattern_block(SEED, rank, 128) {
                corrupted += 1;
            }
        }
        corrupted
    });
    let total: usize = report.outputs.iter().sum();
    assert!(total > 0, "corruption should have reached some output");
}
