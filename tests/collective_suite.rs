//! The collective-suite smoke: every new operation (broadcast,
//! gather/scatter incl. the irregular variants, all-to-all) under
//! fixed-seed chaos and under multi-crash recovery, plus the `allgatherv`
//! crash-injection acceptance test (variable lengths must survive a
//! shrink and re-run byte-identically).
//!
//! CI runs this target as the `collective-suite` job.

use eag_core::{varying_lens, Algorithm, AlltoallAlgo, BcastAlgo, Collective, RootedAlgo};
use eag_integration::{collective_chaos_run, collective_crash_run, DATA_SEED};
use eag_netsim::{Crash, FaultPlan};

const CHAOS_SEED: u64 = 0xC0FFEE;

#[test]
fn every_new_collective_recovers_from_canonical_chaos_mix() {
    // Fixed-seed drop 1% + tamper 1%: every new operation must deliver
    // byte-identical results to its fault-free run.
    let plan = FaultPlan::drop_and_tamper(10, 10, CHAOS_SEED);
    for c in Collective::new_operations_all() {
        let r = collective_chaos_run(c, 16, 8, 128, plan.clone());
        assert!(
            r.byte_identical,
            "{c} not byte-identical under drop 1% + tamper 1%: {:?}",
            r.error
        );
    }
}

#[test]
fn every_new_collective_survives_a_single_crash() {
    // Victims are ranks that send in the main phase of every variant
    // (interior tree ranks), so the armed crash reliably fires.
    for c in Collective::new_operations_all() {
        let victim = match c {
            Collective::Scatter(RootedAlgo::Linear) | Collective::Scatterv(RootedAlgo::Linear) => 0,
            _ => 4,
        };
        let r = collective_crash_run(c, 8, 4, 64, vec![Crash::before(victim, 1)]);
        assert!(r.ok(), "{c}: single crash broke the recovery contract: {r:?}");
        if r.fired {
            assert_eq!(r.survivors, 7, "{c}");
            assert_eq!(r.crashed, vec![victim], "{c}");
            assert!(r.recoveries > 0, "{c}: crash fired but nothing re-ran");
        }
    }
}

#[test]
fn every_new_collective_survives_a_double_crash() {
    for c in Collective::new_operations_all() {
        let r = collective_crash_run(
            c,
            8,
            4,
            64,
            vec![Crash::before(2, 1), Crash::before(5, 0).at_epoch(1)],
        );
        assert!(r.ok(), "{c}: double crash broke the recovery contract: {r:?}");
        assert!(r.survivors >= 6, "{c}: more ranks died than scheduled");
    }
}

#[test]
fn rooted_collectives_degrade_cleanly_when_the_root_dies() {
    // Rank 0 is the root of every rooted operation and sends in every
    // variant's main phase. With the root in the failed set the data is
    // lost: every survivor must converge on the same empty-expectation
    // output rather than inventing blocks.
    for c in [
        Collective::Broadcast(BcastAlgo::Binomial),
        Collective::Broadcast(BcastAlgo::Pipelined),
        Collective::Gather(RootedAlgo::Binomial),
        Collective::Gatherv(RootedAlgo::Linear),
        Collective::Scatter(RootedAlgo::Binomial),
        Collective::Scatterv(RootedAlgo::Binomial),
    ] {
        let r = collective_crash_run(c, 8, 4, 64, vec![Crash::before(0, 1)]);
        assert!(r.ok(), "{c}: root death broke the recovery contract: {r:?}");
        if r.fired {
            assert_eq!(r.crashed, vec![0], "{c}");
        }
    }
}

#[test]
fn allgatherv_crash_preserves_variable_lengths_byte_identically() {
    // The satellite acceptance test: an allgatherv with per-rank lengths
    // survives a shrink — the survivors re-run with the *original*
    // lengths and every survivor's degraded output is byte-identical.
    let (p, nodes, m) = (8usize, 4usize, 96usize);
    let lens = varying_lens(p, m);
    for algo in [
        Algorithm::ORing,  // group- and varying-capable: re-runs as itself
        Algorithm::OBruck, // ditto, log-round
        Algorithm::Naive,
        Algorithm::CRing, // varying but not group-capable: falls back to O-Ring
    ] {
        let c = Collective::Allgatherv(algo);
        let r = collective_crash_run(c, p, nodes, m, vec![Crash::before(3, 1)]);
        assert!(r.ok(), "{c}: crash broke the recovery contract: {r:?}");
        assert!(r.fired, "{c}: the armed crash never fired — test is vacuous");
        assert_eq!(r.crashed, vec![3], "{c}");
        assert!(r.recoveries > 0, "{c}");
        assert_eq!(
            lens,
            varying_lens(p, m),
            "canonical length derivation must be stable"
        );
    }
    // HS2 moves data through shared memory, so a send-step-armed crash
    // never fires in its main phase; it still must complete cleanly under
    // the recovery wrapper (and would fall back to O-Ring on a shrink).
    let r = collective_crash_run(
        Collective::Allgatherv(Algorithm::Hs2),
        p,
        nodes,
        m,
        vec![Crash::before(3, 1)],
    );
    assert!(r.ok(), "allgatherv/HS2 under recovery wrapper: {r:?}");
}

#[test]
fn alltoall_double_crash_keeps_pairwise_outputs_consistent() {
    // A personalized exchange under two crashes: every survivor must end
    // with exactly the survivor-sourced blocks addressed to *it*.
    for variant in [AlltoallAlgo::Pairwise, AlltoallAlgo::Bruck] {
        let c = Collective::Alltoall(variant);
        let r = collective_crash_run(
            c,
            8,
            4,
            64,
            vec![Crash::before(1, 2), Crash::before(6, 1)],
        );
        assert!(r.ok(), "{c}: {r:?}");
    }
}

#[test]
fn data_seed_is_the_shared_chaos_seed() {
    // The harness verifies against DATA_SEED; keep the constant pinned so
    // recovery schedules in the bench layer stay comparable.
    assert_eq!(DATA_SEED, 7);
}
