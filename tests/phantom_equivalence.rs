//! Phantom-mode equivalence: `Data::Phantom` is a length-only stand-in for
//! the real rope-backed payloads, so a phantom run must agree with a real
//! run on every observable length — output block lengths at every rank and
//! the multiset of wire-frame lengths on every inter-node link. This is
//! what makes p=1024 phantom simulations trustworthy proxies for the
//! byte-carrying runs.

use std::collections::BTreeMap;

use eag_core::{allgather, Algorithm, BcastAlgo, Collective};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

const SEED: u64 = 0xFA57;

/// Observable shape of one run: per-rank output block lengths, plus the
/// sorted frame lengths seen on each (src, dst) inter-node link.
#[derive(Debug, PartialEq, Eq)]
struct Shape {
    block_lens: Vec<Vec<usize>>,
    link_frames: BTreeMap<(usize, usize), Vec<usize>>,
}

fn shape(algo: Algorithm, p: usize, nodes: usize, m: usize, mode: DataMode) -> Shape {
    let spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::free(),
        mode,
    );
    let report = run(&spec, move |ctx| {
        allgather(ctx, algo, m)
            .into_blocks()
            .iter()
            .map(|b| b.data.len())
            .collect::<Vec<usize>>()
    });
    let mut link_frames: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for f in report.wiretap.frames() {
        link_frames.entry((f.src, f.dst)).or_default().push(f.len);
    }
    for lens in link_frames.values_mut() {
        lens.sort_unstable();
    }
    Shape {
        block_lens: report.outputs,
        link_frames,
    }
}

/// Every algorithm × (p, N) × message size: phantom lengths match the
/// real-mode rope lengths, block by block and frame by frame.
#[test]
fn phantom_lengths_match_real_rope_lengths() {
    for &algo in Algorithm::all() {
        for (p, nodes) in [(8usize, 2usize), (16, 4), (12, 3)] {
            for m in [1usize, 64, 1000] {
                let phantom = shape(algo, p, nodes, m, DataMode::Phantom);
                let real = shape(algo, p, nodes, m, DataMode::Real { seed: SEED });
                assert_eq!(
                    phantom, real,
                    "{algo} p={p} N={nodes} m={m}: phantom run diverged from real run"
                );
            }
        }
    }
}

/// The scheduler's headline payoff: a byte-carrying real-mode world at
/// p=256 on one machine, checked against its phantom twin. Log-round
/// algorithms keep the round count at ⌈lg 256⌉ = 8 so the cell stays cheap
/// under default `cargo test` settings.
#[test]
fn phantom_equivalence_real_mode_p256() {
    for algo in [Algorithm::OBruck, Algorithm::ORd] {
        let phantom = shape(algo, 256, 8, 64, DataMode::Phantom);
        let real = shape(algo, 256, 8, 64, DataMode::Real { seed: SEED });
        assert_eq!(
            phantom, real,
            "{algo} p=256 N=8 m=64: phantom run diverged from real run"
        );
    }
}

/// Observable shape of one collective run; sparse outputs (gather roots,
/// scatter own-slots) contribute only the slots their role delivers.
fn shape_collective(c: Collective, p: usize, nodes: usize, m: usize, mode: DataMode) -> Shape {
    let spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::free(),
        mode,
    );
    let report = run(&spec, move |ctx| {
        let out = c.run(ctx, m);
        (0..out.p())
            .filter_map(|r| out.get(r).map(|b| b.data.len()))
            .collect::<Vec<usize>>()
    });
    let mut link_frames: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for f in report.wiretap.frames() {
        link_frames.entry((f.src, f.dst)).or_default().push(f.len);
    }
    for lens in link_frames.values_mut() {
        lens.sort_unstable();
    }
    Shape {
        block_lens: report.outputs,
        link_frames,
    }
}

/// Every new collective (broadcast, gather/scatter, the irregular
/// variants, all-to-all) × (p, N) × message size: phantom lengths match
/// the real-mode rope lengths, block by block and frame by frame. The
/// sealed length-exchange prologue of the irregular operations carries
/// real metadata bytes in both modes, so its frames must agree too.
#[test]
fn phantom_lengths_match_real_for_new_collectives() {
    for c in Collective::new_operations_all() {
        for (p, nodes) in [(8usize, 2usize), (16, 4), (12, 3)] {
            for m in [1usize, 64, 1000] {
                let phantom = shape_collective(c, p, nodes, m, DataMode::Phantom);
                let real = shape_collective(c, p, nodes, m, DataMode::Real { seed: SEED });
                assert_eq!(
                    phantom, real,
                    "{c} p={p} N={nodes} m={m}: phantom run diverged from real run"
                );
            }
        }
    }
}

/// Real-mode p=256 for a new collective: the binomial broadcast finishes
/// in ⌈lg 256⌉ = 8 rounds, so the byte-carrying cell stays cheap.
#[test]
fn phantom_equivalence_real_mode_p256_broadcast() {
    let c = Collective::Broadcast(BcastAlgo::Binomial);
    let phantom = shape_collective(c, 256, 8, 64, DataMode::Phantom);
    let real = shape_collective(c, 256, 8, 64, DataMode::Real { seed: SEED });
    assert_eq!(
        phantom, real,
        "{c} p=256 N=8 m=64: phantom run diverged from real run"
    );
}

/// The equivalence holds for the cyclic mapping too (different ranks are
/// node-local, so the plain/sealed split of the traffic changes).
#[test]
fn phantom_equivalence_cyclic_mapping() {
    for &algo in Algorithm::all() {
        let spec =
            |mode| WorldSpec::new(Topology::new(12, 4, Mapping::Cyclic), profile::free(), mode);
        let lens = |mode| {
            run(&spec(mode), |ctx| {
                allgather(ctx, algo, 96)
                    .into_blocks()
                    .iter()
                    .map(|b| b.data.len())
                    .collect::<Vec<usize>>()
            })
            .outputs
        };
        assert_eq!(
            lens(DataMode::Phantom),
            lens(DataMode::Real { seed: SEED }),
            "{algo}: cyclic-mapping phantom lengths diverged"
        );
    }
}
