//! Sweep message sizes on a simulated cluster and print which algorithm
//! wins each size band — a miniature version of the paper's Table III that
//! you can point at any (p, N, mapping, profile) combination.
//!
//! ```text
//! cargo run --release --example cluster_sweep [p] [nodes] [block|cyclic]
//! ```

use eag_bench::fmt::size_label;
use eag_bench::tables::{best_scheme_table, candidate_schemes};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let nodes = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let mapping = match args.get(3).map(String::as_str) {
        Some("cyclic") => Mapping::Cyclic,
        _ => Mapping::Block,
    };
    let cfg = SimConfig {
        p,
        nodes,
        mapping,
        profile: "noleland".into(),
        reps: 3,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };

    println!(
        "best encrypted scheme by message size (p={p}, N={nodes}, {mapping} mapping)\n\
         candidates: {}\n",
        candidate_schemes()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let sizes = [
        16,
        256,
        1024,
        4 * 1024,
        16 * 1024,
        64 * 1024,
        256 * 1024,
        1024 * 1024,
    ];
    println!(
        "{:>8} {:>14} {:>10} {:>10}  best",
        "size", "MPI (us)", "naive", "best"
    );
    for row in best_scheme_table(&cfg, &sizes) {
        println!(
            "{:>8} {:>14.2} {:>+9.1}% {:>+9.1}%  {}",
            size_label(row.size),
            row.mpi_latency_us,
            row.naive_overhead_pct,
            row.best_overhead_pct,
            row.best
        );
    }
}
