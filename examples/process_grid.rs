//! Sub-communicator collectives on a 2-D process grid: every rank joins a
//! row group and a column group (as dense linear algebra codes do), and
//! both all-gathers stay encrypted across nodes.
//!
//! ```text
//! cargo run --release --example process_grid
//! ```

use eag_core::{allgather_group, Algorithm};
use eag_netsim::{profile, Mapping, Rank, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn main() {
    let (rows, cols) = (4usize, 4usize);
    let p = rows * cols;
    let seed = 11;
    let mut spec = WorldSpec::new(
        Topology::new(p, 4, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed },
    );
    spec.capture_wire = true;

    println!("{rows}x{cols} process grid on 4 nodes; row + column encrypted all-gathers\n");
    let report = run(&spec, move |ctx| {
        let me = ctx.rank();
        let row: Vec<Rank> = (0..cols).map(|c| (me / cols) * cols + c).collect();
        let col: Vec<Rank> = (0..rows).map(|r| r * cols + me % cols).collect();

        // Row group: with block mapping these are node-local → the
        // opportunistic algorithms send plaintext and skip crypto entirely.
        let row_out = allgather_group(ctx, Algorithm::ORd, &row, 2048);
        row_out.verify_members(seed, &row);
        // Column group: one member per node → every hop is encrypted.
        let col_out = allgather_group(ctx, Algorithm::OBruck, &col, 2048);
        col_out.verify_members(seed, &col);
        (ctx.metrics().enc_rounds, ctx.metrics().dec_rounds)
    });

    let enc: u64 = report.outputs.iter().map(|&(e, _)| e).sum();
    let dec: u64 = report.outputs.iter().map(|&(_, d)| d).sum();
    println!("total encryptions : {enc} (row phase contributed none — node-local)");
    println!("total decryptions : {dec}");
    println!("inter-node frames : {}", report.wiretap.frame_count());
    println!(
        "plaintext on wire : {}",
        if report.wiretap.saw_plaintext_frame() {
            "YES (bug!)"
        } else {
            "none"
        }
    );
    println!("latency           : {:.2} µs", report.latency_us);
}
