//! MPI_Allgatherv on encrypted links: each rank contributes a different
//! amount of data (an uneven domain decomposition), and the collective is
//! still encrypted end to end.
//!
//! ```text
//! cargo run --release --example variable_blocks
//! ```

use eag_core::{allgatherv, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn main() {
    let p = 12;
    // A lopsided decomposition: rank r owns (r^2 mod 701) * 8 bytes.
    let lens: Vec<usize> = (0..p).map(|r| (r * r % 701) * 8).collect();
    let total: usize = lens.iter().sum();
    println!("all-gather-v over {p} ranks / 3 nodes, {total} bytes total");
    println!("per-rank bytes: {lens:?}\n");

    let mut spec = WorldSpec::new(
        Topology::new(p, 3, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed: 99 },
    );
    spec.capture_wire = true;

    for algo in Algorithm::all()
        .iter()
        .copied()
        .filter(Algorithm::supports_varying)
    {
        let lens2 = lens.clone();
        let report = run(&spec, move |ctx| {
            allgatherv(ctx, algo, &lens2).verify(99);
        });
        println!(
            "{:<14} {:>10.2} us   {} inter-node frames, plaintext on wire: {}",
            algo.name(),
            report.latency_us,
            report.wiretap.frame_count(),
            if algo.is_encrypted() {
                if report.wiretap.saw_plaintext_frame() {
                    "YES (bug!)"
                } else {
                    "no"
                }
            } else {
                "yes (unencrypted baseline)"
            }
        );
    }
}
