//! Quickstart: run an encrypted all-gather on a simulated 4-node cluster
//! with real bytes and real AES-128-GCM, then print what the network saw.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn main() {
    // 16 processes on 4 nodes, block mapping, with the Noleland cost model.
    let mut spec = WorldSpec::new(
        Topology::new(16, 4, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed: 2024 },
    );
    spec.capture_wire = true;

    let m = 1024; // bytes per process
    let report = run(&spec, move |ctx| {
        let out = allgather(ctx, Algorithm::Hs2, m);
        out.verify(2024); // every rank has every block, bit-exact
        out.block_len()
    });

    println!("encrypted all-gather (HS2) of {m} B x 16 ranks complete");
    println!("  simulated latency : {:.2} us", report.latency_us);
    println!("  inter-node frames : {}", report.wiretap.frame_count());
    println!("  inter-node bytes  : {}", report.wiretap.total_bytes());
    println!(
        "  plaintext on wire : {}",
        if report.wiretap.saw_plaintext_frame() {
            "YES (bug!)"
        } else {
            "none"
        }
    );
    let max = report.max_metrics();
    println!(
        "  critical path     : rc={} re={} se={}B rd={} sd={}B",
        max.comm_rounds, max.enc_rounds, max.enc_bytes, max.dec_rounds, max.dec_bytes
    );
}
