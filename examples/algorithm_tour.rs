//! Tour of every all-gather algorithm in the library: runs each one with
//! real bytes on the same small world, verifies correctness, and prints the
//! six metrics of the paper side by side — so you can *see* Table II.
//!
//! ```text
//! cargo run --example algorithm_tour
//! ```

use eag_core::{allgather, bounds, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn main() {
    let (p, nodes, m, seed) = (16usize, 4usize, 128usize, 5u64);
    println!("all-gather algorithm tour: p={p}, N={nodes}, m={m}B, block mapping\n");
    println!(
        "{:<14} {:>4} {:>8} {:>4} {:>8} {:>4} {:>8}   correctness",
        "algorithm", "rc", "sc", "re", "se", "rd", "sd"
    );

    for &algo in Algorithm::all() {
        let spec = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed },
        );
        let report = run(&spec, move |ctx| {
            allgather(ctx, algo, m).verify(seed);
        });
        let mx = report.max_metrics();
        let check = match bounds::predict(algo, p, nodes, m) {
            Some(pred) => {
                let got = bounds::MetricSet {
                    rc: mx.comm_rounds,
                    sc: mx.sc_payload(),
                    re: mx.enc_rounds,
                    se: mx.enc_bytes,
                    rd: mx.dec_rounds,
                    sd: mx.dec_bytes,
                };
                if got == pred {
                    "verified, matches Table II"
                } else {
                    "verified (metrics differ)"
                }
            }
            None => "verified",
        };
        println!(
            "{:<14} {:>4} {:>8} {:>4} {:>8} {:>4} {:>8}   {check}",
            algo.name(),
            mx.comm_rounds,
            mx.sc(),
            mx.enc_rounds,
            mx.enc_bytes,
            mx.dec_rounds,
            mx.dec_bytes
        );
    }
}
