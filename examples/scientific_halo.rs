//! A domain-scenario example: a spectral solver's transpose step.
//!
//! Many scientific codes (FFT-based Poisson solvers, spectral CFD) call
//! MPI_Allgather every timestep to share per-rank boundary spectra. This
//! example simulates such a loop on an 8-node cluster processing sensitive
//! data (e.g. clinical imaging volumes on a public cloud): each timestep
//! all-gathers one plane of coefficients, encrypted, and we compare the
//! total simulated runtime of the Naive approach against HS2.
//!
//! ```text
//! cargo run --release --example scientific_halo
//! ```

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};

fn simulate_solver(algo: Algorithm, timesteps: usize, plane_bytes: usize) -> f64 {
    let spec = WorldSpec::new(
        Topology::new(64, 8, Mapping::Block),
        profile::noleland(),
        DataMode::Phantom,
    );
    let report = run(&spec, move |ctx| {
        for _ in 0..timesteps {
            let out = allgather(ctx, algo, plane_bytes);
            assert!(out.is_complete());
        }
    });
    report.latency_us
}

fn main() {
    let timesteps = 50;
    let plane = 64 * 1024; // 64 KB of spectral coefficients per rank per step
    println!("spectral transpose loop: 64 ranks / 8 nodes, {timesteps} timesteps, 64KB planes\n");

    let unencrypted = simulate_solver(Algorithm::Mvapich, timesteps, plane);
    println!("{:<22} {:>12.1} us", "unencrypted MPI", unencrypted);
    for algo in [
        Algorithm::Naive,
        Algorithm::ORd,
        Algorithm::CRing,
        Algorithm::Hs2,
    ] {
        let t = simulate_solver(algo, timesteps, plane);
        println!(
            "{:<22} {:>12.1} us  ({:+.1}% vs unencrypted)",
            algo.name(),
            t,
            (t / unencrypted - 1.0) * 100.0
        );
    }
    println!("\nthe gap between Naive and HS2 is the paper's contribution, per timestep");
}
