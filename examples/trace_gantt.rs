//! Renders a virtual-time Gantt chart of an encrypted all-gather, showing
//! how communication, encryption, and decryption interleave on every rank.
//!
//! ```text
//! cargo run --release --example trace_gantt [algorithm]
//! ```

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, trace::render_gantt, BusyBreakdown, DataMode, WorldSpec};

fn main() {
    let algo = std::env::args()
        .nth(1)
        .and_then(|s| Algorithm::by_name(&s))
        .unwrap_or(Algorithm::Hs2);

    let mut spec = WorldSpec::new(
        Topology::new(8, 4, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed: 4 },
    );
    spec.trace = true;
    spec.nic_contention = false;

    let report = run(&spec, move |ctx| {
        allgather(ctx, algo, 16 * 1024).verify(4);
    });

    println!(
        "{} of 16KB blocks, 8 ranks / 4 nodes (Noleland model)\n",
        algo.name()
    );
    print!("{}", render_gantt(&report.traces, 100));

    println!("\nper-rank busy breakdown (µs):");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "rank", "send", "recv/wait", "encrypt", "decrypt", "copy", "barrier"
    );
    for (rank, trace) in report.traces.iter().enumerate() {
        let b = BusyBreakdown::of(trace);
        println!(
            "{rank:>5} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            b.send_us, b.recv_us, b.enc_us, b.dec_us, b.copy_us, b.barrier_us
        );
    }
    println!("\ncollective latency: {:.2} µs", report.latency_us);
}
