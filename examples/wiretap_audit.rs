//! Security audit: run every encrypted algorithm with a wiretap on all
//! inter-node links and prove that (1) no frame is plaintext, and (2) no
//! process's input block ever appears as a byte substring of the captured
//! traffic — the paper's threat model of a network eavesdropper.
//!
//! ```text
//! cargo run --example wiretap_audit
//! ```

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{pattern_block, run, DataMode, WorldSpec};

fn main() {
    let seed = 77;
    let (p, nodes, m) = (12usize, 3usize, 256usize);
    println!(
        "auditing {} encrypted algorithms on p={p}, N={nodes}, m={m}B\n",
        Algorithm::encrypted_all().len()
    );

    for &algo in Algorithm::encrypted_all() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let mut spec = WorldSpec::new(
                Topology::new(p, nodes, mapping),
                profile::noleland(),
                DataMode::Real { seed },
            );
            spec.capture_wire = true;

            let report = run(&spec, move |ctx| {
                allgather(ctx, algo, m).verify(seed);
            });

            // 1. Classification: every inter-node frame must be ciphertext.
            assert!(
                !report.wiretap.saw_plaintext_frame(),
                "{algo}/{mapping}: plaintext frame on an inter-node link"
            );
            // 2. Content: no input block may leak, even inside a larger frame.
            for rank in 0..p {
                let block = pattern_block(seed, rank, m);
                assert!(
                    !report.wiretap.contains(&block),
                    "{algo}/{mapping}: rank {rank}'s plaintext leaked"
                );
            }
            println!(
                "  {algo:<8} {mapping:<6} ok — {} ciphertext frames, {} bytes on the wire",
                report.wiretap.frame_count(),
                report.wiretap.total_bytes()
            );
        }
    }
    println!("\nall encrypted algorithms pass the eavesdropper audit");
}
