//! The operation-generic collective surface: one [`Collective`] value names
//! an *operation × algorithm-variant* pair and knows how to run it over the
//! full world or an arbitrary survivor group, predict its Table-I metric
//! set, recover it through the multi-crash engine, and verify its output.
//!
//! The original crate surface was all-gather-only; every layer above
//! (runtime trace phases, bench schema, recovery engine) keyed on
//! [`Algorithm`] alone. `Collective` is the join point that lets
//! broadcast, (irregular) gather/scatter, and all-to-all ride the same
//! machinery: the shared item movers in [`crate::collective`], the
//! [`GatherOutput`] container (expected-slot semantics differ per
//! operation), and [`crate::collective::recover_collective`].
//!
//! ## Rooted operations under recovery
//!
//! Broadcast, gather, and scatter are rooted at global rank 0. If the root
//! itself is in the agreed failed set, the operation's data is lost — every
//! survivor deterministically returns an *empty-expectation* output
//! (trivially complete, canonically identical) rather than inventing
//! blocks. If the root survives, the re-run executes over the shrunk
//! member list with the root still at member position 0 (member lists are
//! sorted ascending).

use crate::algorithm::{allgather, Algorithm};
use crate::allgatherv::{allgatherv, allgatherv_group, recover_allgatherv};
use crate::bounds::MetricSet;
use crate::collective::{ceil_log2, recover_allgather, recover_collective};
use crate::encrypted::{
    alltoall_bruck, alltoall_pairwise, bcast_binomial, bcast_pipelined, bcast_segments,
    exchange_lengths, gather_binomial, gather_linear, scatter_binomial, scatter_linear,
};
use crate::group::allgather_group;
use crate::output::{DegradedOutput, GatherOutput};
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::ProcCtx;

/// A collective operation, in the MPI sense: what the data movement
/// *means*, independent of the algorithm that realizes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// Every rank contributes one block; every rank ends with all blocks.
    Allgather,
    /// All-gather with variable per-rank block lengths.
    Allgatherv,
    /// The root's block reaches every rank.
    Broadcast,
    /// Every rank's block reaches the root.
    Gather,
    /// Gather with variable per-rank block lengths (Träff's irregular
    /// case; lengths travel through a sealed exchange prologue).
    Gatherv,
    /// The root holds one distinct block per rank; each rank gets its own.
    Scatter,
    /// Scatter with variable per-rank block lengths.
    Scatterv,
    /// Complete personalized exchange: every rank holds one distinct
    /// block per *destination*.
    Alltoall,
}

impl Operation {
    /// Every operation, in id order.
    pub fn all() -> &'static [Operation] {
        use Operation::*;
        &[
            Allgather, Allgatherv, Broadcast, Gather, Scatter, Alltoall, Gatherv, Scatterv,
        ]
    }

    /// Stable numeric label for [`eag_runtime::Metrics::operation`].
    pub fn id(&self) -> u64 {
        use Operation::*;
        match self {
            Allgather => 1,
            Allgatherv => 2,
            Broadcast => 3,
            Gather => 4,
            Scatter => 5,
            Alltoall => 6,
            Gatherv => 7,
            Scatterv => 8,
        }
    }

    /// Short name, as used in bench schemas and `eag run --op`.
    pub fn name(&self) -> &'static str {
        use Operation::*;
        match self {
            Allgather => "allgather",
            Allgatherv => "allgatherv",
            Broadcast => "bcast",
            Gather => "gather",
            Gatherv => "gatherv",
            Scatter => "scatter",
            Scatterv => "scatterv",
            Alltoall => "alltoall",
        }
    }

    /// Looks an operation up by [`Operation::name`] (case-insensitive).
    pub fn by_name(name: &str) -> Option<Operation> {
        let lower = name.to_ascii_lowercase();
        Operation::all()
            .iter()
            .copied()
            .find(|o| o.name() == lower)
    }

    /// True for operations whose output is replicated at every rank
    /// (identical across survivors after recovery); false for rooted or
    /// personalized operations, whose per-rank outputs legitimately
    /// differ.
    pub fn is_replicated(&self) -> bool {
        use Operation::*;
        matches!(self, Allgather | Allgatherv | Broadcast)
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Broadcast algorithm variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcastAlgo {
    /// Chain pipeline: the block is cut into [`bcast_segments`] segments
    /// that stream down the member chain, decryption overlapped with
    /// forwarding.
    Pipelined,
    /// MPICH-style binomial tree; the root seals once and sealed subtree
    /// copies are forwarded as-is.
    Binomial,
}

impl BcastAlgo {
    /// Every variant.
    pub fn all() -> &'static [BcastAlgo] {
        &[BcastAlgo::Pipelined, BcastAlgo::Binomial]
    }

    /// Variant name.
    pub fn name(&self) -> &'static str {
        match self {
            BcastAlgo::Pipelined => "pipelined",
            BcastAlgo::Binomial => "binomial",
        }
    }
}

/// Gather/scatter algorithm variants (shared by the uniform and the
/// irregular operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootedAlgo {
    /// Direct: every non-root exchanges with the root, one edge per block.
    Linear,
    /// Binomial tree: `⌈lg q⌉` rounds, sealed blocks transiting
    /// intermediaries as-is.
    Binomial,
}

impl RootedAlgo {
    /// Every variant.
    pub fn all() -> &'static [RootedAlgo] {
        &[RootedAlgo::Linear, RootedAlgo::Binomial]
    }

    /// Variant name.
    pub fn name(&self) -> &'static str {
        match self {
            RootedAlgo::Linear => "linear",
            RootedAlgo::Binomial => "binomial",
        }
    }
}

/// All-to-all algorithm variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallAlgo {
    /// `q−1` pairwise sendrecv rounds; each block travels one edge.
    Pairwise,
    /// Bruck-style `⌈lg q⌉`-round store-and-forward with ciphertext
    /// forwarded as-is through intermediaries.
    Bruck,
}

impl AlltoallAlgo {
    /// Every variant.
    pub fn all() -> &'static [AlltoallAlgo] {
        &[AlltoallAlgo::Pairwise, AlltoallAlgo::Bruck]
    }

    /// Variant name.
    pub fn name(&self) -> &'static str {
        match self {
            AlltoallAlgo::Pairwise => "pairwise",
            AlltoallAlgo::Bruck => "bruck",
        }
    }
}

/// The canonical per-rank length vector used whenever a `v`-operation is
/// driven by a single nominal size `m` (bench cells, `eag run`): lengths
/// cycle through `m/4, m/2, 3m/4, m` by rank, never below one byte. Every
/// layer derives the same vector from `(p, m)`, so no lengths need to be
/// carried in schemas or schedules.
pub fn varying_lens(p: usize, m: usize) -> Vec<usize> {
    (0..p).map(|r| ((m * (r % 4 + 1)) / 4).max(1)).collect()
}

/// An operation together with the algorithm variant that realizes it —
/// the unit the runtime traces, the bench schedules, and the recovery
/// engine restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// All-gather via one of the 19 registered [`Algorithm`]s.
    Allgather(Algorithm),
    /// Variable-length all-gather via a varying-capable [`Algorithm`].
    Allgatherv(Algorithm),
    /// Encrypted broadcast.
    Broadcast(BcastAlgo),
    /// Encrypted gather to rank 0.
    Gather(RootedAlgo),
    /// Encrypted irregular gather to rank 0.
    Gatherv(RootedAlgo),
    /// Encrypted scatter from rank 0.
    Scatter(RootedAlgo),
    /// Encrypted irregular scatter from rank 0.
    Scatterv(RootedAlgo),
    /// Encrypted all-to-all.
    Alltoall(AlltoallAlgo),
}

impl Collective {
    /// The operation this collective realizes.
    pub fn operation(&self) -> Operation {
        match self {
            Collective::Allgather(_) => Operation::Allgather,
            Collective::Allgatherv(_) => Operation::Allgatherv,
            Collective::Broadcast(_) => Operation::Broadcast,
            Collective::Gather(_) => Operation::Gather,
            Collective::Gatherv(_) => Operation::Gatherv,
            Collective::Scatter(_) => Operation::Scatter,
            Collective::Scatterv(_) => Operation::Scatterv,
            Collective::Alltoall(_) => Operation::Alltoall,
        }
    }

    /// The algorithm-variant name (the part after the `/` in
    /// [`Collective::name`]).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Collective::Allgather(a) | Collective::Allgatherv(a) => a.name(),
            Collective::Broadcast(b) => b.name(),
            Collective::Gather(r)
            | Collective::Gatherv(r)
            | Collective::Scatter(r)
            | Collective::Scatterv(r) => r.name(),
            Collective::Alltoall(a) => a.name(),
        }
    }

    /// Full display name, `operation/variant` — e.g. `bcast/binomial`,
    /// `allgather/O-Ring`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.operation().name(), self.variant_name())
    }

    /// Builds a collective from an operation name and a variant name
    /// (both case-insensitive). For the all-gather operations the variant
    /// is an [`Algorithm`] paper name.
    pub fn by_names(op: &str, variant: &str) -> Option<Collective> {
        let lower = variant.to_ascii_lowercase();
        Some(match Operation::by_name(op)? {
            Operation::Allgather => Collective::Allgather(Algorithm::by_name(variant)?),
            Operation::Allgatherv => {
                let a = Algorithm::by_name(variant)?;
                if !a.supports_varying() {
                    return None;
                }
                Collective::Allgatherv(a)
            }
            Operation::Broadcast => Collective::Broadcast(
                BcastAlgo::all().iter().copied().find(|b| b.name() == lower)?,
            ),
            Operation::Gather | Operation::Gatherv | Operation::Scatter | Operation::Scatterv => {
                let r = RootedAlgo::all().iter().copied().find(|r| r.name() == lower)?;
                match Operation::by_name(op)? {
                    Operation::Gather => Collective::Gather(r),
                    Operation::Gatherv => Collective::Gatherv(r),
                    Operation::Scatter => Collective::Scatter(r),
                    _ => Collective::Scatterv(r),
                }
            }
            Operation::Alltoall => Collective::Alltoall(
                AlltoallAlgo::all().iter().copied().find(|a| a.name() == lower)?,
            ),
        })
    }

    /// Every encrypted collective of the *new* operations (everything but
    /// the all-gathers), one entry per operation × variant.
    pub fn new_operations_all() -> Vec<Collective> {
        let mut v = Vec::new();
        for &b in BcastAlgo::all() {
            v.push(Collective::Broadcast(b));
        }
        for &r in RootedAlgo::all() {
            v.push(Collective::Gather(r));
            v.push(Collective::Scatter(r));
            v.push(Collective::Gatherv(r));
            v.push(Collective::Scatterv(r));
        }
        for &a in AlltoallAlgo::all() {
            v.push(Collective::Alltoall(a));
        }
        v
    }

    fn kernel_name(&self) -> &'static str {
        match self {
            Collective::Broadcast(BcastAlgo::Pipelined) => "bcast/pipelined",
            Collective::Broadcast(BcastAlgo::Binomial) => "bcast/binomial",
            Collective::Gather(RootedAlgo::Linear) => "gather/linear",
            Collective::Gather(RootedAlgo::Binomial) => "gather/binomial",
            Collective::Gatherv(RootedAlgo::Linear) => "gatherv/linear",
            Collective::Gatherv(RootedAlgo::Binomial) => "gatherv/binomial",
            Collective::Scatter(RootedAlgo::Linear) => "scatter/linear",
            Collective::Scatter(RootedAlgo::Binomial) => "scatter/binomial",
            Collective::Scatterv(RootedAlgo::Linear) => "scatterv/linear",
            Collective::Scatterv(RootedAlgo::Binomial) => "scatterv/binomial",
            Collective::Alltoall(AlltoallAlgo::Pairwise) => "alltoall/pairwise",
            Collective::Alltoall(AlltoallAlgo::Bruck) => "alltoall/bruck",
            Collective::Allgather(_) | Collective::Allgatherv(_) => "allgather",
        }
    }

    /// Runs the collective over the full world with nominal block size
    /// `m` (`v`-operations derive per-rank lengths via [`varying_lens`]).
    pub fn run(&self, ctx: &mut ProcCtx, m: usize) -> GatherOutput {
        ctx.note_operation(self.operation().id());
        match self {
            Collective::Allgather(a) => allgather(ctx, *a, m),
            Collective::Allgatherv(a) => allgatherv(ctx, *a, &varying_lens(ctx.p(), m)),
            _ => {
                let members: Vec<Rank> = (0..ctx.p()).collect();
                self.run_group(ctx, &members, m)
            }
        }
    }

    /// Runs the collective among `members` only (ascending global ranks;
    /// every member calls with the identical list). This is the degraded
    /// re-run entry used by [`Collective::recover`]; rooted operations
    /// whose root (global rank 0) is not in `members` return an
    /// empty-expectation output — the data died with the root.
    pub fn run_group(&self, ctx: &mut ProcCtx, members: &[Rank], m: usize) -> GatherOutput {
        ctx.note_operation(self.operation().id());
        let p = ctx.p();
        let rooted = matches!(
            self.operation(),
            Operation::Broadcast
                | Operation::Gather
                | Operation::Gatherv
                | Operation::Scatter
                | Operation::Scatterv
        );
        if rooted && members.first() != Some(&0) {
            return GatherOutput::new_sparse(p, &[], m);
        }
        if matches!(self, Collective::Allgather(_) | Collective::Allgatherv(_)) {
            let group_algo = |a: &Algorithm| {
                if a.supports_groups() {
                    *a
                } else {
                    a.recovery_algorithm()
                }
            };
            return match self {
                Collective::Allgather(a) => allgather_group(ctx, group_algo(a), members, m),
                Collective::Allgatherv(a) => {
                    let a = if a.supports_groups() && a.supports_varying() {
                        *a
                    } else {
                        Algorithm::ORing
                    };
                    allgatherv_group(ctx, a, &varying_lens(p, m), members)
                }
                _ => unreachable!(),
            };
        }

        ctx.begin_collective();
        ctx.set_phase(self.kernel_name());
        let uniform = vec![m; p];
        match self {
            Collective::Broadcast(BcastAlgo::Pipelined) => {
                bcast_pipelined(ctx, members, m, tags::PHASE_BCAST)
            }
            Collective::Broadcast(BcastAlgo::Binomial) => {
                bcast_binomial(ctx, members, m, tags::PHASE_BCAST)
            }
            Collective::Gather(RootedAlgo::Linear) => {
                gather_linear(ctx, members, &uniform, tags::PHASE_GATHER)
            }
            Collective::Gather(RootedAlgo::Binomial) => {
                gather_binomial(ctx, members, &uniform, tags::PHASE_GATHER)
            }
            Collective::Scatter(RootedAlgo::Linear) => {
                scatter_linear(ctx, members, &uniform, tags::PHASE_SCATTER)
            }
            Collective::Scatter(RootedAlgo::Binomial) => {
                scatter_binomial(ctx, members, &uniform, tags::PHASE_SCATTER)
            }
            Collective::Gatherv(r) | Collective::Scatterv(r) => {
                // The irregular case: lengths are *not* global knowledge —
                // members learn them through the sealed exchange prologue
                // (re-run over the survivor group after a shrink).
                let nominal = varying_lens(p, m);
                let lens =
                    exchange_lengths(ctx, members, nominal[ctx.rank()], tags::PHASE_LEN_XCHG);
                match (self, r) {
                    (Collective::Gatherv(_), RootedAlgo::Linear) => {
                        gather_linear(ctx, members, &lens, tags::PHASE_GATHER)
                    }
                    (Collective::Gatherv(_), RootedAlgo::Binomial) => {
                        gather_binomial(ctx, members, &lens, tags::PHASE_GATHER)
                    }
                    (_, RootedAlgo::Linear) => {
                        scatter_linear(ctx, members, &lens, tags::PHASE_SCATTER)
                    }
                    (_, RootedAlgo::Binomial) => {
                        scatter_binomial(ctx, members, &lens, tags::PHASE_SCATTER)
                    }
                }
            }
            Collective::Alltoall(AlltoallAlgo::Pairwise) => {
                alltoall_pairwise(ctx, members, m, tags::PHASE_A2A)
            }
            Collective::Alltoall(AlltoallAlgo::Bruck) => {
                alltoall_bruck(ctx, members, m, tags::PHASE_A2A)
            }
            Collective::Allgather(_) | Collective::Allgatherv(_) => unreachable!(),
        }
    }

    /// Runs the collective under the multi-crash recovery engine:
    /// attempt, agree on failures, re-run over the survivor group.
    pub fn recover(&self, ctx: &mut ProcCtx, m: usize) -> DegradedOutput {
        match self {
            Collective::Allgather(a) => recover_allgather(ctx, *a, m),
            Collective::Allgatherv(a) => recover_allgatherv(ctx, *a, &varying_lens(ctx.p(), m)),
            _ => {
                let this = *self;
                recover_collective(
                    ctx,
                    |ctx| this.run(ctx, m),
                    |ctx, members| this.run_group(ctx, members, m),
                )
            }
        }
    }

    /// Verifies `out` against the deterministic payload pattern for
    /// `seed`, from the point of view of rank `me`. All-to-all outputs
    /// hold pair-keyed blocks; everything else holds origin-keyed blocks.
    pub fn verify(&self, me: Rank, out: &GatherOutput, seed: u64) {
        match self {
            Collective::Alltoall(_) => out.verify_pairwise(seed, me),
            _ => out.verify(seed),
        }
    }

    /// The closed-form Table-I-style metric prediction for this
    /// collective under block mapping (p, N powers of two, N ≥ 2, uniform
    /// blocks). `None` where no closed form is registered — the
    /// `v`-operations (the length prologue pollutes the per-rank maxima)
    /// and the Bruck all-to-all (shape-dependent forwarding maxima, like
    /// the opportunistic Bruck all-gather).
    pub fn predict(&self, p: usize, nodes: usize, m: usize) -> Option<MetricSet> {
        if let Collective::Allgather(a) = self {
            return crate::bounds::predict(*a, p, nodes, m);
        }
        if !p.is_power_of_two()
            || !nodes.is_power_of_two()
            || nodes < 2
            || !p.is_multiple_of(nodes)
        {
            return None;
        }
        let ell = (p / nodes) as u64;
        let (p64, m64) = (p as u64, m as u64);
        let lg = ceil_log2(p) as u64;
        let remote = (p64 - ell) * m64;
        Some(match self {
            Collective::Broadcast(BcastAlgo::Binomial) => MetricSet {
                rc: 1,
                sc: lg * m64,
                re: 1,
                se: m64,
                rd: 1,
                sd: m64,
            },
            Collective::Broadcast(BcastAlgo::Pipelined) => {
                let s = bcast_segments(m) as u64;
                MetricSet {
                    rc: s,
                    sc: m64,
                    re: s,
                    se: m64,
                    rd: s,
                    sd: m64,
                }
            }
            Collective::Gather(RootedAlgo::Linear) => MetricSet {
                rc: p64 - 1,
                sc: (p64 - 1) * m64,
                re: 1,
                se: m64,
                rd: p64 - ell,
                sd: remote,
            },
            Collective::Gather(RootedAlgo::Binomial) => MetricSet {
                rc: lg,
                sc: (p64 - 1) * m64,
                re: ell,
                se: ell * m64,
                rd: p64 - ell,
                sd: remote,
            },
            Collective::Scatter(_) => MetricSet {
                rc: 1,
                sc: (p64 - 1) * m64,
                re: p64 - ell,
                se: remote,
                rd: 1,
                sd: m64,
            },
            Collective::Alltoall(AlltoallAlgo::Pairwise) => MetricSet {
                rc: p64 - 1,
                sc: (p64 - 1) * m64,
                re: p64 - ell,
                se: remote,
                rd: p64 - ell,
                sd: remote,
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for Collective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::lower_bounds_op;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, Metrics, WorldSpec};

    const SEED: u64 = 0x0905;

    fn world(p: usize, nodes: usize) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::free(),
            DataMode::Real { seed: SEED },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn names_roundtrip() {
        for op in Operation::all() {
            assert_eq!(Operation::by_name(op.name()), Some(*op));
        }
        let mut all = vec![
            Collective::Allgather(Algorithm::ORing),
            Collective::Allgatherv(Algorithm::OBruck),
        ];
        all.extend(Collective::new_operations_all());
        for c in all {
            let joined = c.name();
            let (op, variant) = joined.split_once('/').unwrap();
            assert_eq!(Collective::by_names(op, variant), Some(c), "{joined}");
        }
        assert_eq!(Collective::by_names("bcast", "nope"), None);
        assert_eq!(Collective::by_names("allgatherv", "HS1"), None); // not varying-capable
        assert_eq!(Collective::by_names("nope", "binomial"), None);
    }

    #[test]
    fn operation_ids_are_distinct() {
        let mut ids: Vec<u64> = Operation::all().iter().map(Operation::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Operation::all().len());
    }

    #[test]
    fn every_new_collective_runs_and_labels_metrics() {
        let (p, m) = (8usize, 24usize);
        for c in Collective::new_operations_all() {
            let report = run(&world(p, 2), move |ctx| {
                let out = c.run(ctx, m);
                c.verify(ctx.rank(), &out, SEED);
            });
            assert!(
                !report.wiretap.saw_plaintext_frame(),
                "{c} leaked plaintext"
            );
            let max = Metrics::component_max(&report.metrics);
            assert_eq!(max.operation, c.operation().id(), "{c} mislabeled");
        }
    }

    #[test]
    fn predictions_match_measured_and_dominate_lower_bounds() {
        // The Table-I-style check for the new operations: wherever a
        // closed form exists, it must equal the measured component maxima
        // and weakly dominate the per-operation lower bounds.
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        for c in Collective::new_operations_all() {
            let Some(pred) = c.predict(p, nodes, m) else {
                continue;
            };
            let report = run(&world(p, nodes), move |ctx| {
                let out = c.run(ctx, m);
                c.verify(ctx.rank(), &out, SEED);
            });
            let max = Metrics::component_max(&report.metrics);
            assert_eq!(max.comm_rounds, pred.rc, "{c} rc");
            assert_eq!(max.payload_sent.max(max.payload_recv), pred.sc, "{c} sc");
            assert_eq!(max.enc_rounds, pred.re, "{c} re");
            assert_eq!(max.enc_bytes, pred.se, "{c} se");
            assert_eq!(max.dec_rounds, pred.rd, "{c} rd");
            assert_eq!(max.dec_bytes, pred.sd, "{c} sd");

            let lb = lower_bounds_op(c.operation(), p, nodes, m).unwrap();
            assert!(pred.rc >= lb.rc, "{c} rc < bound");
            assert!(pred.sc >= lb.sc, "{c} sc < bound");
            assert!(pred.re >= lb.re, "{c} re < bound");
            assert!(pred.se >= lb.se, "{c} se < bound");
            assert!(pred.rd >= lb.rd, "{c} rd < bound");
            assert!(pred.sd >= lb.sd, "{c} sd < bound");
        }
    }

    #[test]
    fn varying_lens_is_deterministic_and_positive() {
        let lens = varying_lens(8, 64);
        assert_eq!(lens, vec![16, 32, 48, 64, 16, 32, 48, 64]);
        assert!(varying_lens(5, 1).iter().all(|&l| l >= 1));
    }

    #[test]
    fn allgather_predict_delegates() {
        let via_collective = Collective::Allgather(Algorithm::ORing).predict(16, 4, 64);
        let direct = crate::bounds::predict(Algorithm::ORing, 16, 4, 64);
        assert_eq!(via_collective, direct);
        assert!(via_collective.is_some());
    }
}
