//! Unencrypted all-gather baselines (paper Section III).
//!
//! These are the classic algorithms found in MPICH/MVAPICH: Ring, the
//! rank-ordered Ring of Kandalla et al., Recursive Doubling (general p),
//! Bruck, and the Hierarchical (leader-based) algorithm, plus the modeled
//! MVAPICH default (RD/Bruck for small messages, Ring for large). The
//! unencrypted counterparts of the paper's C-Ring / C-RD / HS algorithms
//! live with their encrypted versions in [`crate::encrypted`].

use crate::collective::{
    bcast_items_from_root, bruck_allgather_items, gather_items_to_root, rd_allgather_items,
    ring_allgather_items,
};
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Item, Parcel, ProcCtx};

/// Ring all-gather in natural rank order (`P0 → P1 → … → Pp−1 → P0`).
pub fn ring(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let items = ring_allgather_items(
        ctx,
        &members,
        vec![Item::Plain(ctx.my_block(m))],
        tags::PHASE_MAIN,
    );
    let mut out = GatherOutput::new(ctx.p(), m);
    out.place_items(items);
    out
}

/// Rank-ordered Ring: the logical ring visits each node's processes
/// consecutively, making performance oblivious to the process mapping
/// (Kandalla et al. \[13\]).
pub fn ring_ranked(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members = ctx.topology().ring_order();
    let items = ring_allgather_items(
        ctx,
        &members,
        vec![Item::Plain(ctx.my_block(m))],
        tags::PHASE_MAIN,
    );
    let mut out = GatherOutput::new(ctx.p(), m);
    out.place_items(items);
    out
}

/// Recursive Doubling, general `p` (fold/unfold for non-powers-of-two).
pub fn rd(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let items = rd_allgather_items(
        ctx,
        &members,
        vec![Item::Plain(ctx.my_block(m))],
        tags::PHASE_MAIN,
    );
    let mut out = GatherOutput::new(ctx.p(), m);
    out.place_items(items);
    out
}

/// Bruck all-gather: `⌈lg p⌉` rounds for any `p`.
pub fn bruck(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let items = bruck_allgather_items(
        ctx,
        &members,
        Item::Plain(ctx.my_block(m)),
        tags::PHASE_MAIN,
    );
    let mut out = GatherOutput::new(ctx.p(), m);
    out.place_items(items);
    out
}

/// The Hierarchical algorithm (Träff \[28\]): intra-node gather to a leader,
/// inter-node all-gather among leaders (RD), intra-node broadcast.
pub fn hierarchical(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let topo = ctx.topology().clone();
    let local = topo.ranks_on_node(topo.node_of(ctx.rank()));
    let leaders: Vec<Rank> = (0..topo.nodes()).map(|n| topo.leader_of(n)).collect();

    // Step 1: gather node blocks to the leader.
    let gathered = gather_items_to_root(
        ctx,
        &local,
        vec![Item::Plain(ctx.my_block(m))],
        tags::PHASE_GATHER,
    );

    // Step 2: leaders all-gather everything.
    let leader_items =
        gathered.map(|items| rd_allgather_items(ctx, &leaders, items, tags::PHASE_MAIN));

    // Step 3: broadcast the full result within each node.
    let all = bcast_items_from_root(ctx, &local, leader_items, tags::PHASE_BCAST);
    let mut out = GatherOutput::new(ctx.p(), m);
    out.place_items(all);
    out
}

/// Neighbor Exchange all-gather (Chen & Yuan): `p/2` rounds for even `p`,
/// alternating exchanges with the left/right ring neighbours, moving two
/// blocks per round after the first. Falls back to Ring for odd `p`
/// (the algorithm is only defined for even process counts).
pub fn neighbor_exchange(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let p = ctx.p();
    if !p.is_multiple_of(2) {
        return ring(ctx, m);
    }
    let mut out = GatherOutput::new(p, m);
    let me = ctx.rank();
    let my_chunk = ctx.my_block(m);
    out.place(my_chunk.clone());

    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let even = me % 2 == 0;

    // Round 1: pair exchange (even with right, odd with left).
    let partner = if even { right } else { left };
    let first = ctx
        .sendrecv(
            partner,
            partner,
            tags::PHASE_MAIN,
            Parcel::one(Item::Plain(my_chunk.clone())),
        )
        .items
        .remove(0)
        .into_plain();
    out.place(first.clone());

    // Rounds 2..p/2: alternate sides, forwarding the pair acquired last.
    let mut last_pair: Vec<Item> = vec![Item::Plain(my_chunk), Item::Plain(first)];
    for round in 1..p / 2 {
        // Even ranks alternate left, right, left, …; odd ranks mirror.
        let partner = if even == (round % 2 == 1) {
            left
        } else {
            right
        };
        let tag = tags::PHASE_MAIN + round as u64;
        let received = ctx
            .sendrecv(
                partner,
                partner,
                tag,
                Parcel {
                    items: last_pair.clone(),
                },
            )
            .items;
        for item in &received {
            out.place(item.clone().into_plain());
        }
        last_pair = received;
    }
    out
}

/// The modeled MVAPICH default: RD for small messages (Bruck when `p` is not
/// a power of two), Ring for large; the switch point comes from the cluster
/// profile (the paper observes RD below ~8 KB, Ring above, on both systems).
pub fn mvapich(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    if m < ctx.mvapich_switch_bytes() {
        if ctx.p().is_power_of_two() {
            rd(ctx, m)
        } else {
            bruck(ctx, m)
        }
    } else {
        ring(ctx, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn spec(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 42 },
        )
    }

    fn check(algo: impl Fn(&mut ProcCtx, usize) -> GatherOutput + Sync, p: usize, nodes: usize) {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let report = run(&spec(p, nodes, mapping), |ctx| {
                let out = algo(ctx, 32);
                out.verify(42);
                out.is_complete()
            });
            assert!(report.outputs.iter().all(|&ok| ok));
        }
    }

    #[test]
    fn ring_correct() {
        check(ring, 8, 2);
        check(ring, 6, 3);
    }

    #[test]
    fn ring_ranked_correct() {
        check(ring_ranked, 8, 2);
        check(ring_ranked, 12, 3);
    }

    #[test]
    fn rd_correct_pow2_and_general() {
        check(rd, 8, 2);
        check(rd, 6, 2);
        check(rd, 12, 4);
    }

    #[test]
    fn bruck_correct() {
        check(bruck, 8, 2);
        check(bruck, 10, 5);
    }

    #[test]
    fn hierarchical_correct() {
        check(hierarchical, 8, 2);
        check(hierarchical, 12, 3);
    }

    #[test]
    fn neighbor_exchange_correct() {
        check(neighbor_exchange, 8, 2);
        check(neighbor_exchange, 6, 3);
        check(neighbor_exchange, 12, 4);
        // Odd p falls back to Ring.
        check(neighbor_exchange, 9, 3);
    }

    #[test]
    fn neighbor_exchange_round_count_is_half_p() {
        let report = run(&spec(8, 2, Mapping::Block), |ctx| {
            neighbor_exchange(ctx, 16).verify(42);
        });
        for m in &report.metrics {
            assert_eq!(m.comm_rounds, 4); // p/2
                                          // sc = m + 2m(p/2 - 1) = (p-1)m.
            assert_eq!(m.bytes_sent, 7 * 16);
        }
    }

    #[test]
    fn mvapich_switches_by_size() {
        // Functional check both below and above the default 8 KB switch.
        for (p, nodes) in [(8, 2), (6, 3)] {
            for m in [32usize, 16 * 1024] {
                let report = run(&spec(p, nodes, Mapping::Block), move |ctx| {
                    let out = mvapich(ctx, m);
                    out.verify(42);
                    true
                });
                assert!(report.outputs.iter().all(|&ok| ok));
            }
        }
    }

    #[test]
    fn ring_round_count_is_p_minus_1() {
        let report = run(&spec(6, 2, Mapping::Block), |ctx| {
            ring(ctx, 16).is_complete()
        });
        for m in &report.metrics {
            assert_eq!(m.comm_rounds, 5);
        }
    }

    #[test]
    fn rd_bytes_match_theory_pow2() {
        // sc = (p-1)·m for recursive doubling.
        let report = run(&spec(8, 2, Mapping::Block), |ctx| rd(ctx, 64).is_complete());
        for m in &report.metrics {
            assert_eq!(m.bytes_sent, 7 * 64);
            assert_eq!(m.bytes_recv, 7 * 64);
            assert_eq!(m.comm_rounds, 3);
        }
    }
}
