//! The algorithm registry: every all-gather variant the paper evaluates,
//! dispatchable by name.

use crate::output::GatherOutput;
use crate::{encrypted, unencrypted};
use eag_runtime::ProcCtx;

/// Every all-gather algorithm in this library.
///
/// The unencrypted entries are the Section III baselines plus the
/// unencrypted counterparts of the paper's new algorithms (used in
/// Figures 5 and 6); the encrypted entries are the Section IV algorithms
/// of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    // --- unencrypted ---
    /// Classic ring in natural rank order.
    Ring,
    /// Rank-ordered ring (mapping-oblivious).
    RingRanked,
    /// Recursive doubling (general p).
    Rd,
    /// Bruck (⌈lg p⌉ rounds for any p).
    Bruck,
    /// Leader-based hierarchical (gather + RD + broadcast).
    Hierarchical,
    /// Neighbor Exchange (even p; falls back to Ring otherwise).
    NeighborExchange,
    /// Modeled MVAPICH default: RD/Bruck small, Ring large.
    Mvapich,
    /// Unencrypted counterpart of C-Ring.
    CRingPlain,
    /// Unencrypted counterpart of C-RD.
    CRdPlain,
    /// Unencrypted counterpart of HS1/HS2 (identical when unencrypted).
    HsPlain,
    // --- encrypted ---
    /// Encrypt → ordinary all-gather → decrypt everything (the baseline).
    Naive,
    /// Opportunistic Ring.
    ORing,
    /// Opportunistic RD (cached ciphertext, forward-as-is).
    ORd,
    /// Opportunistic RD, merge-and-re-encrypt variant.
    ORd2,
    /// Concurrent ring sub-gathers + local ring.
    CRing,
    /// Concurrent RD sub-gathers + local RD.
    CRd,
    /// Hierarchical shared-memory, leader encryption.
    Hs1,
    /// Hierarchical shared-memory, per-process encryption.
    Hs2,
    /// Opportunistic Bruck (extension beyond the paper: ⌈lg p⌉ rounds for
    /// any p with the opportunistic encryption rule).
    OBruck,
}

impl Algorithm {
    /// All algorithms.
    pub fn all() -> &'static [Algorithm] {
        use Algorithm::*;
        &[
            Ring,
            RingRanked,
            Rd,
            Bruck,
            NeighborExchange,
            Hierarchical,
            Mvapich,
            CRingPlain,
            CRdPlain,
            HsPlain,
            Naive,
            ORing,
            ORd,
            ORd2,
            CRing,
            CRd,
            Hs1,
            Hs2,
            OBruck,
        ]
    }

    /// The eight encrypted algorithms of Table II.
    pub fn encrypted_all() -> &'static [Algorithm] {
        use Algorithm::*;
        &[Naive, ORing, ORd, ORd2, CRing, CRd, Hs1, Hs2, OBruck]
    }

    /// The unencrypted baselines and counterparts.
    pub fn unencrypted_all() -> &'static [Algorithm] {
        use Algorithm::*;
        &[
            Ring,
            RingRanked,
            Rd,
            Bruck,
            NeighborExchange,
            Hierarchical,
            Mvapich,
            CRingPlain,
            CRdPlain,
            HsPlain,
        ]
    }

    /// True for algorithms that encrypt inter-node traffic.
    pub fn is_encrypted(&self) -> bool {
        use Algorithm::*;
        matches!(
            self,
            Naive | ORing | ORd | ORd2 | CRing | CRd | Hs1 | Hs2 | OBruck
        )
    }

    /// The paper's name for this algorithm.
    pub fn name(&self) -> &'static str {
        use Algorithm::*;
        match self {
            Ring => "Ring",
            RingRanked => "Ring(ranked)",
            Rd => "RD",
            Bruck => "Bruck",
            NeighborExchange => "NbrExchange",
            Hierarchical => "Hierarchical",
            Mvapich => "MVAPICH",
            CRingPlain => "C-Ring(plain)",
            CRdPlain => "C-RD(plain)",
            HsPlain => "HS(plain)",
            Naive => "Naive",
            ORing => "O-Ring",
            ORd => "O-RD",
            ORd2 => "O-RD2",
            CRing => "C-Ring",
            CRd => "C-RD",
            Hs1 => "HS1",
            Hs2 => "HS2",
            OBruck => "O-Bruck",
        }
    }

    /// Looks an algorithm up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Algorithm> {
        let lower = name.to_ascii_lowercase();
        Algorithm::all()
            .iter()
            .copied()
            .find(|a| a.name().to_ascii_lowercase() == lower)
    }

    /// True when this algorithm requires `p` to be a multiple of the node
    /// count with at least one process per node (all of them do via the
    /// topology), and any additional structural constraint holds. All
    /// algorithms here support any p, N ≥ 1 with ℓ = p/N integral.
    pub fn supports(&self, p: usize, nodes: usize) -> bool {
        p >= 1 && nodes >= 1 && p.is_multiple_of(nodes)
    }

    /// The algorithm a degraded re-run uses over the survivor group: the
    /// algorithm itself when it runs over arbitrary rank subsets, otherwise
    /// O-Ring. The shared-memory (HS) and Concurrent families assume whole
    /// nodes / complete ℓ-groups — structure a crash has just destroyed —
    /// so they fail over to the mapping-oblivious opportunistic ring.
    pub fn recovery_algorithm(&self) -> Algorithm {
        if self.supports_groups() {
            *self
        } else {
            Algorithm::ORing
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `algo` as an all-gather of `m`-byte blocks and returns the
/// assembled, verified-complete output.
pub fn allgather(ctx: &mut ProcCtx, algo: Algorithm, m: usize) -> GatherOutput {
    ctx.begin_collective();
    // Structured failures raised inside the collective (timeouts, dead
    // peers, authentication failures) carry the algorithm's name as their
    // phase.
    ctx.set_phase(algo.name());
    use Algorithm::*;
    let out = match algo {
        Ring => unencrypted::ring(ctx, m),
        RingRanked => unencrypted::ring_ranked(ctx, m),
        Rd => unencrypted::rd(ctx, m),
        Bruck => unencrypted::bruck(ctx, m),
        NeighborExchange => unencrypted::neighbor_exchange(ctx, m),
        Hierarchical => unencrypted::hierarchical(ctx, m),
        Mvapich => unencrypted::mvapich(ctx, m),
        CRingPlain => encrypted::c_ring_plain(ctx, m),
        CRdPlain => encrypted::c_rd_plain(ctx, m),
        HsPlain => encrypted::hs_plain(ctx, m),
        Naive => encrypted::naive(ctx, m),
        ORing => encrypted::o_ring(ctx, m),
        ORd => encrypted::o_rd(ctx, m),
        ORd2 => encrypted::o_rd2(ctx, m),
        CRing => encrypted::c_ring(ctx, m),
        CRd => encrypted::c_rd(ctx, m),
        Hs1 => encrypted::hs1(ctx, m),
        Hs2 => encrypted::hs2(ctx, m),
        OBruck => encrypted::o_bruck(ctx, m),
    };
    assert!(out.is_complete(), "{algo} left the output incomplete");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_partitions() {
        assert_eq!(Algorithm::all().len(), 19);
        assert_eq!(Algorithm::encrypted_all().len(), 9);
        assert_eq!(Algorithm::unencrypted_all().len(), 10);
        for a in Algorithm::encrypted_all() {
            assert!(a.is_encrypted());
        }
        for a in Algorithm::unencrypted_all() {
            assert!(!a.is_encrypted());
        }
    }

    #[test]
    fn names_roundtrip() {
        for &a in Algorithm::all() {
            assert_eq!(Algorithm::by_name(a.name()), Some(a));
        }
        assert_eq!(Algorithm::by_name("hs2"), Some(Algorithm::Hs2));
        assert_eq!(Algorithm::by_name("nope"), None);
    }

    #[test]
    fn supports_divisible_only() {
        assert!(Algorithm::Hs1.supports(128, 8));
        assert!(Algorithm::CRing.supports(91, 7));
        assert!(!Algorithm::CRing.supports(10, 4));
    }

    #[test]
    fn recovery_algorithm_keeps_group_capable_algorithms() {
        use Algorithm::*;
        for &a in Algorithm::all() {
            let r = a.recovery_algorithm();
            assert!(
                r.supports_groups(),
                "{a}: recovery algorithm {r} cannot run over a shrunk group"
            );
            if a.supports_groups() {
                assert_eq!(r, a, "group-capable algorithms recover as themselves");
            } else {
                assert_eq!(r, ORing);
            }
            // An encrypted algorithm must never recover unencrypted.
            if a.is_encrypted() {
                assert!(r.is_encrypted(), "{a} would downgrade to plaintext");
            }
        }
    }
}
