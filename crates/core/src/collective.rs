//! Generic, crypto-oblivious item movers, plus the crash-recovery driver.
//!
//! These primitives move opaque [`Item`]s (plaintext or sealed) among an
//! ordered member list with the classic all-gather communication patterns:
//! ring, recursive doubling (general member counts via fold/unfold), and
//! Bruck. They do no encryption themselves; the encrypted algorithms either
//! pre-seal items (Naive, the Concurrent sub-gathers, HS) or use the
//! crypto-aware movers in [`crate::encrypted`].
//!
//! [`recover_collective`] is the ULFM-style crash-tolerant engine: an
//! epoch-versioned shrink-and-rerun loop that attempts the collective and,
//! for as long as crashes keep landing — including inside its own
//! agreement rounds and degraded re-runs — re-detects, re-agrees, and
//! re-runs over ever-smaller survivor groups until an agreement instance
//! confirms a completed output. [`recover_allgather`] is the all-gather
//! entry point built on it (see the function docs for the protocol).

use crate::algorithm::{allgather, Algorithm};
use crate::group::{allgather_group, Group};
use crate::output::{DegradedOutput, GatherOutput};
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Chunk, CollectiveError, Data, FailureCause, Item, Parcel, ProcCtx};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};

/// Largest power of two `<= q`.
pub fn floor_pow2(q: usize) -> usize {
    assert!(q >= 1);
    1usize << (usize::BITS - 1 - q.leading_zeros())
}

/// `ceil(log2(q))` for `q >= 1`.
pub fn ceil_log2(q: usize) -> u32 {
    assert!(q >= 1);
    q.next_power_of_two().trailing_zeros()
}

/// Index of `rank` within `members`; panics if absent.
fn my_index(ctx: &ProcCtx, members: &[Rank]) -> usize {
    members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank is not in the member list")
}

/// Ring all-gather: member `k` sends to `k+1` and receives from `k-1`,
/// `q-1` times, forwarding what it received the previous step. Every member
/// contributes `my_items`; returns all members' items (own included).
pub fn ring_allgather_items(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_items: Vec<Item>,
    tag_base: u64,
) -> Vec<Item> {
    let q = members.len();
    let k = my_index(ctx, members);
    let succ = members[(k + 1) % q];
    let pred = members[(k + q - 1) % q];
    let mut collected = my_items.clone();
    let mut cur = my_items;
    for step in 0..q.saturating_sub(1) {
        // Round boundary: a natural scheduling point on a contended world.
        ctx.yield_now();
        let tag = tag_base + step as u64;
        ctx.send(succ, tag, Parcel { items: cur });
        cur = ctx.recv(pred, tag).items;
        collected.extend(cur.iter().cloned());
    }
    collected
}

/// Recursive-doubling all-gather over an arbitrary member count.
///
/// For `q` a power of two this is the textbook algorithm (`lg q` exchange
/// rounds, doubling data each round). Otherwise the surplus `r = q - 2^k`
/// members fold their data into a power-of-two active set first and receive
/// the full result afterwards, for at most `lg q + 2` rounds (the paper's
/// "extra steps ... still bounded by 2·lg(p)").
pub fn rd_allgather_items(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_items: Vec<Item>,
    tag_base: u64,
) -> Vec<Item> {
    let q = members.len();
    if q == 1 {
        return my_items;
    }
    let k = my_index(ctx, members);
    let pow = floor_pow2(q);
    let r = q - pow;

    let mut holdings = my_items;

    // Fold: odd members of the first 2r send everything to their left
    // neighbour and go dormant until the unfold.
    let fold_tag = tag_base;
    if k < 2 * r {
        if k % 2 == 1 {
            ctx.send(members[k - 1], fold_tag, Parcel { items: holdings });
            // Wait for the complete result.
            let unfold_tag = tag_base + 1 + 64;
            return ctx.recv(members[k - 1], unfold_tag).items;
        } else {
            let received = ctx.recv(members[k + 1], fold_tag).items;
            holdings.extend(received);
        }
    }

    // Active set: even members of the first 2r, then everyone from 2r on.
    let active_index = if k < 2 * r { k / 2 } else { k - r };
    let active_member = |idx: usize| -> Rank {
        if idx < r {
            members[2 * idx]
        } else {
            members[idx + r]
        }
    };

    let rounds = pow.trailing_zeros();
    for b in 0..rounds {
        ctx.yield_now();
        let peer = active_member(active_index ^ (1usize << b));
        let tag = tag_base + 1 + b as u64;
        let received = ctx
            .sendrecv(
                peer,
                peer,
                tag,
                Parcel {
                    items: holdings.clone(),
                },
            )
            .items;
        holdings.extend(received);
    }

    // Unfold: give the folded members the complete result.
    if k < 2 * r && k.is_multiple_of(2) {
        let unfold_tag = tag_base + 1 + 64;
        ctx.send(
            members[k + 1],
            unfold_tag,
            Parcel {
                items: holdings.clone(),
            },
        );
    }
    holdings
}

/// Bruck all-gather (`⌈lg q⌉` rounds for any `q`). Requires exactly one item
/// per member; item `j` of the returned vector is the item of member
/// `(k + j) mod q` (callers place by origin, so order does not matter).
pub fn bruck_allgather_items(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_item: Item,
    tag_base: u64,
) -> Vec<Item> {
    let q = members.len();
    let k = my_index(ctx, members);
    let mut slots: Vec<Item> = vec![my_item];
    let mut round = 0u64;
    let mut step = 1usize;
    while step < q {
        ctx.yield_now();
        let cnt = step.min(q - step);
        let dst = members[(k + q - step) % q];
        let src = members[(k + step) % q];
        let tag = tag_base + round;
        ctx.send(
            dst,
            tag,
            Parcel {
                items: slots[..cnt].to_vec(),
            },
        );
        let received = ctx.recv(src, tag).items;
        debug_assert_eq!(received.len(), cnt);
        slots.extend(received);
        step *= 2;
        round += 1;
    }
    debug_assert_eq!(slots.len(), q);
    slots
}

/// Point-to-point gather to `members[0]`: every other member sends its items
/// to the root; the root returns everyone's items, others return `None`.
pub fn gather_items_to_root(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_items: Vec<Item>,
    tag_base: u64,
) -> Option<Vec<Item>> {
    let root = members[0];
    if ctx.rank() == root {
        let mut all = my_items;
        for (j, &m) in members.iter().enumerate().skip(1) {
            let received = ctx.recv(m, tag_base + j as u64).items;
            all.extend(received);
        }
        Some(all)
    } else {
        let j = my_index(ctx, members);
        ctx.send(root, tag_base + j as u64, Parcel { items: my_items });
        None
    }
}

/// Binomial-tree broadcast from `members[0]`: the root's `items` reach every
/// member in at most `⌈lg q⌉` rounds. Non-roots pass `None`.
pub fn bcast_items_from_root(
    ctx: &mut ProcCtx,
    members: &[Rank],
    items: Option<Vec<Item>>,
    tag_base: u64,
) -> Vec<Item> {
    let q = members.len();
    let k = my_index(ctx, members);
    let mut holdings = if k == 0 {
        items.expect("root must supply the broadcast items")
    } else {
        Vec::new()
    };

    // MPICH-style binomial tree, root = index 0.
    let mut mask = 1usize;
    while mask < q {
        if k & mask != 0 {
            let src = members[k - mask];
            holdings = ctx.recv(src, tag_base + mask as u64).items;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if k + mask < q && k & (mask - 1) == 0 && k & mask == 0 {
            let dst = members[k + mask];
            ctx.send(
                dst,
                tag_base + mask as u64,
                Parcel {
                    items: holdings.clone(),
                },
            );
        }
        mask >>= 1;
    }
    holdings
}

// ----- crash recovery ---------------------------------------------------

/// Flooded-consensus rounds per agreement instance for fault bound `f`:
/// `f + 1` guarantees at least one crash-free round (the classic floodset
/// argument — uniformity can only break if a *new* rank dies in every
/// round), floored at 2 to keep the legacy single-crash schedule.
fn agreement_rounds(f: usize) -> u64 {
    (f as u64 + 1).max(2)
}

/// Backstop on membership epochs. Every epoch that fails to decide
/// strictly grows the agreed failed set (a failed re-run always surfaces a
/// crash outside it), so convergence within `p` epochs is guaranteed;
/// exceeding this bound means the engine itself is broken, and panicking
/// beats spinning.
fn max_epochs(p: usize) -> u64 {
    p as u64 + 4
}

/// One epoch-stamped agreement instance: `rounds` rounds of flooded
/// failed-set consensus deciding on **entry values only**.
///
/// Every rank not known failed *at epoch entry* exchanges its current
/// entry-derived failed set (as a sealed `p`-byte bitmap) with every other
/// such rank each round and unions what it hears. Crashes detected *during*
/// the instance (a peer that cannot answer) are deliberately kept out of
/// the flooded set: they go into the caller's `failed` for the *next*
/// epoch's entry. This is what makes the decision uniform — entry values
/// are fixed, so with `rounds = f + 1` one round is crash-free and every
/// survivor leaves with the identical decided set, even when ranks die
/// mid-instance.
///
/// Returns the decided set (ascending); extends `failed` with both the
/// decided set and any mid-instance detections.
fn agreement_instance(
    ctx: &mut ProcCtx,
    failed: &mut BTreeSet<Rank>,
    epoch: u64,
    rounds: u64,
) -> Vec<Rank> {
    let p = ctx.p();
    let me = ctx.rank();
    // Entry knowledge: what this rank brings into the epoch. Grows only by
    // unioning peers' (equally entry-derived) bitmaps.
    let mut known: BTreeSet<Rank> = failed.clone();
    // Mid-instance detections: next epoch's problem, never flooded.
    let mut fresh: BTreeSet<Rank> = BTreeSet::new();
    let peers: Vec<Rank> = (0..p).filter(|r| *r != me && !known.contains(r)).collect();
    debug_assert!(
        epoch * 64 + rounds < 1 << 20,
        "agreement tags overflow the phase slot"
    );
    for round in 0..rounds {
        ctx.begin_collective();
        ctx.set_phase("recovery-agreement");
        // Epoch-stamped: a restarted agreement in a later epoch can never
        // alias frames of an earlier, crash-aborted instance.
        let tag = tags::PHASE_AGREE + epoch * 64 + round;
        let mut bitmap = vec![0u8; p];
        for &f in known.iter() {
            bitmap[f] = 1;
        }
        let chunk = Chunk::single(me, Data::Real(bitmap.into()));
        for &peer in &peers {
            // Seal per peer: every transmission gets its own fresh nonce,
            // so the recovery protocol upholds the nonce-uniqueness
            // invariant.
            let sealed = ctx.encrypt(chunk.clone());
            ctx.send(peer, tag, Parcel::one(Item::Sealed(sealed)));
        }
        for &peer in &peers {
            match ctx.try_recv(peer, tag) {
                Ok(parcel) => {
                    for item in parcel.items {
                        let c = ctx.decrypt(item.into_sealed());
                        if let Data::Real(bytes) = &c.data {
                            let mut r = 0;
                            for seg in bytes.segments() {
                                for &bit in seg {
                                    if bit != 0 {
                                        known.insert(r);
                                    }
                                    r += 1;
                                }
                            }
                        }
                    }
                }
                Err(FailureCause::Crash { rank }) => {
                    fresh.insert(rank);
                }
                Err(cause) => panic_any(CollectiveError {
                    rank: me,
                    phase: "recovery-agreement",
                    cause,
                }),
            }
        }
    }
    let decided: Vec<Rank> = known.iter().copied().collect();
    failed.extend(known);
    failed.extend(fresh);
    decided
}

/// Runs one recoverable attempt of a collective: on a `Crash` failure the
/// attempt is abandoned (blaming the detected crash, which cascades to
/// peers) and the crashed rank joins `failed`; any other failure re-raises
/// for the poison protocol. Returns the output when the attempt completed.
fn run_attempt<F>(
    ctx: &mut ProcCtx,
    failed: &mut BTreeSet<Rank>,
    attempt: F,
) -> Option<GatherOutput>
where
    F: FnOnce(&mut ProcCtx) -> GatherOutput,
{
    ctx.begin_attempt();
    match catch_unwind(AssertUnwindSafe(|| attempt(ctx))) {
        Ok(out) => {
            ctx.complete_attempt();
            Some(out)
        }
        Err(payload) => match payload.downcast::<CollectiveError>() {
            Ok(e) => match e.cause {
                FailureCause::Crash { rank } => {
                    failed.insert(rank);
                    ctx.abort_attempt(rank);
                    None
                }
                // Unrecoverable structured failure: re-raise for the
                // poison protocol.
                _ => resume_unwind(e),
            },
            // Not a structured failure (includes the runner's private
            // crash payload when *this* rank is the one dying): re-raise.
            Err(other) => resume_unwind(other),
        },
    }
}

/// Generic epoch-versioned shrink-and-rerun engine tolerating up to `f`
/// concurrent or cascading crashes (`f` = the fault plan's schedule
/// length), including crashes during detection, agreement, and re-run.
///
/// `attempt` runs the optimistic whole-world collective; `rerun` runs it
/// degraded over a survivor member list. Every rank must call this in
/// lockstep, like the collective itself.
///
/// Protocol — a loop over *membership epochs*:
///
/// 1. **Attempt (epoch 0).** Run `attempt` inside an attempt scope; a
///    receive blocked on a dead (or cascade-aborted) peer resolves through
///    the failure detector with a `Crash` cause and abandons the attempt,
///    blaming the crash so peers cascade promptly.
/// 2. **Agreement (entering epoch `e ≥ 1`).** One epoch-stamped
///    agreement instance of `max(2, f + 1)` flooded rounds decides a
///    failed set from *epoch-entry* knowledge only. Crashes landing inside
///    the instance are excluded from the decision (kept for the next
///    epoch), which keeps the decision uniform across survivors; the
///    instance is effectively restartable — a crash mid-agreement simply
///    enlarges the next epoch's entry set.
/// 3. **Decide or re-run.** If the decided set is exactly the set the
///    latest completed output already covers (for a clean attempt: both
///    empty), the loop terminates and returns that output. Otherwise all
///    survivors re-run over [`Group::shrink`]\(decided\) — composed
///    shrinks renumber deterministically, so cascaded recoveries stay
///    aligned — and loop back to agreement to *confirm* the re-run. A
///    completed re-run does not exempt a rank from that confirmation: a
///    peer may have died after serving this rank but before serving
///    others.
///
/// Each re-run is a fresh collective epoch: blocks are re-sealed with
/// fresh nonces, never reusing a (key, nonce) pair. Termination: an epoch
/// either decides, or its decided set strictly grows by the next epoch
/// (a failed re-run always surfaces a crash outside the decided set), and
/// the crash schedule is finite. A crash that fires *after* the deciding
/// agreement (e.g. during another rank's last rounds) is intentionally
/// not in the returned `failed` set — its victim contributed its block
/// before dying, exactly like a rank crashing after a plain collective
/// returns.
///
/// In a world with no fault plan armed (chaos disabled) crashes are
/// impossible, so agreement is skipped entirely and the wrapper costs
/// nothing beyond the attempt bookkeeping.
pub fn recover_collective<A, R>(ctx: &mut ProcCtx, attempt: A, mut rerun: R) -> DegradedOutput
where
    A: FnOnce(&mut ProcCtx) -> GatherOutput,
    R: FnMut(&mut ProcCtx, &[Rank]) -> GatherOutput,
{
    let mut failed: BTreeSet<Rank> = BTreeSet::new();
    ctx.enter_epoch(0);
    let mut output = run_attempt(ctx, &mut failed, attempt);
    if !ctx.chaos_enabled() {
        return DegradedOutput {
            failed: Vec::new(),
            epochs: 0,
            output: output.expect("crash detected in a world with no fault plan"),
        };
    }
    // The failed set the latest completed output was produced over
    // (`None` while no usable output exists). The decision rule compares
    // it against the agreement's decided set, and both are
    // protocol-lockstep, so every survivor terminates in the same epoch.
    let mut covered: Option<Vec<Rank>> = output.as_ref().map(|_| Vec::new());
    let rounds = agreement_rounds(ctx.fault_bound());
    let mut epoch = 0u64;
    loop {
        epoch += 1;
        assert!(
            epoch <= max_epochs(ctx.p()),
            "recovery did not converge within {} membership epochs",
            max_epochs(ctx.p())
        );
        ctx.enter_epoch(epoch);
        let decided = agreement_instance(ctx, &mut failed, epoch, rounds);
        if covered.as_deref() == Some(&decided[..]) {
            return DegradedOutput {
                failed: decided,
                epochs: epoch - 1,
                output: output.take().expect("covered set implies an output"),
            };
        }
        // Survivors re-run over the shrunk group — *all* of them, even
        // those holding a completed (but now stale) output, so every
        // survivor's degraded output is byte-identical. The group keeps
        // global rank identities, so node placement (and the
        // opportunistic encryption rule) stays correct.
        let survivors = Group::world(ctx.p()).shrink(&decided);
        ctx.set_phase("recovery-rerun");
        match run_attempt(ctx, &mut failed, |ctx| rerun(ctx, survivors.members())) {
            Some(out) => {
                ctx.note_recovery(survivors.len());
                output = Some(out);
                covered = Some(decided);
            }
            None => {
                // The re-run itself was crashed out from under us; the
                // stale output (if any) covers neither the old nor the
                // new failed set. Detection already enlarged `failed`.
                output = None;
                covered = None;
            }
        }
    }
}

/// Crash-tolerant all-gather: [`recover_collective`] over `algo`, re-run
/// degraded with [`Algorithm::recovery_algorithm`] — returning a
/// [`DegradedOutput`] that marks the dead ranks' blocks missing.
pub fn recover_allgather(ctx: &mut ProcCtx, algo: Algorithm, m: usize) -> DegradedOutput {
    recover_collective(
        ctx,
        |ctx| allgather(ctx, algo, m),
        |ctx, members| allgather_group(ctx, algo.recovery_algorithm(), members, m),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Crash, FaultPlan, Mapping, Topology};
    use eag_runtime::{run, run_crashable, DataMode, RetryPolicy, WorldSpec};
    use std::time::Duration;

    fn spec(p: usize, nodes: usize) -> WorldSpec {
        WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::free(),
            DataMode::Real { seed: 3 },
        )
    }

    fn origins_of(items: &[Item]) -> Vec<usize> {
        let mut o: Vec<usize> = items.iter().flat_map(|i| i.origins().to_vec()).collect();
        o.sort_unstable();
        o.dedup();
        o
    }

    #[test]
    fn floor_pow2_and_ceil_log2() {
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(2), 2);
        assert_eq!(floor_pow2(7), 4);
        assert_eq!(floor_pow2(8), 8);
        assert_eq!(floor_pow2(91), 64);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(7), 3);
        assert_eq!(ceil_log2(8), 3);
    }

    fn check_mover(
        p: usize,
        mover: impl Fn(&mut eag_runtime::ProcCtx, &[Rank], Vec<Item>) -> Vec<Item> + Sync,
    ) {
        let members: Vec<Rank> = (0..p).collect();
        let report = run(&spec(p, 1), |ctx| {
            let mine = vec![Item::Plain(ctx.my_block(4))];
            let all = mover(ctx, &members, mine);
            origins_of(&all)
        });
        for out in report.outputs {
            assert_eq!(out, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ring_gathers_everything() {
        for p in [1, 2, 3, 5, 8] {
            check_mover(p, |ctx, m, items| ring_allgather_items(ctx, m, items, 100));
        }
    }

    #[test]
    fn rd_gathers_everything_any_q() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16] {
            check_mover(p, |ctx, m, items| rd_allgather_items(ctx, m, items, 100));
        }
    }

    #[test]
    fn bruck_gathers_everything_any_q() {
        for p in [1, 2, 3, 5, 7, 8, 11, 16] {
            check_mover(p, |ctx, m, items| {
                bruck_allgather_items(ctx, m, items.into_iter().next().unwrap(), 100)
            });
        }
    }

    #[test]
    fn rd_round_count_is_lg_p_for_powers_of_two() {
        let members: Vec<Rank> = (0..8).collect();
        let report = run(&spec(8, 1), |ctx| {
            let mine = vec![Item::Plain(ctx.my_block(4))];
            rd_allgather_items(ctx, &members, mine, 100).len()
        });
        for m in &report.metrics {
            assert_eq!(m.comm_rounds, 3);
        }
    }

    #[test]
    fn rd_round_count_bounded_for_general_q() {
        let members: Vec<Rank> = (0..6).collect();
        let report = run(&spec(6, 1), |ctx| {
            let mine = vec![Item::Plain(ctx.my_block(4))];
            origins_of(&rd_allgather_items(ctx, &members, mine, 100))
        });
        for out in &report.outputs {
            assert_eq!(out, &(0..6).collect::<Vec<_>>());
        }
        for m in &report.metrics {
            assert!(m.comm_rounds <= 2 * 3, "rounds {} > 2 lg q", m.comm_rounds);
        }
    }

    #[test]
    fn gather_and_bcast_roundtrip() {
        let members: Vec<Rank> = (0..5).collect();
        let report = run(&spec(5, 1), |ctx| {
            let mine = vec![Item::Plain(ctx.my_block(4))];
            let gathered = gather_items_to_root(ctx, &members, mine, 10);
            if ctx.rank() == 0 {
                assert_eq!(origins_of(gathered.as_ref().unwrap()), vec![0, 1, 2, 3, 4]);
            }
            let all = bcast_items_from_root(ctx, &members, gathered, 200);
            origins_of(&all)
        });
        for out in report.outputs {
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn bcast_works_for_many_sizes() {
        for q in [1usize, 2, 3, 4, 6, 7, 8, 9] {
            let members: Vec<Rank> = (0..q).collect();
            let report = run(&spec(q, 1), |ctx| {
                let items = (ctx.rank() == 0).then(|| vec![Item::Plain(ctx.my_block(4))]);
                let got = bcast_items_from_root(ctx, &members, items, 50);
                origins_of(&got)
            });
            for out in report.outputs {
                assert_eq!(out, vec![0], "q = {q}");
            }
        }
    }

    #[test]
    fn ring_respects_member_order() {
        // Ring over a custom permutation still gathers everything.
        let members: Vec<Rank> = vec![2, 0, 3, 1];
        let report = run(&spec(4, 1), |ctx| {
            let mine = vec![Item::Plain(ctx.my_block(4))];
            origins_of(&ring_allgather_items(ctx, &members, mine, 7))
        });
        for out in report.outputs {
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
    }

    // --- crash recovery ---

    fn crash_schedule_world(p: usize, nodes: usize, crashes: Vec<Crash>) -> WorldSpec {
        let mut s = spec(p, nodes);
        s.faults = FaultPlan {
            crashes,
            ..FaultPlan::default()
        };
        s.retry = RetryPolicy {
            attempt_timeout: Duration::from_millis(20),
            max_attempts: 10,
            backoff: 1.5,
        };
        s
    }

    fn crash_world(p: usize, nodes: usize, crash: Crash) -> WorldSpec {
        crash_schedule_world(p, nodes, vec![crash])
    }

    /// Asserts the degraded contract across a crashed world's survivors:
    /// every survivor agreed on `failed`, verified bit-exact, recovered
    /// at least once, and produced byte-identical output (which covers
    /// the epoch count too — it is folded into the canonical encoding).
    fn check_degraded(report: &eag_runtime::CrashReport<DegradedOutput>, failed: &[Rank]) {
        assert_eq!(report.crashed, failed);
        let mut canon: Option<Vec<u8>> = None;
        for (rank, out) in report.survivor_outputs() {
            assert_eq!(out.failed, failed, "rank {rank} agreed on a different set");
            assert!(out.epochs >= 1, "rank {rank} recovered without an epoch");
            out.verify(3);
            assert!(report.metrics[rank].recoveries >= 1, "rank {rank}");
            assert!(report.metrics[rank].crashes_detected >= 1, "rank {rank}");
            let bytes = out.canonical_bytes();
            match &canon {
                Some(c) => assert_eq!(c, &bytes, "rank {rank} diverged"),
                None => canon = Some(bytes),
            }
        }
        for &f in failed {
            assert!(report.outputs[f].is_none(), "crashed rank {f} has output");
        }
    }

    #[test]
    fn recover_without_chaos_is_a_plain_allgather() {
        // No fault plan: the wrapper adds no agreement traffic and returns
        // the complete output at every rank.
        let report = run(&spec(6, 2), |ctx| {
            recover_allgather(ctx, Algorithm::ORing, 32)
        });
        let mut canon: Option<Vec<u8>> = None;
        for out in &report.outputs {
            assert!(out.is_complete());
            assert!(out.failed.is_empty());
            out.verify(3);
            let bytes = out.canonical_bytes();
            match &canon {
                Some(c) => assert_eq!(c, &bytes),
                None => canon = Some(bytes),
            }
        }
        for m in &report.metrics {
            assert_eq!(m.recoveries, 0);
            assert_eq!(m.crashes_detected, 0);
        }
    }

    #[test]
    fn armed_chaos_without_a_fired_crash_completes_cleanly() {
        // The crash is planned at a send step the rank never reaches, so
        // the agreement rounds run against an all-alive world and must
        // conclude "nobody failed".
        let s = crash_world(4, 2, Crash::before(0, 1_000_000));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORd, 32));
        assert!(report.crashed.is_empty());
        for (_, out) in report.survivor_outputs() {
            assert!(out.is_complete());
            out.verify(3);
        }
        assert_eq!(report.survivor_outputs().count(), 4);
    }

    #[test]
    fn crash_mid_ring_yields_identical_degraded_outputs() {
        // Rank 3 dies before its second ring send; the five survivors must
        // agree on {3}, re-run over the shrunk group, and return
        // byte-identical degraded outputs.
        let s = crash_world(6, 2, Crash::before(3, 1));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORing, 48));
        check_degraded(&report, &[3]);
        assert_eq!(report.wiretap.crashed_ranks(), vec![3]);
    }

    #[test]
    fn crash_after_a_send_still_recovers() {
        // The dying rank's last frame is delivered first (crash-after-send),
        // exercising the drain-then-fail order in the failure detector.
        let s = crash_world(5, 1, Crash::after(2, 0));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::OBruck, 32));
        check_degraded(&report, &[2]);
    }

    #[test]
    fn shared_memory_algorithm_recovers_via_group_fallback() {
        // HS2 cannot run over a shrunk group (it assumes whole nodes), so
        // recovery falls back to O-Ring. The crash also exercises the
        // shared-segment cascade: the dead leader's node is aborted by the
        // runner, and the *other* node's non-leaders are unblocked by their
        // own leader's attempt abandonment.
        let s = crash_world(6, 2, Crash::before(0, 0));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::Hs2, 48));
        check_degraded(&report, &[0]);
    }

    #[test]
    fn every_encrypted_algorithm_survives_an_early_crash() {
        // Rank 0 is the node-0 leader: it performs peer-bound sends in every
        // algorithm (non-leader ranks never send in the HS family, so a
        // crash planned on one would never fire there).
        for &algo in Algorithm::encrypted_all() {
            let s = crash_world(6, 2, Crash::before(0, 0));
            let report = run_crashable(&s, move |ctx| recover_allgather(ctx, algo, 32));
            check_degraded(&report, &[0]);
        }
    }

    #[test]
    fn epoch_zero_crash_on_a_sendless_rank_never_fires() {
        // Rank 1 is an HS2 non-leader: it performs no peer-bound sends
        // during the epoch-0 attempt, so a crash armed at epoch 0 never
        // matches its per-epoch send counter. The agreement rounds run at
        // epoch 1 and conclude "nobody failed"; the run completes cleanly.
        let s = crash_world(6, 2, Crash::before(1, 0));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::Hs2, 32));
        assert!(report.crashed.is_empty());
        for (_, out) in report.survivor_outputs() {
            assert!(out.is_complete());
            out.verify(3);
        }
        assert_eq!(report.survivor_outputs().count(), 6);
    }

    #[test]
    fn crash_inside_an_agreement_round_is_tolerated() {
        // The same sendless HS2 non-leader, but armed for epoch 1: its
        // first peer-bound send ever is agreement round 0, where it dies.
        // Whether the crash lands before or after the last survivor has
        // left the epoch-0 attempt is a scheduling race, so two decisions
        // are sound: "nobody failed" (the victim's block was gathered
        // before it died — keep the complete output) or "{1} failed" (a
        // same-node peer was still blocked on shared memory and its
        // attempt was aborted). The contract is uniformity: every
        // survivor decides the same set and returns byte-identical bytes.
        let s = crash_world(6, 2, Crash::before(1, 0).at_epoch(1));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::Hs2, 32));
        assert_eq!(report.crashed, vec![1]);
        let outs: Vec<_> = report.survivor_outputs().collect();
        assert_eq!(outs.len(), 5);
        let failed = outs[0].1.failed.clone();
        assert!(
            failed.is_empty() || failed == vec![1],
            "decided set {failed:?} names a rank that never crashed"
        );
        let mut canon: Option<Vec<u8>> = None;
        for (rank, out) in outs {
            assert_eq!(out.failed, failed, "rank {rank} agreed on a different set");
            if failed.is_empty() {
                assert!(out.is_complete(), "rank {rank}");
                assert_eq!(out.epochs, 0, "rank {rank}");
            }
            out.verify(3);
            let bytes = out.canonical_bytes();
            match &canon {
                Some(c) => assert_eq!(c, &bytes, "rank {rank} diverged"),
                None => canon = Some(bytes),
            }
        }
    }

    #[test]
    fn two_concurrent_crashes_recover_to_one_agreed_set() {
        // Ranks 2 and 4 both die before their first ring send: two
        // concurrent epoch-0 failures. Survivors must flood both
        // detections into one decided set and re-run over p-2 ranks.
        let s = crash_schedule_world(6, 2, vec![Crash::before(2, 0), Crash::before(4, 0)]);
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORing, 48));
        check_degraded(&report, &[2, 4]);
    }

    #[test]
    fn cascading_crashes_across_epochs_recover() {
        // Ranks 1 and 3 die at epoch 0; rank 5 survives the initial
        // attempt but dies at its first send of the epoch-1 agreement.
        // The engine must iterate — detect, agree, re-run — until a
        // confirming agreement covers all three.
        let s = crash_schedule_world(
            6,
            2,
            vec![
                Crash::before(1, 0),
                Crash::before(3, 0),
                Crash::before(5, 0).at_epoch(1),
            ],
        );
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORing, 32));
        check_degraded(&report, &[1, 3, 5]);
    }

    #[test]
    fn crash_during_the_confirming_agreement_keeps_the_covered_output() {
        // Rank 0 dies at epoch 0 and is recovered over the shrunk group.
        // Rank 2 then dies inside the epoch-2 *confirming* agreement —
        // after the degraded output already covers the decided set {0}.
        // Survivors return that output (rank 2's block included) rather
        // than looping: the late crash is attributed like a post-collective
        // death, and the decided set stays {0}.
        let s = crash_schedule_world(
            6,
            2,
            vec![Crash::before(0, 0), Crash::before(2, 0).at_epoch(2)],
        );
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORing, 32));
        assert_eq!(report.crashed, vec![0, 2]);
        let mut canon: Option<Vec<u8>> = None;
        for (rank, out) in report.survivor_outputs() {
            assert_eq!(out.failed, vec![0], "rank {rank} agreed on a different set");
            assert!(
                out.output.get(2).is_some(),
                "rank {rank} lost the late victim's block"
            );
            out.verify(3);
            let bytes = out.canonical_bytes();
            match &canon {
                Some(c) => assert_eq!(c, &bytes, "rank {rank} diverged"),
                None => canon = Some(bytes),
            }
        }
        assert_eq!(report.survivor_outputs().count(), 4);
    }

    #[test]
    fn hard_and_soft_crashes_mix_in_one_schedule() {
        // A hard crash (no dying gasp: peers must notice via heartbeat
        // staleness) alongside a soft one. Suspicion of the hard-crashed
        // rank may be raised independently by several survivors across
        // epochs; the suspicion path is idempotent, so the decided set
        // still converges.
        let mut s =
            crash_schedule_world(6, 2, vec![Crash::before(2, 0).hard(), Crash::before(4, 0)]);
        // Hard crashes leave no dying gasp: arm the failure detector's
        // suspicion clock so silence past the grace period reads as death.
        s.suspect_after = Some(Duration::from_millis(50));
        let report = run_crashable(&s, |ctx| recover_allgather(ctx, Algorithm::ORing, 32));
        check_degraded(&report, &[2, 4]);
    }
}
