//! Encrypted collective kernels: the all-gather algorithms of paper
//! Section IV, plus the operation-generic extensions (broadcast,
//! gather/scatter, all-to-all) built on the same opportunistic rule.

pub mod alltoall;
pub mod bcast;
pub mod concurrent;
pub mod hs;
pub mod hs_ml;
pub mod naive;
pub mod o_bruck;
pub mod o_rd;
pub mod o_ring;
pub mod rooted;

pub use alltoall::{alltoall_bruck, alltoall_pairwise};
pub use bcast::{bcast_binomial, bcast_pipelined, bcast_segments};
pub use concurrent::{c_rd, c_rd_plain, c_ring, c_ring_plain, concurrent, SubPattern};
pub use hs::{hs, hs1, hs2, hs_plain, hs_v, HsVariant};
pub use hs_ml::{hs_ml, MlPattern};
pub use naive::naive;
pub use o_bruck::{o_bruck, o_bruck_over};
pub use o_rd::{o_rd, o_rd2, o_rd_over, OrdVariant};
pub use o_ring::{o_ring, o_ring_over};
pub use rooted::{
    exchange_lengths, gather_binomial, gather_linear, scatter_binomial, scatter_linear,
};
