//! The Naive encrypted all-gather (Naser et al. \[18\], the paper's baseline).
//!
//! Each process encrypts its own block, the processes run an *ordinary*
//! all-gather on the ciphertexts (the modeled MVAPICH default), and every
//! process decrypts all `p−1` received ciphertexts — including those from
//! its own node, which is exactly the waste the paper's algorithms remove:
//! `rd = p−1`, `sd = (p−1)m ≈ (N−1)ℓm`.

use crate::collective::{bruck_allgather_items, rd_allgather_items, ring_allgather_items};
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Item, ProcCtx};

/// Runs the Naive algorithm.
pub fn naive(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let p = ctx.p();
    let members: Vec<Rank> = (0..p).collect();
    let my_chunk = ctx.my_block(m);

    let mut out = GatherOutput::new(p, m);
    out.place(my_chunk.clone());

    let sealed = Item::Sealed(ctx.encrypt(my_chunk));

    // Ordinary all-gather on ciphertexts, with the MVAPICH-style selection.
    let items = if m < ctx.mvapich_switch_bytes() {
        if p.is_power_of_two() {
            rd_allgather_items(ctx, &members, vec![sealed], tags::PHASE_MAIN)
        } else {
            bruck_allgather_items(ctx, &members, sealed, tags::PHASE_MAIN)
        }
    } else {
        ring_allgather_items(ctx, &members, vec![sealed], tags::PHASE_MAIN)
    };

    // Decrypt every received ciphertext (own block is already in place).
    for item in items {
        let s = item.into_sealed();
        if s.origins.iter().all(|&o| out.has(o)) {
            continue;
        }
        let c = ctx.decrypt(s);
        out.place(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 21 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn naive_correct_small_and_large() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (6, 3), (9, 3)] {
                for m in [16usize, 16 * 1024] {
                    let report = run(&world(p, nodes, mapping), move |ctx| {
                        naive(ctx, m).verify(21);
                    });
                    assert!(!report.wiretap.saw_plaintext_frame());
                }
            }
        }
    }

    #[test]
    fn naive_metrics_match_table_2() {
        // re = 1, se = m, rd = p−1, sd = (p−1)m, rc = lg p (RD, small).
        let (p, m) = (8usize, 64usize);
        let report = run(&world(p, 2, Mapping::Block), |ctx| {
            naive(ctx, m).verify(21);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, 3);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, (p - 1) as u64);
        assert_eq!(max.dec_bytes, ((p - 1) * m) as u64);
        // Wire bytes include the 28-byte GCM framing on every hop.
        assert_eq!(max.bytes_sent, ((p - 1) * (m + 28)) as u64);
    }

    #[test]
    fn naive_decrypts_intra_node_ciphertexts_too() {
        // The defining waste of Naive: even blocks from the same node are
        // decrypted. Total decryptions = p(p−1).
        let report = run(&world(8, 2, Mapping::Block), |ctx| {
            naive(ctx, 16).verify(21);
        });
        let sum = eag_runtime::Metrics::component_sum(&report.metrics);
        assert_eq!(sum.dec_rounds, (8 * 7) as u64);
    }
}
