//! The Opportunistic Recursive Doubling algorithms O-RD and O-RD2, and the
//! encrypted RD sub-gather used by C-RD.
//!
//! Both follow the ordinary RD exchange pattern (general member counts via
//! fold/unfold) and differ in how they represent data on inter-node hops:
//!
//! - **O-RD** seals its *known-plaintext* holdings once (caching the
//!   ciphertext while the plaintext set is unchanged) and forwards received
//!   ciphertexts as-is; all held ciphertexts are decrypted at the end.
//!   With block mapping this gives `re = 1`, `se = ℓm`, `rd = N−1`,
//!   `sd = (p−ℓ)m` (the paper's Table II lists `rd = p−ℓ`; its Section IV-B
//!   text derives `rd = N−1` for the same algorithm — we follow the text,
//!   which matches the merged-ciphertext implementation that yields
//!   `re = 1`).
//! - **O-RD2** merges everything into a single fresh ciphertext each
//!   inter-node round (decrypt received, re-encrypt union), trading
//!   encryption volume for fewer decryption rounds: `re = rd = lg N`,
//!   `se = sd = (p−ℓ)m`.

use crate::collective::floor_pow2;
use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Item, Parcel, ProcCtx, Sealed};

/// Which opportunistic RD variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrdVariant {
    /// Cache one ciphertext of the plaintext holdings; forward foreign
    /// ciphertexts untouched; decrypt everything at the end.
    ForwardSealed,
    /// Merge-and-re-encrypt each inter-node round (the paper's O-RD2).
    MergeRecrypt,
}

/// Crypto-aware holdings of one process during an opportunistic RD.
struct OrdState {
    plain: Vec<Chunk>,
    sealed: Vec<Sealed>,
    cache: Option<Sealed>,
    variant: OrdVariant,
}

impl OrdState {
    fn new(my_chunk: Chunk, variant: OrdVariant) -> Self {
        OrdState {
            plain: vec![my_chunk],
            sealed: Vec::new(),
            cache: None,
            variant,
        }
    }

    /// Decrypts every held ciphertext into the plaintext set (skipping
    /// ciphertexts whose origins are already known in plaintext).
    fn absorb_sealed(&mut self, ctx: &mut ProcCtx) {
        if self.sealed.is_empty() {
            return;
        }
        let known: std::collections::HashSet<Rank> = self
            .plain
            .iter()
            .flat_map(|c| c.origins.iter().copied())
            .collect();
        for s in std::mem::take(&mut self.sealed) {
            if s.origins.iter().all(|o| known.contains(o)) {
                continue;
            }
            let c = ctx.decrypt(s);
            self.plain.push(c);
        }
        self.cache = None;
    }

    /// The items to send to a partner over `link`.
    fn items_for(&mut self, ctx: &mut ProcCtx, link: LinkClass) -> Vec<Item> {
        match link {
            LinkClass::Intra | LinkClass::SelfLoop => {
                // Intra-node sends carry plaintext only; held ciphertexts
                // must be opened first (the opportunistic rule).
                self.absorb_sealed(ctx);
                vec![Item::Plain(Chunk::concat(&self.plain))]
            }
            LinkClass::Inter => match self.variant {
                OrdVariant::MergeRecrypt => {
                    self.absorb_sealed(ctx);
                    let merged = Chunk::concat(&self.plain);
                    vec![Item::Sealed(ctx.encrypt(merged))]
                }
                OrdVariant::ForwardSealed => {
                    if self.cache.is_none() {
                        let merged = Chunk::concat(&self.plain);
                        self.cache = Some(ctx.encrypt(merged));
                    }
                    let mut items = vec![Item::Sealed(self.cache.clone().unwrap())];
                    items.extend(self.sealed.iter().cloned().map(Item::Sealed));
                    items
                }
            },
        }
    }

    /// Absorbs a received parcel.
    fn absorb(&mut self, items: Vec<Item>) {
        for item in items {
            match item {
                Item::Plain(c) => {
                    self.plain.push(c);
                    self.cache = None;
                }
                Item::Sealed(s) => self.sealed.push(s),
            }
        }
    }

    /// Decrypts the remaining ciphertexts and places everything.
    fn finish(mut self, ctx: &mut ProcCtx, out: &mut GatherOutput) {
        self.absorb_sealed(ctx);
        for c in self.plain {
            out.place(c);
        }
    }
}

/// Runs an opportunistic RD all-gather of `my_chunk` over `members`; places
/// every member's plaintext into `out`.
pub fn o_rd_over(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_chunk: Chunk,
    out: &mut GatherOutput,
    variant: OrdVariant,
    tag_base: u64,
) {
    let q = members.len();
    let mut state = OrdState::new(my_chunk, variant);
    if q == 1 {
        state.finish(ctx, out);
        return;
    }
    let k = members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list");
    let pow = floor_pow2(q);
    let r = q - pow;
    let me = ctx.rank();

    // Fold: odd members of the first 2r hand their data to the left even
    // neighbour, then wait for the complete result.
    if k < 2 * r {
        if k % 2 == 1 {
            let partner = members[k - 1];
            let link = ctx.topology().link(me, partner);
            let items = state.items_for(ctx, link);
            ctx.send(partner, tag_base, Parcel { items });
            let received = ctx.recv(partner, tag_base + 1 + 64).items;
            state.absorb(received);
            state.finish(ctx, out);
            return;
        } else {
            let received = ctx.recv(members[k + 1], tag_base).items;
            state.absorb(received);
        }
    }

    let active_index = if k < 2 * r { k / 2 } else { k - r };
    let active_member = |idx: usize| -> Rank {
        if idx < r {
            members[2 * idx]
        } else {
            members[idx + r]
        }
    };

    for b in 0..pow.trailing_zeros() {
        // Round boundary: a natural scheduling point on a contended world.
        ctx.yield_now();
        let peer = active_member(active_index ^ (1usize << b));
        let tag = tag_base + 1 + b as u64;
        let link = ctx.topology().link(me, peer);
        let items = state.items_for(ctx, link);
        ctx.send(peer, tag, Parcel { items });
        let received = ctx.recv(peer, tag).items;
        state.absorb(received);
    }

    // Unfold: hand the folded neighbour the complete result.
    if k < 2 * r && k % 2 == 0 {
        let partner = members[k + 1];
        let link = ctx.topology().link(me, partner);
        let items = state.items_for(ctx, link);
        ctx.send(partner, tag_base + 1 + 64, Parcel { items });
    }
    state.finish(ctx, out);
}

/// O-RD proper: opportunistic RD over all ranks.
pub fn o_rd(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let mut out = GatherOutput::new(ctx.p(), m);
    let my_chunk = ctx.my_block(m);
    o_rd_over(
        ctx,
        &members,
        my_chunk,
        &mut out,
        OrdVariant::ForwardSealed,
        crate::tags::PHASE_MAIN,
    );
    out
}

/// O-RD2: the merge-and-re-encrypt variant.
pub fn o_rd2(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let mut out = GatherOutput::new(ctx.p(), m);
    let my_chunk = ctx.my_block(m);
    o_rd_over(
        ctx,
        &members,
        my_chunk,
        &mut out,
        OrdVariant::MergeRecrypt,
        crate::tags::PHASE_MAIN,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 6 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn o_rd_correct_many_shapes() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (6, 3), (9, 3), (12, 4)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    o_rd(ctx, 16).verify(6);
                });
                assert!(
                    !report.wiretap.saw_plaintext_frame(),
                    "plaintext leaked: p={p} nodes={nodes} {mapping}"
                );
            }
        }
    }

    #[test]
    fn o_rd2_correct_many_shapes() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (6, 3), (10, 5), (12, 4)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    o_rd2(ctx, 16).verify(6);
                });
                assert!(!report.wiretap.saw_plaintext_frame());
            }
        }
    }

    #[test]
    fn o_rd_metrics_block_pow2() {
        // p = 16, N = 4, ℓ = 4, block: re = 1, se = ℓm, rd = N−1,
        // sd = (N−1)·ℓm = (p−ℓ)m, rc = lg p.
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            o_rd(ctx, m).verify(6);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, 4);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, (4 * m) as u64);
        assert_eq!(max.dec_rounds, 3);
        assert_eq!(max.dec_bytes, (12 * m) as u64);
    }

    #[test]
    fn o_rd2_metrics_block_pow2() {
        // p = 16, N = 4, ℓ = 4, block: re = rd = lg N, se = sd = (p−ℓ)m.
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            o_rd2(ctx, m).verify(6);
        });
        let max = report.max_metrics();
        assert_eq!(max.enc_rounds, 2);
        assert_eq!(max.enc_bytes, (12 * m) as u64);
        assert_eq!(max.dec_rounds, 2);
        assert_eq!(max.dec_bytes, (12 * m) as u64);
    }

    #[test]
    fn sub_rd_over_one_rank_per_node_encrypts_once() {
        // C-RD's sub-gather: one member per node, all hops inter-node.
        let report = run(&world(8, 8, Mapping::Block), |ctx| {
            let members: Vec<Rank> = (0..8).collect();
            let mut out = GatherOutput::new(8, 8);
            let mine = ctx.my_block(8);
            o_rd_over(
                ctx,
                &members,
                mine,
                &mut out,
                OrdVariant::ForwardSealed,
                900,
            );
            out.verify(6);
        });
        for met in &report.metrics {
            assert_eq!(met.enc_rounds, 1);
            assert_eq!(met.enc_bytes, 8);
            assert_eq!(met.dec_rounds, 7);
            assert_eq!(met.dec_bytes, 56);
            assert_eq!(met.comm_rounds, 3);
        }
    }
}
