//! HS-ML — a multi-leader hierarchical shared-memory all-gather.
//!
//! **Extension beyond the paper.** HS2 funnels all inter-node traffic of a
//! node through one leader (one stream per NIC); the Concurrent algorithms
//! use all ℓ processes as streams but pay intra-node message passing for the
//! local phase. HS-ML interpolates: `k` leaders per node each carry `ℓ/k` of
//! the node's ciphertexts through an independent inter-node all-gather
//! (k concurrent streams per node), while the local phase stays in shared
//! memory like HS. `k = 1` degenerates to HS2; `k = ℓ` gives C-Ring-like
//! stream concurrency without the intra-node channel cost.
//!
//! The multi-leader idea follows Kandalla et al.'s multi-leader all-gather
//! designs for multi-core clusters (the paper's reference \[13\]), applied to
//! the encrypted setting.

use crate::collective::{rd_allgather_items, ring_allgather_items};
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Item, ProcCtx};

/// Inter-node exchange pattern for the leader groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlPattern {
    /// Ring among each leader group (mapping-oblivious).
    Ring,
    /// Recursive doubling among each leader group.
    Rd,
}

/// Runs HS-ML with `k` leaders per node. Panics unless `k` divides ℓ
/// (`k = ℓ` and `k = 1` always work).
pub fn hs_ml(ctx: &mut ProcCtx, m: usize, k: usize, pattern: MlPattern) -> GatherOutput {
    let topo = ctx.topology().clone();
    let p = topo.p();
    let nodes = topo.nodes();
    let my_node = topo.node_of(ctx.rank());
    let ell = topo.procs_per_node();
    assert!(
        k >= 1 && k <= ell && ell.is_multiple_of(k),
        "k must divide ℓ"
    );
    let li = topo.local_index(ctx.rank());
    let blocks_per_leader = ell / k;
    // Local indices 0..k are leaders; leader g carries the node's blocks
    // with local index in [g·ℓ/k, (g+1)·ℓ/k).
    let is_leader = li < k;

    let mut out = GatherOutput::new(p, m);
    let my_chunk = ctx.my_block(m);
    out.place(my_chunk.clone());

    // Step 1: everyone seals its own block into the shared ciphertext
    // buffer (HS2's per-process encryption, se = m) and shares the
    // plaintext for intra-node reads.
    let sealed = ctx.encrypt(my_chunk.clone());
    // Consumers: the plaintext is read by the ℓ−1 siblings in step 4; the
    // ciphertext once, by the leader whose group covers this local index.
    ctx.shared_deposit(
        ctx.slot(tags::SLOT_GATHER, li),
        Item::Plain(my_chunk),
        ell - 1,
    );
    ctx.shared_deposit_free(ctx.slot(tags::SLOT_CIPHER_IN, li), Item::Sealed(sealed), 1);
    ctx.node_barrier();

    // Step 2: k concurrent inter-node all-gathers, one per leader group.
    if is_leader {
        let group = li;
        let members: Vec<Rank> = (0..nodes)
            .map(|node| topo.peer_on_node(topo.leader_of(node), group))
            .collect();
        let contribution: Vec<Item> = (blocks_per_leader * group..blocks_per_leader * (group + 1))
            .map(|slot_idx| ctx.shared_fetch_free(ctx.slot(tags::SLOT_CIPHER_IN, slot_idx)))
            .collect();
        let gathered = match pattern {
            MlPattern::Ring => ring_allgather_items(ctx, &members, contribution, tags::PHASE_SUB),
            MlPattern::Rd => rd_allgather_items(ctx, &members, contribution, tags::PHASE_SUB),
        };
        // Deposit foreign ciphertexts for the joint decryption; index them
        // by (origin-disjoint) leader-group-relative positions so the k
        // leaders never collide.
        let mut idx = 0usize;
        for item in gathered {
            let origin_node = topo.node_of(item.origins()[0]);
            if origin_node == my_node {
                continue;
            }
            ctx.shared_deposit_free(
                ctx.slot(
                    tags::SLOT_CIPHER_FOREIGN,
                    group * (nodes - 1) * blocks_per_leader + idx,
                ),
                item,
                1, // exactly one rank decrypts each foreign item in step 3
            );
            idx += 1;
        }
        assert_eq!(idx, (nodes - 1) * blocks_per_leader);
    }
    ctx.node_barrier();

    // Step 3: joint decryption, split across all ℓ processes.
    let foreign_items = (nodes - 1) * ell;
    for j in (0..foreign_items).skip(li).step_by(ell) {
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_CIPHER_FOREIGN, j));
        let plain = match item {
            Item::Sealed(s) => ctx.decrypt(s),
            Item::Plain(c) => c,
        };
        // Every process copies every decrypted block out in step 4.
        ctx.shared_deposit_free(ctx.slot(tags::SLOT_PLAIN_OUT, j), Item::Plain(plain), ell);
    }
    ctx.node_barrier();

    // Step 4: copy everything to the user buffer.
    for slot_idx in 0..ell {
        if slot_idx == li {
            continue;
        }
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_GATHER, slot_idx));
        out.place(item.into_plain());
    }
    for j in 0..foreign_items {
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_PLAIN_OUT, j));
        out.place(item.into_plain());
    }
    match topo.mapping() {
        eag_netsim::Mapping::Block => ctx.charge_copy(p * m),
        eag_netsim::Mapping::Cyclic => {
            for _ in 0..p {
                ctx.charge_strided_copy(m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 53 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn hs_ml_correct_across_k() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for k in [1usize, 2, 4] {
                for pattern in [MlPattern::Ring, MlPattern::Rd] {
                    let report = run(&world(16, 4, mapping), move |ctx| {
                        hs_ml(ctx, 32, k, pattern).verify(53);
                    });
                    assert!(
                        !report.wiretap.saw_plaintext_frame(),
                        "k={k} {pattern:?} {mapping} leaked"
                    );
                }
            }
        }
    }

    #[test]
    fn hs_ml_k1_matches_hs2_crypto_metrics() {
        let report_ml = run(&world(16, 4, Mapping::Block), |ctx| {
            hs_ml(ctx, 64, 1, MlPattern::Rd).verify(53);
        });
        let report_hs2 = run(&world(16, 4, Mapping::Block), |ctx| {
            crate::encrypted::hs2(ctx, 64).verify(53);
        });
        let ml = report_ml.max_metrics();
        let hs2 = report_hs2.max_metrics();
        assert_eq!(ml.enc_rounds, hs2.enc_rounds);
        assert_eq!(ml.enc_bytes, hs2.enc_bytes);
        assert_eq!(ml.dec_rounds, hs2.dec_rounds);
        assert_eq!(ml.dec_bytes, hs2.dec_bytes);
    }

    #[test]
    fn hs_ml_spreads_inter_node_streams() {
        // With k = 4 leaders, four ranks per node send inter-node traffic;
        // with k = 1, only one does.
        let senders = |k: usize| {
            let report = run(&world(16, 4, Mapping::Block), move |ctx| {
                hs_ml(ctx, 64, k, MlPattern::Ring).verify(53);
            });
            report
                .metrics
                .iter()
                .filter(|m| m.inter_bytes_sent > 0)
                .count()
        };
        assert_eq!(senders(1), 4); // 1 leader × 4 nodes
        assert_eq!(senders(4), 16); // 4 leaders × 4 nodes
    }

    #[test]
    fn hs_ml_crypto_volume_meets_the_lower_bounds() {
        let (p, nodes, m) = (16usize, 4usize, 48usize);
        let lb = crate::lower_bounds(p, nodes, m);
        for k in [1usize, 2, 4] {
            let report = run(&world(p, nodes, Mapping::Block), move |ctx| {
                hs_ml(ctx, m, k, MlPattern::Ring).verify(53);
            });
            let mx = report.max_metrics();
            // HS-ML keeps HS2's optimal encryption and decryption volumes
            // regardless of k.
            assert_eq!(mx.enc_bytes, lb.se, "k={k}");
            assert_eq!(mx.dec_bytes, lb.sd, "k={k}");
        }
    }

    #[test]
    fn shared_slot_map_empty_after_collective() {
        for k in [1usize, 2, 4] {
            let report = run(&world(16, 4, Mapping::Block), move |ctx| {
                hs_ml(ctx, 32, k, MlPattern::Rd).verify(53);
                ctx.node_barrier(); // race-free observation point
                ctx.shared_slots_len()
            });
            assert!(
                report.outputs.iter().all(|&live| live == 0),
                "k={k} left live slots: {:?}",
                report.outputs
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must divide")]
    fn hs_ml_rejects_bad_k() {
        run(&world(16, 4, Mapping::Block), |ctx| {
            let _ = hs_ml(ctx, 16, 3, MlPattern::Ring);
        });
    }
}
