//! The Opportunistic Ring (O-Ring) algorithm, and the encrypted ring
//! sub-gather used by C-Ring.
//!
//! The ring pattern is unchanged from the ordinary algorithm; the
//! opportunistic rule decides the representation of every hop:
//!
//! - **intra-node hop**: send plaintext (decrypting first if the data is
//!   currently held as ciphertext — the "entry process" role);
//! - **inter-node hop**: send ciphertext. Plaintext holdings are freshly
//!   encrypted (the "exit process" role); ciphertext received from the
//!   previous hop is *forwarded as-is*, with a decryption done only for this
//!   process's own output. Forward-as-is is what keeps `re = 1` in the
//!   Concurrent sub-gathers, where every hop is inter-node.

use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Item, Parcel, ProcCtx};

/// Runs an opportunistic ring all-gather of `my_chunk` over `members`
/// (visited in list order); places every member's plaintext into `out`.
pub fn o_ring_over(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_chunk: Chunk,
    out: &mut GatherOutput,
    tag_base: u64,
) {
    let q = members.len();
    let k = members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list");
    let succ = members[(k + 1) % q];
    let pred = members[(k + q - 1) % q];

    out.place(my_chunk.clone());
    let mut cur = Item::Plain(my_chunk);
    // A ciphertext we forward untouched still has to be opened for our own
    // output — but *after* the forward, so the decryption overlaps with the
    // wait for the next arrival instead of delaying the whole downstream
    // pipeline (the paper's communication/computation overlap).
    let mut pending: Option<eag_runtime::Sealed> = None;
    // The successor never changes, so neither does the outbound link class.
    let link = ctx.topology().link(ctx.rank(), succ);

    for step in 0..q.saturating_sub(1) {
        // Round boundary: a natural scheduling point on a contended world.
        ctx.yield_now();
        let tag = tag_base + step as u64;
        // `cur` is rebuilt from the arrival below, so the match can consume
        // it: the sealed plaintext's buffer is recycled by the rank's
        // encrypt scratch instead of being cloned every round.
        let to_send = match (cur, link) {
            // Plaintext over the network: seal it (exit-process role).
            (Item::Plain(c), LinkClass::Inter) => Item::Sealed(ctx.encrypt(c)),
            // Anything else is already in the right representation:
            // plaintext stays plaintext intra-node; ciphertext is forwarded
            // as-is inter-node; sealed-over-intra cannot occur because
            // receives convert to plaintext when the next hop is intra.
            (item, _) => item,
        };
        ctx.send(succ, tag, Parcel::one(to_send));

        // The forward is on the wire; now open last round's ciphertext for
        // our own output, hidden under the wait for this round's arrival.
        if let Some(s) = pending.take() {
            let c = ctx.decrypt(s);
            out.place(c);
        }

        let received = ctx.recv(pred, tag).items.remove(0);
        cur = match received {
            Item::Plain(c) => {
                out.place(c.clone());
                Item::Plain(c)
            }
            Item::Sealed(s) => {
                if link == LinkClass::Inter && step + 1 < q - 1 {
                    // Forward the ciphertext untouched next round.
                    pending = Some(s.clone());
                    Item::Sealed(s)
                } else {
                    // The next hop (or our output) needs the plaintext now
                    // (entry-process role).
                    let c = ctx.decrypt(s);
                    out.place(c.clone());
                    Item::Plain(c)
                }
            }
        };
    }

    if let Some(s) = pending {
        let c = ctx.decrypt(s);
        out.place(c);
    }
}

/// O-Ring proper: opportunistic ring over all `p` ranks in natural order.
pub fn o_ring(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let mut out = GatherOutput::new(ctx.p(), m);
    let my_chunk = ctx.my_block(m);
    o_ring_over(ctx, &members, my_chunk, &mut out, crate::tags::PHASE_MAIN);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 5 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn o_ring_correct_block_and_cyclic() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (9, 3), (6, 6)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    let out = o_ring(ctx, 24);
                    out.verify(5);
                });
                assert!(!report.wiretap.saw_plaintext_frame());
            }
        }
    }

    #[test]
    fn o_ring_metrics_match_table_2_block_order() {
        // p = 9, N = 3, block order: the paper's Figure 3 setting.
        // rc = p−1, re = rd = p−1 (exit/entry processes), se = sd = (p−1)m.
        let (p, m) = (9usize, 16usize);
        let report = run(&world(p, 3, Mapping::Block), |ctx| {
            o_ring(ctx, m).verify(5);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, (p - 1) as u64);
        assert_eq!(max.enc_rounds, (p - 1) as u64);
        assert_eq!(max.enc_bytes, ((p - 1) * m) as u64);
        assert_eq!(max.dec_rounds, (p - 1) as u64);
        assert_eq!(max.dec_bytes, ((p - 1) * m) as u64);
        assert_eq!(max.bytes_sent, ((p - 1) * (m + 28)) as u64);
    }

    #[test]
    fn sub_ring_over_one_rank_per_node_encrypts_once() {
        // One member per node (the C-Ring sub-gather): every hop is
        // inter-node, ciphertexts are forwarded as-is, so re = 1 per rank.
        let report = run(&world(4, 4, Mapping::Block), |ctx| {
            let members: Vec<Rank> = (0..4).collect();
            let mut out = GatherOutput::new(4, 8);
            let mine = ctx.my_block(8);
            o_ring_over(ctx, &members, mine, &mut out, 500);
            out.verify(5);
        });
        for m in &report.metrics {
            assert_eq!(m.enc_rounds, 1);
            assert_eq!(m.enc_bytes, 8);
            assert_eq!(m.dec_rounds, 3);
            assert_eq!(m.dec_bytes, 24);
        }
        assert!(!report.wiretap.saw_plaintext_frame());
    }
}
