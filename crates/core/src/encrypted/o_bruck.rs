//! O-Bruck — an Opportunistic Bruck all-gather.
//!
//! **Extension beyond the paper.** The paper applies its opportunistic rule
//! (encrypt inter-node hops, plaintext intra-node hops, forward ciphertexts
//! untouched) to Ring and Recursive Doubling. Bruck's dissemination pattern
//! completes in `⌈lg p⌉` rounds for *any* p — unlike RD, no fold/unfold
//! steps — which makes an opportunistic Bruck the natural candidate for
//! small messages on non-power-of-two process counts (where the modeled
//! MVAPICH baseline also uses Bruck). Ciphertexts are cached per block, so
//! a block crossing several node boundaries is sealed only once by whoever
//! first exports it.

use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Data, Item, Parcel, ProcCtx, Sealed};

/// Placeholder swapped in while a representation is moved out of a
/// `&mut Slot` (immediately overwritten by the `Slot::Both` promotion).
fn taken_chunk() -> Chunk {
    Chunk {
        origins: Vec::new(),
        block_len: 0,
        data: Data::Phantom(0),
    }
}

/// Sealed counterpart of [`taken_chunk`].
fn taken_sealed() -> Sealed {
    Sealed {
        origins: Vec::new(),
        block_len: 0,
        plain_len: 0,
        data: Data::Phantom(0),
    }
}

/// One Bruck slot: a single member's block, in whichever representations we
/// currently hold.
enum Slot {
    /// Plaintext only.
    Plain(Chunk),
    /// Ciphertext only (received over the network, not yet opened).
    Sealed(Sealed),
    /// Both (opened for output / sealed version cached for forwarding).
    Both(Chunk, Sealed),
}

impl Slot {
    /// The item to send over `link`, sealing or opening as required and
    /// updating the cached representations.
    fn item_for(&mut self, ctx: &mut ProcCtx, link: LinkClass) -> Item {
        match link {
            LinkClass::Inter => {
                if let Slot::Plain(c) = self {
                    // One clone only: encrypt consumes a copy (recycling its
                    // buffer as scratch), the original moves into the cache.
                    let plain = std::mem::replace(c, taken_chunk());
                    let sealed = ctx.encrypt(plain.clone());
                    *self = Slot::Both(plain, sealed);
                }
                match self {
                    Slot::Sealed(s) | Slot::Both(_, s) => Item::Sealed(s.clone()),
                    Slot::Plain(_) => unreachable!("sealed above"),
                }
            }
            LinkClass::Intra | LinkClass::SelfLoop => {
                if let Slot::Sealed(s) = self {
                    let sealed = std::mem::replace(s, taken_sealed());
                    let c = ctx.decrypt(sealed.clone());
                    *self = Slot::Both(c, sealed);
                }
                match self {
                    Slot::Plain(c) | Slot::Both(c, _) => Item::Plain(c.clone()),
                    Slot::Sealed(_) => unreachable!("opened above"),
                }
            }
        }
    }

    fn from_item(item: Item) -> Slot {
        match item {
            Item::Plain(c) => Slot::Plain(c),
            Item::Sealed(s) => Slot::Sealed(s),
        }
    }

    /// The plaintext, opening the ciphertext if necessary.
    fn into_plain(self, ctx: &mut ProcCtx) -> Chunk {
        match self {
            Slot::Plain(c) | Slot::Both(c, _) => c,
            Slot::Sealed(s) => ctx.decrypt(s),
        }
    }
}

/// Opportunistic Bruck all-gather over `members`; places every member's
/// plaintext into `out`.
pub fn o_bruck_over(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_chunk: Chunk,
    out: &mut GatherOutput,
    tag_base: u64,
) {
    let q = members.len();
    let k = members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list");
    let me = ctx.rank();

    let mut slots: Vec<Slot> = vec![Slot::Plain(my_chunk)];
    let mut step = 1usize;
    let mut round = 0u64;
    while step < q {
        // Round boundary: a natural scheduling point on a contended world.
        ctx.yield_now();
        let cnt = step.min(q - step);
        let dst = members[(k + q - step) % q];
        let src = members[(k + step) % q];
        let link = ctx.topology().link(me, dst);
        let items: Vec<Item> = slots[..cnt]
            .iter_mut()
            .map(|slot| slot.item_for(ctx, link))
            .collect();
        ctx.send(dst, tag_base + round, Parcel { items });
        let received = ctx.recv(src, tag_base + round).items;
        debug_assert_eq!(received.len(), cnt);
        slots.extend(received.into_iter().map(Slot::from_item));
        step *= 2;
        round += 1;
    }
    debug_assert_eq!(slots.len(), q);
    for slot in slots {
        out.place(slot.into_plain(ctx));
    }
}

/// O-Bruck proper: opportunistic Bruck over all ranks in natural order.
pub fn o_bruck(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let mut out = GatherOutput::new(ctx.p(), m);
    let my_chunk = ctx.my_block(m);
    o_bruck_over(ctx, &members, my_chunk, &mut out, crate::tags::PHASE_MAIN);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 31 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn o_bruck_correct_many_shapes() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (9, 3), (10, 5), (12, 4), (7, 7), (6, 3)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    o_bruck(ctx, 24).verify(31);
                });
                assert!(
                    !report.wiretap.saw_plaintext_frame(),
                    "O-Bruck leaked plaintext: p={p} N={nodes} {mapping}"
                );
            }
        }
    }

    #[test]
    fn o_bruck_round_count_is_ceil_lg_p() {
        for (p, nodes, want) in [(8usize, 4usize, 3u64), (9, 3, 4), (12, 4, 4)] {
            let report = run(&world(p, nodes, Mapping::Block), |ctx| {
                o_bruck(ctx, 16).verify(31);
            });
            for m in &report.metrics {
                assert_eq!(m.comm_rounds, want, "p={p}");
            }
        }
    }

    #[test]
    fn o_bruck_caches_ciphertexts_per_block() {
        // ℓ = 1 world: every hop is inter-node. Each rank seals its own
        // block once; everything else is forwarded sealed.
        let report = run(&world(8, 8, Mapping::Block), |ctx| {
            o_bruck(ctx, 16).verify(31);
        });
        for m in &report.metrics {
            assert_eq!(m.enc_rounds, 1);
            assert_eq!(m.enc_bytes, 16);
            // Every foreign block arrives sealed and is opened exactly once.
            assert_eq!(m.dec_rounds, 7);
        }
    }
}
