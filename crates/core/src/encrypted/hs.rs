//! The Hierarchical Shared-memory algorithms HS1 and HS2
//! (paper Section IV-B).
//!
//! Both use per-node shared-memory buffers instead of intra-node messaging:
//!
//! - **HS1**: (1) every process deposits its block into the node's shared
//!   plaintext buffer; (2) the leader encrypts the node's ℓm bytes as *one*
//!   ciphertext and all-gathers ciphertexts among leaders (RD); (3) all ℓ
//!   processes jointly decrypt the N−1 foreign ciphertexts
//!   (⌈(N−1)/ℓ⌉ each); (4) everyone copies the result to its user buffer.
//!   Metrics: `rc = lg N`, `re = 1`, `se = ℓm`, `rd = ⌈N/ℓ⌉`,
//!   `sd = max{N, ℓ}·m`.
//! - **HS2**: every process encrypts its *own* m bytes (se = m); leaders
//!   all-gather the per-process ciphertexts; joint decryption handles
//!   (N−1)ℓ ciphertexts, N−1 per process (`rd = N−1`, `sd = (N−1)m`).
//!
//! With a non-block mapping, step 4 needs `p` small copies instead of one
//! large one to rearrange blocks into rank order — the penalty the paper
//! observes for HS1/HS2 under cyclic mapping.
//!
//! `HsVariant::Plain` is the shared (unencrypted) counterpart of both, used
//! as a baseline in the paper's Figures 5 and 6.

use crate::collective::rd_allgather_items;
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::{Mapping, Rank};
use eag_runtime::{Chunk, Item, ProcCtx};

/// Which HS scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsVariant {
    /// Leader encrypts the whole node block once.
    Hs1,
    /// Every process encrypts its own block.
    Hs2,
    /// No encryption (the unencrypted counterpart; HS1 ≡ HS2 then).
    Plain,
}

/// Runs HS1/HS2/Plain with uniform `m`-byte blocks.
pub fn hs(ctx: &mut ProcCtx, m: usize, variant: HsVariant) -> GatherOutput {
    let lens = vec![m; ctx.p()];
    hs_v(ctx, &lens, variant)
}

/// Runs HS with per-rank block lengths (all-gather-v). Only [`HsVariant::Hs2`]
/// supports varying lengths (HS1 and the unencrypted counterpart merge the
/// node's blocks into a single equal-stride buffer before encryption).
pub fn hs_v(ctx: &mut ProcCtx, lens: &[usize], variant: HsVariant) -> GatherOutput {
    let topo = ctx.topology().clone();
    let p = topo.p();
    assert_eq!(lens.len(), p, "need one length per rank");
    let uniform = lens.windows(2).all(|w| w[0] == w[1]);
    assert!(
        uniform || variant == HsVariant::Hs2,
        "{variant:?} requires uniform block lengths; use HS2 for all-gather-v"
    );
    let nodes = topo.nodes();
    let my_node = topo.node_of(ctx.rank());
    let local = topo.ranks_on_node(my_node);
    let ell = local.len();
    let li = topo.local_index(ctx.rank());
    let is_leader = li == 0;
    let leaders: Vec<Rank> = (0..nodes).map(|n| topo.leader_of(n)).collect();

    let mut out = GatherOutput::new_varying(lens.to_vec());
    let my_chunk = ctx.my_block(lens[ctx.rank()]);
    out.place(my_chunk.clone());

    // Step 1: deposit into the node's shared buffers. Consumer counts come
    // from the algorithm's structure: a gather slot is read by the ℓ−1
    // siblings in step 4, plus (HS1/Plain only) once by the leader in
    // step 2.
    match variant {
        HsVariant::Hs1 | HsVariant::Plain => {
            ctx.shared_deposit(ctx.slot(tags::SLOT_GATHER, li), Item::Plain(my_chunk), ell);
        }
        HsVariant::Hs2 => {
            // Ciphertext for the network, plus plaintext so siblings can
            // read intra-node blocks without decryption.
            let sealed = ctx.encrypt(my_chunk.clone());
            ctx.shared_deposit(
                ctx.slot(tags::SLOT_GATHER, li),
                Item::Plain(my_chunk),
                ell - 1,
            );
            ctx.shared_deposit_free(ctx.slot(tags::SLOT_CIPHER_IN, li), Item::Sealed(sealed), 1);
        }
    }
    ctx.node_barrier();

    // Step 2: leaders all-gather.
    if is_leader {
        let contribution: Vec<Item> = match variant {
            HsVariant::Hs1 => {
                let blocks: Vec<Chunk> = (0..ell)
                    .map(|k| {
                        ctx.shared_fetch_free(ctx.slot(tags::SLOT_GATHER, k))
                            .into_plain()
                    })
                    .collect();
                let node_chunk = Chunk::concat_owned(blocks);
                vec![Item::Sealed(ctx.encrypt(node_chunk))]
            }
            HsVariant::Hs2 => (0..ell)
                .map(|k| ctx.shared_fetch_free(ctx.slot(tags::SLOT_CIPHER_IN, k)))
                .collect(),
            HsVariant::Plain => {
                let blocks: Vec<Chunk> = (0..ell)
                    .map(|k| {
                        ctx.shared_fetch_free(ctx.slot(tags::SLOT_GATHER, k))
                            .into_plain()
                    })
                    .collect();
                vec![Item::Plain(Chunk::concat_owned(blocks))]
            }
        };
        let gathered = rd_allgather_items(ctx, &leaders, contribution, tags::PHASE_MAIN);
        // Deposit foreign items into the shared ciphertext (or plaintext)
        // buffer, indexed consecutively for the joint-decryption split.
        let mut idx = 0usize;
        for item in gathered {
            let origin_node = topo.node_of(item.origins()[0]);
            if origin_node == my_node {
                continue;
            }
            // Exactly one rank (local index idx mod ℓ) decrypts each
            // foreign item in step 3.
            ctx.shared_deposit_free(ctx.slot(tags::SLOT_CIPHER_FOREIGN, idx), item, 1);
            idx += 1;
        }
        let expected = match variant {
            HsVariant::Hs2 => (nodes - 1) * ell,
            _ => nodes - 1,
        };
        assert_eq!(idx, expected, "leader gathered an unexpected item count");
    }
    ctx.node_barrier();

    // Step 3: joint decryption into the shared plaintext buffer.
    let foreign_items = match variant {
        HsVariant::Hs2 => (nodes - 1) * ell,
        _ => nodes - 1,
    };
    for j in (0..foreign_items).skip(li).step_by(ell) {
        // Each joint-decryption slice is a compute burst; give waiting
        // ranks a turn between slices on a contended world.
        ctx.yield_now();
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_CIPHER_FOREIGN, j));
        let plain = match item {
            Item::Sealed(s) => ctx.decrypt(s),
            Item::Plain(c) => c,
        };
        // Every process copies every decrypted block out in step 4.
        ctx.shared_deposit_free(ctx.slot(tags::SLOT_PLAIN_OUT, j), Item::Plain(plain), ell);
    }
    ctx.node_barrier();

    // Step 4: copy everything to the user buffer.
    for k in 0..ell {
        if k == li {
            continue; // own block already placed
        }
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_GATHER, k));
        out.place(item.into_plain());
    }
    for j in 0..foreign_items {
        let item = ctx.shared_fetch_free(ctx.slot(tags::SLOT_PLAIN_OUT, j));
        out.place(item.into_plain());
    }
    // The rank-order rearrangement cost: one bulk copy under block mapping,
    // p per-block copies otherwise (the paper's cyclic-mapping penalty).
    match topo.mapping() {
        Mapping::Block => ctx.charge_copy(lens.iter().sum()),
        Mapping::Cyclic => {
            for &len in lens {
                ctx.charge_strided_copy(len);
            }
        }
    }
    out
}

/// HS1: leader encrypts the node's data once.
pub fn hs1(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    hs(ctx, m, HsVariant::Hs1)
}

/// HS2: per-process encryption, joint decryption.
pub fn hs2(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    hs(ctx, m, HsVariant::Hs2)
}

/// The unencrypted counterpart of HS1/HS2.
pub fn hs_plain(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    hs(ctx, m, HsVariant::Plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 13 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn hs1_correct_many_shapes() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (12, 3), (6, 6), (9, 3)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    hs1(ctx, 16).verify(13);
                });
                assert!(
                    !report.wiretap.saw_plaintext_frame(),
                    "HS1 leaked plaintext: p={p} N={nodes} {mapping}"
                );
            }
        }
    }

    #[test]
    fn hs2_correct_many_shapes() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (12, 3), (10, 5)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    hs2(ctx, 16).verify(13);
                });
                assert!(!report.wiretap.saw_plaintext_frame());
            }
        }
    }

    #[test]
    fn hs_plain_correct() {
        for (p, nodes) in [(8, 2), (12, 4)] {
            let report = run(&world(p, nodes, Mapping::Block), |ctx| {
                hs_plain(ctx, 16).verify(13);
            });
            assert_eq!(report.outputs.len(), p);
        }
    }

    #[test]
    fn hs1_metrics_match_table_2() {
        // p = 16, N = 4, ℓ = 4, block: rc = lg N = 2, re = 1, se = ℓm,
        // rd = ⌈(N−1)/ℓ⌉ = 1, sd = ℓm (= max{N,ℓ}m with N = ℓ).
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            hs1(ctx, m).verify(13);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, 2);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, (4 * m) as u64);
        assert_eq!(max.dec_rounds, 1);
        assert_eq!(max.dec_bytes, (4 * m) as u64);
    }

    #[test]
    fn hs2_metrics_match_table_2() {
        // p = 16, N = 4, ℓ = 4, block: re = 1, se = m, rd = N−1 = 3,
        // sd = (N−1)m.
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            hs2(ctx, m).verify(13);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, 2);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, (nodes - 1) as u64);
        assert_eq!(max.dec_bytes, ((nodes - 1) * m) as u64);
    }

    #[test]
    fn shared_slot_map_empty_after_collective() {
        // Consumer-counted deposits must leave the node's shared segment
        // empty once the collective completes — the map used to grow by one
        // generation of slots per collective and never shrink.
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for variant in [HsVariant::Hs1, HsVariant::Hs2, HsVariant::Plain] {
                for (p, nodes) in [(16, 4), (12, 3), (6, 6)] {
                    let report = run(&world(p, nodes, mapping), move |ctx| {
                        hs(ctx, 16, variant).verify(13);
                        // All ranks are past their last fetch here, so the
                        // observation below is race-free.
                        ctx.node_barrier();
                        ctx.shared_slots_len()
                    });
                    assert!(
                        report.outputs.iter().all(|&live| live == 0),
                        "{variant:?} p={p} N={nodes} {mapping} left live slots: {:?}",
                        report.outputs
                    );
                }
            }
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_accumulate_slots() {
        let report = run(&world(8, 2, Mapping::Block), |ctx| {
            for _ in 0..3 {
                ctx.begin_collective();
                hs(ctx, 16, HsVariant::Hs2).verify(13);
            }
            ctx.node_barrier();
            ctx.shared_slots_len()
        });
        assert!(report.outputs.iter().all(|&live| live == 0));
    }

    #[test]
    fn hs1_decryption_is_shared_across_the_node() {
        // N = 8 nodes, ℓ = 2: each process decrypts ⌈7/2⌉ = 4 at most,
        // and the two siblings split the 7 foreign ciphertexts.
        let report = run(&world(16, 8, Mapping::Block), |ctx| {
            hs1(ctx, 8).verify(13);
        });
        let max = report.max_metrics();
        assert_eq!(max.dec_rounds, 4);
        let sum = eag_runtime::Metrics::component_sum(&report.metrics);
        // 7 foreign ciphertexts per node × 8 nodes.
        assert_eq!(sum.dec_rounds, 56);
    }
}
