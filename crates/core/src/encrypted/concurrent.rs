//! The Concurrent algorithms C-Ring and C-RD (paper Section IV-B).
//!
//! The p processes are partitioned into ℓ groups with exactly one process
//! per node per group. Each group runs an encrypted sub-all-gather of its
//! members' m-byte blocks (every hop is inter-node, so each process encrypts
//! its own block exactly once and forwards received ciphertexts untouched:
//! `re = 1`, `se = m`, `rd = N−1`, `sd = (N−1)m` — the theoretical lower
//! bound for sd). A node-local ordinary all-gather then spreads the ℓ
//! per-group results across the node.
//!
//! The same code with `encrypted = false` gives the *unencrypted
//! counterparts* the paper uses in Figures 5 and 6.

use crate::collective::{rd_allgather_items, ring_allgather_items};
use crate::encrypted::o_rd::{o_rd_over, OrdVariant};
use crate::encrypted::o_ring::o_ring_over;
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Chunk, Item, ProcCtx};

/// Which pattern the sub-all-gather (and the local phase) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubPattern {
    /// Ring sub-gather + local ring (C-Ring).
    Ring,
    /// RD sub-gather + local RD (C-RD).
    Rd,
}

/// Runs the Concurrent algorithm; `encrypted = false` gives the unencrypted
/// counterpart.
pub fn concurrent(
    ctx: &mut ProcCtx,
    m: usize,
    pattern: SubPattern,
    encrypted: bool,
) -> GatherOutput {
    let topo = ctx.topology().clone();
    let p = topo.p();
    let nodes = topo.nodes();
    let group = topo.local_index(ctx.rank());

    // Group members: the `group`-th process of every node, ordered by node.
    // This ordering is mapping-oblivious (the paper's C-Ring property).
    let members: Vec<Rank> = (0..nodes)
        .map(|node| topo.peer_on_node(topo.leader_of(node), group))
        .collect();

    let mut out = GatherOutput::new(p, m);
    let my_chunk = ctx.my_block(m);

    // Phase 1: concurrent sub-all-gathers (one per group).
    if encrypted {
        match pattern {
            SubPattern::Ring => o_ring_over(ctx, &members, my_chunk, &mut out, tags::PHASE_SUB),
            SubPattern::Rd => o_rd_over(
                ctx,
                &members,
                my_chunk,
                &mut out,
                OrdVariant::ForwardSealed,
                tags::PHASE_SUB,
            ),
        }
    } else {
        let items = vec![Item::Plain(my_chunk)];
        let gathered = match pattern {
            SubPattern::Ring => ring_allgather_items(ctx, &members, items, tags::PHASE_SUB),
            SubPattern::Rd => rd_allgather_items(ctx, &members, items, tags::PHASE_SUB),
        };
        out.place_items(gathered);
    }

    // Phase 2: node-local ordinary all-gather of each group's result.
    let local = topo.ranks_on_node(topo.node_of(ctx.rank()));
    if local.len() > 1 {
        let contribution = Chunk::concat_owned(
            members
                .iter()
                .map(|&r| out.get(r).expect("sub-gather incomplete").clone())
                .collect(),
        );
        let items = vec![Item::Plain(contribution)];
        let gathered = match pattern {
            SubPattern::Ring => ring_allgather_items(ctx, &local, items, tags::PHASE_LOCAL),
            SubPattern::Rd => rd_allgather_items(ctx, &local, items, tags::PHASE_LOCAL),
        };
        out.place_items(gathered);
    }
    out
}

/// C-Ring: encrypted ring sub-gathers + local ring.
pub fn c_ring(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    concurrent(ctx, m, SubPattern::Ring, true)
}

/// C-RD: encrypted RD sub-gathers + local RD.
pub fn c_rd(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    concurrent(ctx, m, SubPattern::Rd, true)
}

/// Unencrypted counterpart of C-Ring (used by the paper's Figures 5/6).
pub fn c_ring_plain(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    concurrent(ctx, m, SubPattern::Ring, false)
}

/// Unencrypted counterpart of C-RD.
pub fn c_rd_plain(ctx: &mut ProcCtx, m: usize) -> GatherOutput {
    concurrent(ctx, m, SubPattern::Rd, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: 9 },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn c_ring_correct_and_silent_on_the_wire() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (12, 3), (9, 3)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    c_ring(ctx, 16).verify(9);
                });
                assert!(!report.wiretap.saw_plaintext_frame());
            }
        }
    }

    #[test]
    fn c_rd_correct_and_silent_on_the_wire() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (8, 4), (12, 3), (6, 3), (12, 4)] {
                let report = run(&world(p, nodes, mapping), |ctx| {
                    c_rd(ctx, 16).verify(9);
                });
                assert!(!report.wiretap.saw_plaintext_frame());
            }
        }
    }

    #[test]
    fn plain_counterparts_correct() {
        for (p, nodes) in [(8, 4), (12, 3)] {
            let report = run(&world(p, nodes, Mapping::Block), |ctx| {
                c_ring_plain(ctx, 16).verify(9);
                c_rd_plain(ctx, 16).verify(9);
            });
            assert_eq!(report.outputs.len(), p);
        }
    }

    #[test]
    fn c_ring_metrics_match_table_2() {
        // p = 16, N = 4, ℓ = 4, block: rc = N+ℓ−2, re = 1, se = m,
        // rd = N−1, sd = (N−1)m (the sd lower bound).
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            c_ring(ctx, m).verify(9);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, (nodes + p / nodes - 2) as u64);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, (nodes - 1) as u64);
        assert_eq!(max.dec_bytes, ((nodes - 1) * m) as u64);
    }

    #[test]
    fn c_rd_metrics_match_table_2() {
        // p = 16, N = 4, ℓ = 4, block: rc = lg p, re = 1, se = m,
        // rd = N−1, sd = (N−1)m.
        let (p, nodes, m) = (16usize, 4usize, 32usize);
        let report = run(&world(p, nodes, Mapping::Block), |ctx| {
            c_rd(ctx, m).verify(9);
        });
        let max = report.max_metrics();
        assert_eq!(max.comm_rounds, 4); // lg 16
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, (nodes - 1) as u64);
        assert_eq!(max.dec_bytes, ((nodes - 1) * m) as u64);
    }

    #[test]
    fn c_ring_is_mapping_oblivious_in_traffic() {
        // Inter-node bytes sent must be identical for block and cyclic.
        let traffic = |mapping| {
            let report = run(&world(8, 4, mapping), |ctx| {
                c_ring(ctx, 64).verify(9);
            });
            eag_runtime::Metrics::component_sum(&report.metrics).inter_bytes_sent
        };
        assert_eq!(traffic(Mapping::Block), traffic(Mapping::Cyclic));
    }
}
