//! Encrypted rooted collectives: gather and scatter, linear and
//! binomial-tree, uniform and irregular (variable per-rank block lengths,
//! after Träff's linear-time irregular gather/scatter construction).
//!
//! The opportunistic rule is applied per edge and per block: a plaintext
//! block is sealed exactly when it first crosses a node boundary
//! (exit-process role), an already-sealed block is *forwarded as-is* by
//! every intermediary, and it is opened only by the rank that consumes it
//! (the gather root, or the scatter destination).
//!
//! The irregular case needs the receive-count vector at every rank before
//! any tree edge can be sized; [`exchange_lengths`] is the sealed
//! length-exchange prologue shared with `allgatherv` (8-byte metadata
//! blocks, Bruck pattern, `⌈lg q⌉` rounds — Träff's linear-time bound is
//! preserved because the prologue moves O(q) metadata, not payload).
//!
//! Closed forms (block mapping, p and N powers of two, N ≥ 2, ℓ = p/N):
//!
//! - **gather/linear**: `rc = p−1, sc = (p−1)m, re = 1, se = m,
//!   rd = p−ℓ, sd = (p−ℓ)m` (the root opens every remote block).
//! - **gather/binomial**: `rc = lg p, sc = (p−1)m, re = ℓ, se = ℓm,
//!   rd = p−ℓ, sd = (p−ℓ)m` (each leader seals its node's ℓ blocks,
//!   sealed subtrees transit leaders unchanged).
//! - **scatter/linear** and **scatter/binomial**: `rc = 1, sc = (p−1)m,
//!   re = p−ℓ, se = (p−ℓ)m, rd = 1, sd = m` (the root seals each
//!   remote-bound block once; every remote rank opens only its own).

use crate::collective::bruck_allgather_items;
use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Data, Item, Parcel, ProcCtx};

/// Sealed length-exchange prologue for the irregular collectives: every
/// member contributes its own block length and learns everyone's, indexed
/// by *global* rank. Metadata is sealed per transmission like the recovery
/// agreement bitmaps (real bytes even in phantom worlds — lengths are
/// protocol state, not payload).
pub fn exchange_lengths(
    ctx: &mut ProcCtx,
    members: &[Rank],
    my_len: usize,
    tag_base: u64,
) -> Vec<usize> {
    let me = ctx.rank();
    let chunk = Chunk::single(
        me,
        Data::Real((my_len as u64).to_le_bytes().to_vec().into()),
    );
    let sealed = Item::Sealed(ctx.encrypt(chunk));
    let items = bruck_allgather_items(ctx, members, sealed, tag_base);
    let mut lens = vec![0usize; ctx.p()];
    for item in items {
        let c = ctx.decrypt(item.into_sealed());
        let bytes = c.data.to_vec();
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes);
        lens[c.origins[0]] = u64::from_le_bytes(le) as usize;
    }
    lens
}

/// Seals `item` if it is plaintext about to cross a node boundary;
/// otherwise returns it unchanged (plaintext intra-node, sealed forwarded
/// as-is anywhere).
fn seal_for(ctx: &mut ProcCtx, item: Item, link: LinkClass) -> Item {
    match (item, link) {
        (Item::Plain(c), LinkClass::Inter) => Item::Sealed(ctx.encrypt(c)),
        (item, _) => item,
    }
}

fn open(ctx: &mut ProcCtx, item: Item) -> Chunk {
    match item {
        Item::Plain(c) => c,
        Item::Sealed(s) => ctx.decrypt(s),
    }
}

fn my_index(ctx: &ProcCtx, members: &[Rank]) -> usize {
    members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list")
}

/// Linear encrypted gather to `members[0]`: every other member sends its
/// block straight to the root, sealed iff the edge is inter-node. The root
/// returns a complete output over the member slots; non-roots return an
/// empty-expectation output (gather delivers data only at the root).
pub fn gather_linear(
    ctx: &mut ProcCtx,
    members: &[Rank],
    lens: &[usize],
    tag_base: u64,
) -> GatherOutput {
    let root = members[0];
    let me = ctx.rank();
    let topo = ctx.topology().clone();
    if me != root {
        let j = my_index(ctx, members);
        let item = Item::Plain(ctx.my_block(lens[me]));
        let item = seal_for(ctx, item, topo.link(me, root));
        ctx.send(root, tag_base + j as u64, Parcel::one(item));
        return GatherOutput::new_varying_sparse(lens.to_vec(), &[]);
    }
    let mut out = GatherOutput::new_varying_sparse(lens.to_vec(), members);
    out.place(ctx.my_block(lens[me]));
    for (j, &src) in members.iter().enumerate().skip(1) {
        ctx.yield_now();
        let item = ctx.recv(src, tag_base + j as u64).items.remove(0);
        let c = open(ctx, item);
        out.place(c);
    }
    out
}

/// Binomial-tree encrypted gather to `members[0]`: subtrees accumulate
/// toward the root in `⌈lg q⌉` rounds. A leader sends its node's plaintext
/// blocks sealed (one seal per block — blocks stay individually addressed
/// so intermediaries can forward foreign ciphertexts as-is) and relays
/// sealed subtrees untouched.
pub fn gather_binomial(
    ctx: &mut ProcCtx,
    members: &[Rank],
    lens: &[usize],
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let k = my_index(ctx, members);
    let me = ctx.rank();
    let topo = ctx.topology().clone();
    let mut holdings: Vec<Item> = vec![Item::Plain(ctx.my_block(lens[me]))];

    let mut mask = 1usize;
    while mask < q {
        if k & mask != 0 {
            let parent = members[k - mask];
            let link = topo.link(me, parent);
            let items: Vec<Item> = holdings
                .into_iter()
                .map(|i| seal_for(ctx, i, link))
                .collect();
            ctx.send(parent, tag_base + mask as u64, Parcel { items });
            return GatherOutput::new_varying_sparse(lens.to_vec(), &[]);
        }
        if k + mask < q {
            ctx.yield_now();
            let child = members[k + mask];
            holdings.extend(ctx.recv(child, tag_base + mask as u64).items);
        }
        mask <<= 1;
    }

    // Only the root reaches here.
    let mut out = GatherOutput::new_varying_sparse(lens.to_vec(), members);
    for item in holdings {
        let c = open(ctx, item);
        out.place(c);
    }
    out
}

/// Linear encrypted scatter from `members[0]`: the root synthesizes each
/// member's block from its send buffer ([`ProcCtx::block_for`]) and sends
/// it directly, sealed iff the edge is inter-node. Every rank's output
/// holds exactly its own slot.
pub fn scatter_linear(
    ctx: &mut ProcCtx,
    members: &[Rank],
    lens: &[usize],
    tag_base: u64,
) -> GatherOutput {
    let root = members[0];
    let me = ctx.rank();
    let topo = ctx.topology().clone();
    let mut out = GatherOutput::new_varying_sparse(lens.to_vec(), &[me]);
    if me == root {
        for (j, &dst) in members.iter().enumerate().skip(1) {
            ctx.yield_now();
            let item = Item::Plain(ctx.block_for(dst, lens[dst]));
            let item = seal_for(ctx, item, topo.link(me, dst));
            ctx.send(dst, tag_base + j as u64, Parcel::one(item));
        }
        out.place(ctx.my_block(lens[me]));
    } else {
        let j = my_index(ctx, members);
        let item = ctx.recv(root, tag_base + j as u64).items.remove(0);
        out.place(open(ctx, item));
    }
    out
}

/// Binomial-tree encrypted scatter from `members[0]`: the root sends each
/// child the bundle for that child's subtree (blocks in member-index order,
/// so sub-bundles split positionally without any wire manifest). Blocks
/// bound for another node are sealed at their first inter-node edge —
/// individually, so intermediaries forward them as-is and each destination
/// opens only its own.
pub fn scatter_binomial(
    ctx: &mut ProcCtx,
    members: &[Rank],
    lens: &[usize],
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let k = my_index(ctx, members);
    let me = ctx.rank();
    let topo = ctx.topology().clone();
    let mut out = GatherOutput::new_varying_sparse(lens.to_vec(), &[me]);

    // holdings[i] is the block for member k + i.
    let mut holdings: Vec<Item>;
    let mut mask = 1usize;
    if k == 0 {
        holdings = members
            .iter()
            .map(|&r| Item::Plain(ctx.block_for(r, lens[r])))
            .collect();
        while mask < q {
            mask <<= 1;
        }
    } else {
        holdings = Vec::new();
        while mask < q {
            if k & mask != 0 {
                let parent = members[k - mask];
                holdings = ctx.recv(parent, tag_base + mask as u64).items;
                break;
            }
            mask <<= 1;
        }
    }

    mask >>= 1;
    while mask > 0 {
        if k + mask < q && k & mask == 0 && holdings.len() > mask {
            ctx.yield_now();
            let dst = members[k + mask];
            let link = topo.link(me, dst);
            let items: Vec<Item> = holdings
                .split_off(mask)
                .into_iter()
                .map(|i| seal_for(ctx, i, link))
                .collect();
            ctx.send(dst, tag_base + mask as u64, Parcel { items });
        }
        mask >>= 1;
    }

    debug_assert_eq!(holdings.len(), 1, "subtree not fully scattered");
    out.place(open(ctx, holdings.remove(0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    const SEED: u64 = 0x5CA7;

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: SEED },
        );
        s.capture_wire = true;
        s
    }

    fn uniform(p: usize, m: usize) -> Vec<usize> {
        vec![m; p]
    }

    type Kernel = fn(&mut ProcCtx, &[Rank], &[usize], u64) -> GatherOutput;

    #[test]
    fn gather_correct_and_sealed() {
        for f in [gather_linear as Kernel, gather_binomial] {
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                for (p, nodes) in [(8, 2), (9, 3), (6, 6)] {
                    let members: Vec<Rank> = (0..p).collect();
                    let lens = uniform(p, 24);
                    let report = run(&world(p, nodes, mapping), move |ctx| {
                        let out = f(ctx, &members, &lens, 400);
                        out.verify(SEED);
                        if ctx.rank() == 0 {
                            assert!((0..p).all(|r| out.get(r).is_some()));
                        }
                    });
                    assert!(!report.wiretap.saw_plaintext_frame(), "p={p} N={nodes}");
                }
            }
        }
    }

    #[test]
    fn scatter_correct_and_sealed() {
        for f in [scatter_linear as Kernel, scatter_binomial] {
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                for (p, nodes) in [(8, 2), (9, 3), (6, 6)] {
                    let members: Vec<Rank> = (0..p).collect();
                    let lens = uniform(p, 24);
                    let report = run(&world(p, nodes, mapping), move |ctx| {
                        let me = ctx.rank();
                        let out = f(ctx, &members, &lens, 400);
                        out.verify(SEED);
                        assert!(out.get(me).is_some());
                    });
                    assert!(!report.wiretap.saw_plaintext_frame(), "p={p} N={nodes}");
                }
            }
        }
    }

    #[test]
    fn irregular_lengths_gather_and_scatter() {
        // Träff's irregular case: per-rank lengths from the sealed
        // length-exchange prologue, then variable-block trees.
        let p = 9;
        for f in [
            gather_linear as Kernel,
            gather_binomial,
            scatter_linear,
            scatter_binomial,
        ] {
            let report = run(&world(p, 3, Mapping::Block), move |ctx| {
                let me = ctx.rank();
                let members: Vec<Rank> = (0..p).collect();
                let my_len = 8 + 16 * me;
                let lens = exchange_lengths(ctx, &members, my_len, 900);
                assert_eq!(lens, (0..p).map(|r| 8 + 16 * r).collect::<Vec<_>>());
                let out = f(ctx, &members, &lens, 400);
                out.verify(SEED);
            });
            assert!(!report.wiretap.saw_plaintext_frame());
        }
    }

    #[test]
    fn gather_linear_metrics_match_closed_form() {
        // p = 16, N = 4, ℓ = 4: rc = p−1, sc = (p−1)m, re = 1, se = m,
        // rd = p−ℓ, sd = (p−ℓ)m.
        let (p, m) = (16usize, 32usize);
        let report = run(&world(p, 4, Mapping::Block), move |ctx| {
            let members: Vec<Rank> = (0..p).collect();
            gather_linear(ctx, &members, &vec![m; p], 400).verify(SEED);
        });
        let max = eag_runtime::Metrics::component_max(&report.metrics);
        assert_eq!(max.comm_rounds, (p - 1) as u64);
        assert_eq!(max.payload_sent.max(max.payload_recv), ((p - 1) * m) as u64);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, (p - 4) as u64);
        assert_eq!(max.dec_bytes, ((p - 4) * m) as u64);
    }

    #[test]
    fn gather_binomial_metrics_match_closed_form() {
        // p = 16, N = 4, ℓ = 4: rc = lg p, sc = (p−1)m, re = ℓ, se = ℓm,
        // rd = p−ℓ, sd = (p−ℓ)m.
        let (p, m) = (16usize, 32usize);
        let report = run(&world(p, 4, Mapping::Block), move |ctx| {
            let members: Vec<Rank> = (0..p).collect();
            gather_binomial(ctx, &members, &vec![m; p], 400).verify(SEED);
        });
        let max = eag_runtime::Metrics::component_max(&report.metrics);
        assert_eq!(max.comm_rounds, 4);
        assert_eq!(max.payload_sent.max(max.payload_recv), ((p - 1) * m) as u64);
        assert_eq!(max.enc_rounds, 4);
        assert_eq!(max.enc_bytes, (4 * m) as u64);
        assert_eq!(max.dec_rounds, (p - 4) as u64);
        assert_eq!(max.dec_bytes, ((p - 4) * m) as u64);
    }

    #[test]
    fn scatter_metrics_match_closed_form() {
        // Both variants: rc = 1, sc = (p−1)m, re = p−ℓ, se = (p−ℓ)m,
        // rd = 1, sd = m.
        let (p, m) = (16usize, 32usize);
        for f in [scatter_linear as Kernel, scatter_binomial] {
            let report = run(&world(p, 4, Mapping::Block), move |ctx| {
                let members: Vec<Rank> = (0..p).collect();
                f(ctx, &members, &vec![m; p], 400).verify(SEED);
            });
            let max = eag_runtime::Metrics::component_max(&report.metrics);
            assert_eq!(max.comm_rounds, 1);
            assert_eq!(max.payload_sent.max(max.payload_recv), ((p - 1) * m) as u64);
            assert_eq!(max.enc_rounds, (p - 4) as u64);
            assert_eq!(max.enc_bytes, ((p - 4) * m) as u64);
            assert_eq!(max.dec_rounds, 1);
            assert_eq!(max.dec_bytes, m as u64);
        }
    }

    #[test]
    fn rooted_over_a_scattered_group() {
        let members: Vec<Rank> = vec![1, 2, 4, 7, 10];
        for f in [
            gather_linear as Kernel,
            gather_binomial,
            scatter_linear,
            scatter_binomial,
        ] {
            let members2 = members.clone();
            let report = run(&world(12, 3, Mapping::Block), move |ctx| {
                if members2.contains(&ctx.rank()) {
                    let out = f(ctx, &members2, &vec![16; 12], 400);
                    out.verify(SEED);
                }
            });
            assert!(!report.wiretap.saw_plaintext_frame());
        }
    }
}
