//! Encrypted broadcast: sealed binomial-tree and pipelined-chain variants.
//!
//! Both follow the opportunistic rule of the all-gather algorithms:
//! plaintext travels intra-node, ciphertext inter-node, and a ciphertext
//! received from upstream is *forwarded as-is* across further inter-node
//! hops (one seal per node exit, not per edge). The root seals its block at
//! most once — the same ciphertext frame fans out to every inter-node
//! child, exactly like a ring forward re-transmits an unchanged frame.
//!
//! Closed forms (block mapping, p and N powers of two, N ≥ 2, ℓ = p/N):
//!
//! - **binomial**: `rc = 1, sc = lg(p)·m, re = 1, se = m, rd = 1, sd = m` —
//!   only node leaders receive sealed frames (the edge into rank k is
//!   inter-node iff `lowbit(k) >= ℓ`), and each decrypts once.
//! - **pipelined** with S segments: `rc = S, sc = m, re = S, se = m,
//!   rd = S, sd = m` — each node-boundary sender seals each segment, each
//!   node leader opens each segment; total bytes stay m per rank.

use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Data, Item, Parcel, ProcCtx, Sealed};

/// Segment count for the pipelined chain: a deterministic function of the
/// block size so every rank (and the closed-form prediction) agrees without
/// communication. Four segments saturate the pipeline on the profiles we
/// model; blocks smaller than four bytes get one segment per byte.
pub fn bcast_segments(m: usize) -> usize {
    m.clamp(1, 4)
}

fn seg_lens(m: usize, segments: usize) -> Vec<usize> {
    let base = m / segments;
    let rem = m % segments;
    (0..segments)
        .map(|i| base + usize::from(i < rem))
        .collect()
}

fn slice_data(data: &Data, segs: &[usize]) -> Vec<Data> {
    match data {
        Data::Real(_) => {
            let bytes = data.to_vec();
            let mut off = 0;
            segs.iter()
                .map(|&s| {
                    let d = Data::Real(bytes[off..off + s].to_vec().into());
                    off += s;
                    d
                })
                .collect()
        }
        Data::Phantom(_) => segs.iter().map(|&s| Data::Phantom(s)).collect(),
    }
}

fn concat_data(parts: Vec<Data>, total: usize) -> Data {
    if parts.iter().any(|d| matches!(d, Data::Phantom(_))) {
        debug_assert_eq!(parts.iter().map(Data::len).sum::<usize>(), total);
        return Data::Phantom(total);
    }
    let mut bytes = Vec::with_capacity(total);
    for part in parts {
        bytes.extend_from_slice(&part.to_vec());
    }
    debug_assert_eq!(bytes.len(), total);
    Data::Real(bytes.into())
}

/// A lazily materialized representation of the broadcast block: at most one
/// seal and one open per rank, whichever edges demand them.
struct Holding {
    plain: Option<Chunk>,
    sealed: Option<Sealed>,
}

impl Holding {
    fn plain(&mut self, ctx: &mut ProcCtx) -> Chunk {
        if self.plain.is_none() {
            let s = self.sealed.clone().expect("holding neither form");
            self.plain = Some(ctx.decrypt(s));
        }
        self.plain.clone().unwrap()
    }

    fn sealed(&mut self, ctx: &mut ProcCtx) -> Sealed {
        if self.sealed.is_none() {
            let c = self.plain.clone().expect("holding neither form");
            self.sealed = Some(ctx.encrypt(c));
        }
        self.sealed.clone().unwrap()
    }
}

/// Sealed binomial-tree broadcast of `members[0]`'s `m`-byte block to every
/// member. Every rank's output holds exactly the root's slot.
pub fn bcast_binomial(
    ctx: &mut ProcCtx,
    members: &[Rank],
    m: usize,
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let k = members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list");
    let root = members[0];
    let topo = ctx.topology().clone();
    let mut out = GatherOutput::new_sparse(ctx.p(), &[root], m);

    let mut holding = Holding {
        plain: (k == 0).then(|| ctx.block_for(root, m)),
        sealed: None,
    };

    // MPICH binomial tree over member indices, root = index 0: receive from
    // the parent (k minus its lowest set bit) …
    let mut mask = 1usize;
    if k != 0 {
        while mask < q {
            if k & mask != 0 {
                let src = members[k - mask];
                match ctx.recv(src, tag_base + mask as u64).items.remove(0) {
                    Item::Plain(c) => holding.plain = Some(c),
                    Item::Sealed(s) => holding.sealed = Some(s),
                }
                break;
            }
            mask <<= 1;
        }
    } else {
        while mask < q {
            mask <<= 1;
        }
    }

    // … then serve the subtree, largest child first. Inter-node children
    // get the (cached) ciphertext — forward-as-is when it arrived sealed,
    // one fresh seal otherwise; intra-node children get the plaintext.
    mask >>= 1;
    while mask > 0 {
        if k + mask < q && k & mask == 0 {
            ctx.yield_now();
            let dst = members[k + mask];
            let item = match topo.link(ctx.rank(), dst) {
                LinkClass::Inter => Item::Sealed(holding.sealed(ctx)),
                _ => Item::Plain(holding.plain(ctx)),
            };
            ctx.send(dst, tag_base + mask as u64, Parcel::one(item));
        }
        mask >>= 1;
    }

    out.place(holding.plain(ctx));
    out
}

/// Sealed pipelined-chain broadcast: the root splits its block into
/// [`bcast_segments`]`(m)` segments and streams them down the member chain
/// in list order. Each hop applies the opportunistic per-edge rule segment
/// by segment; a rank whose outbound edge is inter-node forwards an arrived
/// ciphertext as-is and opens its own copy under the wait for the next
/// segment.
pub fn bcast_pipelined(
    ctx: &mut ProcCtx,
    members: &[Rank],
    m: usize,
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let k = members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list");
    let root = members[0];
    let topo = ctx.topology().clone();
    let mut out = GatherOutput::new_sparse(ctx.p(), &[root], m);
    let segs = seg_lens(m, bcast_segments(m));

    let succ = (k + 1 < q).then(|| members[k + 1]);
    let out_inter = succ.map(|s| topo.link(ctx.rank(), s) == LinkClass::Inter);

    if k == 0 {
        let full = ctx.block_for(root, m);
        for (i, data) in slice_data(&full.data, &segs).into_iter().enumerate() {
            ctx.yield_now();
            if let (Some(succ), Some(inter)) = (succ, out_inter) {
                let chunk = Chunk::single(root, data);
                let item = if inter {
                    Item::Sealed(ctx.encrypt(chunk))
                } else {
                    Item::Plain(chunk)
                };
                ctx.send(succ, tag_base + i as u64, Parcel::one(item));
            }
        }
        out.place(full);
        return out;
    }

    let pred = members[k - 1];
    let mut collected: Vec<Data> = Vec::with_capacity(segs.len());
    for i in 0..segs.len() {
        ctx.yield_now();
        let tag = tag_base + i as u64;
        match ctx.recv(pred, tag).items.remove(0) {
            Item::Plain(c) => {
                if let Some(succ) = succ {
                    let item = if out_inter == Some(true) {
                        Item::Sealed(ctx.encrypt(c.clone()))
                    } else {
                        Item::Plain(c.clone())
                    };
                    ctx.send(succ, tag, Parcel::one(item));
                }
                collected.push(c.data);
            }
            Item::Sealed(s) => {
                if let Some(succ) = succ {
                    if out_inter == Some(true) {
                        // Forward as-is first; open our copy under the wait
                        // for the next segment.
                        ctx.send(succ, tag, Parcel::one(Item::Sealed(s.clone())));
                        collected.push(ctx.decrypt(s).data);
                        continue;
                    }
                    let c = ctx.decrypt(s);
                    ctx.send(succ, tag, Parcel::one(Item::Plain(c.clone())));
                    collected.push(c.data);
                    continue;
                }
                collected.push(ctx.decrypt(s).data);
            }
        }
    }
    out.place(Chunk {
        origins: vec![root],
        block_len: m,
        data: concat_data(collected, m),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    const SEED: u64 = 0xB0CA;

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: SEED },
        );
        s.capture_wire = true;
        s
    }

    #[test]
    fn binomial_correct_block_and_cyclic() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (9, 3), (6, 6), (5, 1)] {
                let members: Vec<Rank> = (0..p).collect();
                let report = run(&world(p, nodes, mapping), move |ctx| {
                    let out = bcast_binomial(ctx, &members, 24, 300);
                    out.verify(SEED);
                });
                if nodes > 1 {
                    assert!(
                        !report.wiretap.saw_plaintext_frame(),
                        "{mapping:?} p={p} N={nodes}: plaintext crossed nodes"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_correct_block_and_cyclic() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for (p, nodes) in [(8, 2), (9, 3), (6, 6), (5, 1)] {
                for m in [1usize, 3, 24, 1000] {
                    let members: Vec<Rank> = (0..p).collect();
                    let report = run(&world(p, nodes, mapping), move |ctx| {
                        let out = bcast_pipelined(ctx, &members, m, 300);
                        out.verify(SEED);
                    });
                    if nodes > 1 {
                        assert!(!report.wiretap.saw_plaintext_frame(), "m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_metrics_match_closed_form() {
        // p = 16, N = 4, ℓ = 4, block order: rc = 1, sc = lg(p)·m,
        // re = 1 (root seals once, reused for every inter child),
        // se = m, rd = 1 (leaders), sd = m.
        let (p, m) = (16usize, 32usize);
        let report = run(&world(p, 4, Mapping::Block), move |ctx| {
            let members: Vec<Rank> = (0..p).collect();
            bcast_binomial(ctx, &members, m, 300).verify(SEED);
        });
        let max = eag_runtime::Metrics::component_max(&report.metrics);
        assert_eq!(max.comm_rounds, 1);
        assert_eq!(max.payload_sent.max(max.payload_recv), (4 * m) as u64);
        assert_eq!(max.enc_rounds, 1);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, 1);
        assert_eq!(max.dec_bytes, m as u64);
    }

    #[test]
    fn pipelined_metrics_match_closed_form() {
        // p = 16, N = 4, block order, S = 4 segments: rc = S, sc = m,
        // re = S (node-boundary senders), se = m, rd = S (leaders), sd = m.
        let (p, m) = (16usize, 64usize);
        let s = bcast_segments(m) as u64;
        let report = run(&world(p, 4, Mapping::Block), move |ctx| {
            let members: Vec<Rank> = (0..p).collect();
            bcast_pipelined(ctx, &members, m, 300).verify(SEED);
        });
        let max = eag_runtime::Metrics::component_max(&report.metrics);
        assert_eq!(max.comm_rounds, s);
        assert_eq!(max.payload_sent.max(max.payload_recv), m as u64);
        assert_eq!(max.enc_rounds, s);
        assert_eq!(max.enc_bytes, m as u64);
        assert_eq!(max.dec_rounds, s);
        assert_eq!(max.dec_bytes, m as u64);
    }

    #[test]
    fn single_node_broadcast_needs_no_crypto() {
        for f in [
            bcast_binomial as fn(&mut ProcCtx, &[Rank], usize, u64) -> GatherOutput,
            bcast_pipelined,
        ] {
            let report = run(&world(6, 1, Mapping::Block), move |ctx| {
                let members: Vec<Rank> = (0..6).collect();
                f(ctx, &members, 40, 300).verify(SEED);
            });
            let sum = eag_runtime::Metrics::component_sum(&report.metrics);
            assert_eq!(sum.enc_rounds, 0);
            assert_eq!(sum.dec_rounds, 0);
        }
    }

    #[test]
    fn broadcast_over_a_scattered_group() {
        // Survivor-shaped member list straddling nodes, root = members[0].
        let members: Vec<Rank> = vec![1, 2, 4, 7, 10];
        for f in [
            bcast_binomial as fn(&mut ProcCtx, &[Rank], usize, u64) -> GatherOutput,
            bcast_pipelined,
        ] {
            let members2 = members.clone();
            let report = run(&world(12, 3, Mapping::Block), move |ctx| {
                if members2.contains(&ctx.rank()) {
                    let out = f(ctx, &members2, 48, 300);
                    out.verify(SEED);
                    assert!(out.get(1).is_some());
                }
            });
            assert!(!report.wiretap.saw_plaintext_frame());
        }
    }
}
