//! Encrypted all-to-all (complete personalized exchange): every member
//! holds one distinct block *per destination* and must deliver each block
//! to its addressee.
//!
//! Two variants:
//!
//! - [`alltoall_pairwise`]: `q−1` sendrecv rounds, round `k` exchanging
//!   with ranks at member-index distance `±k`. Every block travels exactly
//!   one edge, so the opportunistic rule degenerates to: seal iff that one
//!   edge is inter-node. Closed form (block mapping, p, N powers of two,
//!   N ≥ 2, ℓ = p/N): `rc = p−1, sc = (p−1)m, re = p−ℓ, se = (p−ℓ)m,
//!   rd = p−ℓ, sd = (p−ℓ)m`.
//! - [`alltoall_bruck`]: `⌈lg q⌉` store-and-forward rounds. Block
//!   `(si → di)` with offset `o = (di − si) mod q` moves at round `k` iff
//!   bit `k` of `o` is set, always by `+2^k` member-index positions. The
//!   criterion is static — both endpoints of every edge derive the exact
//!   block set crossing it from `(q, k)` alone, and order it by
//!   `(si, di)`, so the wire carries *only payload items*, no manifest.
//!   A block is sealed at its first inter-node hop and **forwarded as-is**
//!   by every intermediary (the relays never re-encrypt foreign
//!   ciphertext); only the final destination opens it. No closed form is
//!   registered: log-round forwarding makes the per-rank maxima
//!   shape-dependent, as with the opportunistic Bruck all-gather.

use std::collections::BTreeMap;

use crate::collective::ceil_log2;
use crate::output::GatherOutput;
use eag_netsim::{LinkClass, Rank};
use eag_runtime::{Chunk, Item, Parcel, ProcCtx};

fn seal_for(ctx: &mut ProcCtx, item: Item, link: LinkClass) -> Item {
    match (item, link) {
        (Item::Plain(c), LinkClass::Inter) => Item::Sealed(ctx.encrypt(c)),
        (item, _) => item,
    }
}

fn open(ctx: &mut ProcCtx, item: Item) -> Chunk {
    match item {
        Item::Plain(c) => c,
        Item::Sealed(s) => ctx.decrypt(s),
    }
}

fn my_index(ctx: &ProcCtx, members: &[Rank]) -> usize {
    members
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("calling rank not in member list")
}

/// Pairwise-exchange encrypted all-to-all over `members`, uniform block
/// length `m`. Each rank's output holds the `q` blocks addressed to it,
/// slot-indexed by source rank; verify with
/// [`GatherOutput::verify_pairwise`].
pub fn alltoall_pairwise(
    ctx: &mut ProcCtx,
    members: &[Rank],
    m: usize,
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let i = my_index(ctx, members);
    let me = ctx.rank();
    let topo = ctx.topology().clone();
    let mut out = GatherOutput::new_sparse(ctx.p(), members, m);
    out.place(ctx.my_block_for(me, m));
    for k in 1..q {
        ctx.yield_now();
        let dst = members[(i + k) % q];
        let src = members[(i + q - k) % q];
        let item = Item::Plain(ctx.my_block_for(dst, m));
        let item = seal_for(ctx, item, topo.link(me, dst));
        let mut parcel = ctx.sendrecv(dst, src, tag_base + k as u64, Parcel::one(item));
        let c = open(ctx, parcel.items.remove(0));
        out.place(c);
    }
    out
}

/// The member-index pairs `(si, di)` whose blocks arrive at index `i` in
/// round `k`, in `(si, di)` order — the mirror image of the sender's
/// static moving-set criterion.
fn bruck_expected(q: usize, i: usize, k: u32) -> Vec<(usize, usize)> {
    let stride = 1usize << k;
    let s = (i + q - stride % q) % q;
    let mut pairs = Vec::new();
    for si in 0..q {
        let low = (s + q - si) % q;
        if low >= stride {
            continue;
        }
        let mut o = low + stride;
        while o < q {
            pairs.push((si, (si + o) % q));
            o += stride << 1;
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Bruck-style encrypted all-to-all over `members`, uniform block length
/// `m`: `⌈lg q⌉` rounds, ciphertext forwarded as-is through
/// intermediaries.
pub fn alltoall_bruck(
    ctx: &mut ProcCtx,
    members: &[Rank],
    m: usize,
    tag_base: u64,
) -> GatherOutput {
    let q = members.len();
    let i = my_index(ctx, members);
    let me = ctx.rank();
    let topo = ctx.topology().clone();

    // Blocks currently positioned at this rank, keyed (si, di) by
    // member index. Initially: everything this rank originates.
    let mut held: BTreeMap<(usize, usize), Item> = (0..q)
        .map(|di| {
            (
                (i, di),
                Item::Plain(ctx.my_block_for(members[di], m)),
            )
        })
        .collect();

    for k in 0..ceil_log2(q) {
        ctx.yield_now();
        let stride = 1usize << k;
        let dst = members[(i + stride % q) % q];
        let src = members[(i + q - stride % q) % q];

        // Static criterion: block (si, di) moves at round k iff bit k of
        // its offset (di − si) mod q is set.
        let moving: Vec<(usize, usize)> = held
            .keys()
            .copied()
            .filter(|&(si, di)| ((di + q - si) % q) & stride != 0)
            .collect();
        let expected = bruck_expected(q, i, k);

        if !moving.is_empty() {
            let link = topo.link(me, dst);
            let items: Vec<Item> = moving
                .iter()
                .map(|key| {
                    let item = held.remove(key).expect("moving block is held");
                    seal_for(ctx, item, link)
                })
                .collect();
            ctx.send(dst, tag_base + u64::from(k), Parcel { items });
        }
        if !expected.is_empty() {
            let parcel = ctx.recv(src, tag_base + u64::from(k));
            assert_eq!(parcel.items.len(), expected.len(), "bruck manifest drift");
            for (key, item) in expected.into_iter().zip(parcel.items) {
                held.insert(key, item);
            }
        }
    }

    let mut out = GatherOutput::new_sparse(ctx.p(), members, m);
    for ((si, di), item) in held {
        debug_assert_eq!(di, i, "undelivered block after final round");
        let c = open(ctx, item);
        debug_assert_eq!(c.origins, vec![members[si]]);
        out.place(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    const SEED: u64 = 0xA2A5;

    fn world(p: usize, nodes: usize, mapping: Mapping) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, mapping),
            profile::free(),
            DataMode::Real { seed: SEED },
        );
        s.capture_wire = true;
        s
    }

    type Kernel = fn(&mut ProcCtx, &[Rank], usize, u64) -> GatherOutput;

    #[test]
    fn alltoall_correct_and_sealed() {
        for f in [alltoall_pairwise as Kernel, alltoall_bruck] {
            for mapping in [Mapping::Block, Mapping::Cyclic] {
                for (p, nodes) in [(8, 2), (9, 3), (6, 6), (5, 1)] {
                    for m in [1usize, 24, 100] {
                        let report = run(&world(p, nodes, mapping), move |ctx| {
                            let members: Vec<Rank> = (0..p).collect();
                            let out = f(ctx, &members, m, 400);
                            out.verify_pairwise(SEED, ctx.rank());
                            assert!((0..p).all(|r| out.get(r).is_some()));
                        });
                        if nodes > 1 {
                            assert!(
                                !report.wiretap.saw_plaintext_frame(),
                                "p={p} N={nodes} m={m}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pairwise_metrics_match_closed_form() {
        // p = 16, N = 4, ℓ = 4: rc = p−1, sc = (p−1)m, re = p−ℓ,
        // se = (p−ℓ)m, rd = p−ℓ, sd = (p−ℓ)m.
        let (p, m) = (16usize, 32usize);
        let report = run(&world(p, 4, Mapping::Block), move |ctx| {
            let members: Vec<Rank> = (0..p).collect();
            alltoall_pairwise(ctx, &members, m, 400).verify_pairwise(SEED, ctx.rank());
        });
        let max = eag_runtime::Metrics::component_max(&report.metrics);
        assert_eq!(max.comm_rounds, (p - 1) as u64);
        assert_eq!(max.payload_sent.max(max.payload_recv), ((p - 1) * m) as u64);
        assert_eq!(max.enc_rounds, (p - 4) as u64);
        assert_eq!(max.enc_bytes, ((p - 4) * m) as u64);
        assert_eq!(max.dec_rounds, (p - 4) as u64);
        assert_eq!(max.dec_bytes, ((p - 4) * m) as u64);
    }

    #[test]
    fn single_node_alltoall_needs_no_crypto() {
        for f in [alltoall_pairwise as Kernel, alltoall_bruck] {
            let report = run(&world(6, 1, Mapping::Block), move |ctx| {
                let members: Vec<Rank> = (0..6).collect();
                f(ctx, &members, 16, 400).verify_pairwise(SEED, ctx.rank());
            });
            let total: u64 = report
                .metrics
                .iter()
                .map(|m| m.enc_rounds + m.dec_rounds)
                .sum();
            assert_eq!(total, 0);
        }
    }

    #[test]
    fn alltoall_over_a_scattered_group() {
        let members: Vec<Rank> = vec![1, 2, 4, 7, 10];
        for f in [alltoall_pairwise as Kernel, alltoall_bruck] {
            let members2 = members.clone();
            let report = run(&world(12, 3, Mapping::Block), move |ctx| {
                if members2.contains(&ctx.rank()) {
                    let out = f(ctx, &members2, 16, 400);
                    out.verify_pairwise(SEED, ctx.rank());
                    for &r in &members2 {
                        assert!(out.get(r).is_some());
                    }
                }
            });
            assert!(!report.wiretap.saw_plaintext_frame());
        }
    }
}
