//! Theoretical bounds and predictions (paper Tables I and II), generalized
//! per collective operation.

use crate::algorithm::Algorithm;
use crate::collective::ceil_log2;
use crate::operation::Operation;
use std::fmt;

/// The six metrics of Section IV-A, as closed-form values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSet {
    /// Communication rounds in the critical path.
    pub rc: u64,
    /// Bytes sent/received in the critical path.
    pub sc: u64,
    /// Encryption rounds.
    pub re: u64,
    /// Bytes encrypted.
    pub se: u64,
    /// Decryption rounds.
    pub rd: u64,
    /// Bytes decrypted.
    pub sd: u64,
}

/// Why a bounds query cannot be answered for a given world shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsError {
    /// `p == 0` or `nodes == 0`: no such world.
    EmptyWorld,
    /// `p` is not a multiple of `nodes`, so ℓ = p/N is undefined.
    IndivisibleShape {
        /// The offending process count.
        p: usize,
        /// The offending node count.
        nodes: usize,
    },
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::EmptyWorld => write!(f, "bounds need p >= 1 and nodes >= 1"),
            BoundsError::IndivisibleShape { p, nodes } => {
                write!(f, "p = {p} is not a multiple of nodes = {nodes}")
            }
        }
    }
}

impl std::error::Error for BoundsError {}

fn check_shape(p: usize, nodes: usize) -> Result<usize, BoundsError> {
    if p == 0 || nodes == 0 {
        return Err(BoundsError::EmptyWorld);
    }
    if !p.is_multiple_of(nodes) {
        return Err(BoundsError::IndivisibleShape { p, nodes });
    }
    Ok(p / nodes)
}

/// Table I: lower bounds for encrypted all-gather of `m`-byte blocks on `p`
/// processes over `nodes` nodes (ℓ = p/nodes). Unlike the original
/// all-gather-only formulation, a single-node world is answered with
/// degenerate bounds (communication terms unchanged, crypto terms zero —
/// nothing crosses a node boundary) instead of asserting, so bench sweeps
/// and `recommend` can probe arbitrary configurations.
pub fn try_lower_bounds(p: usize, nodes: usize, m: usize) -> Result<MetricSet, BoundsError> {
    let ell = check_shape(p, nodes)?;
    if nodes == 1 {
        return Ok(MetricSet {
            rc: ceil_log2(p) as u64,
            sc: ((p - 1) * m) as u64,
            re: 0,
            se: 0,
            rd: 0,
            sd: 0,
        });
    }
    // rd >= ceil( lg N / lg(ℓ+1) ): each decryption round can at most
    // multiply the number of nodes with known data by (ℓ+1).
    let rd = {
        let lg_n = (nodes as f64).log2();
        let lg_l1 = ((ell + 1) as f64).log2();
        (lg_n / lg_l1).ceil() as u64
    };
    Ok(MetricSet {
        rc: ceil_log2(p) as u64,
        sc: ((p - 1) * m) as u64,
        re: 1,
        se: m as u64,
        rd,
        sd: ((nodes - 1) * m) as u64,
    })
}

/// Panicking convenience over [`try_lower_bounds`]: still total for any
/// `nodes >= 1` (single-node worlds get the degenerate zero-crypto bounds),
/// panicking only on shapes with no defined ℓ.
pub fn lower_bounds(p: usize, nodes: usize, m: usize) -> MetricSet {
    try_lower_bounds(p, nodes, m).unwrap_or_else(|e| panic!("{e}"))
}

/// Per-operation Table-I-style lower bounds (ℓ = p/nodes, N = nodes).
///
/// The communication terms follow the classic collective arguments; the
/// crypto terms use the paper's channel model (every byte crossing a node
/// boundary is sealed exactly where it exits and opened where it is
/// consumed):
///
/// - **broadcast**: every non-root must receive the root's m bytes
///   (`sc >= m`); the block crosses at least one node boundary, so some
///   rank seals >= m and some rank opens >= m.
/// - **gather**: the root receives (p−1) blocks (`sc >= (p-1)m`) and must
///   end with the p−ℓ remote blocks in plaintext (`sd >= (p-ℓ)m`); at
///   least one full block is sealed somewhere.
/// - **scatter**: the root is the sole data holder, so every remote-bound
///   byte is sealed by it (`se >= (p-ℓ)m`); each remote rank opens its own
///   m bytes.
/// - **all-to-all**: data from p distinct sources must reach every rank, and
///   each receive at most doubles the known-source count (`rc >= ⌈lg p⌉`);
///   p·(p−ℓ) pair-blocks cross node boundaries, so by averaging some rank
///   seals >= (p−ℓ)m and some rank opens >= (p−ℓ)m.
///
/// The irregular (v) operations share their base operation's bounds with
/// `m` read as the uniform per-rank block size.
pub fn lower_bounds_op(
    op: Operation,
    p: usize,
    nodes: usize,
    m: usize,
) -> Result<MetricSet, BoundsError> {
    let ell = check_shape(p, nodes)?;
    let mb = m as u64;
    let remote = ((p - ell) * m) as u64;
    // Crypto terms vanish on a single node: nothing crosses a boundary.
    let one = u64::from(nodes >= 2);
    Ok(match op {
        Operation::Allgather | Operation::Allgatherv => try_lower_bounds(p, nodes, m)?,
        Operation::Broadcast => MetricSet {
            rc: u64::from(p > 1),
            sc: if p > 1 { mb } else { 0 },
            re: one,
            se: one * mb,
            rd: one,
            sd: one * mb,
        },
        Operation::Gather | Operation::Gatherv => MetricSet {
            rc: u64::from(p > 1),
            sc: ((p - 1) * m) as u64,
            re: one,
            se: one * mb,
            rd: one,
            sd: remote,
        },
        Operation::Scatter | Operation::Scatterv => MetricSet {
            rc: u64::from(p > 1),
            sc: ((p - 1) * m) as u64,
            re: one,
            se: remote,
            rd: one,
            sd: one * mb,
        },
        Operation::Alltoall => MetricSet {
            rc: ceil_log2(p) as u64,
            sc: ((p - 1) * m) as u64,
            re: one,
            se: remote,
            rd: one,
            sd: remote,
        },
    })
}

/// Table II: the paper's closed-form metrics for each encrypted algorithm,
/// assuming `p` and `nodes` are powers of two and block-order mapping.
///
/// Two deliberate deviations from the printed table, both documented in
/// DESIGN.md:
/// - O-RD's decryption rounds: the table prints `p−ℓ`, but the paper's own
///   Section IV-B derivation ("each process only decrypts the encrypted copy
///   of data of every other node, and thus rd = N−1") matches the
///   merged-ciphertext implementation that also gives the table's `re = 1`;
///   we implement and predict `rd = N−1`.
/// - HS1's `rd`: the table's `⌈N/ℓ⌉` simplification assumes N, ℓ powers of
///   two; the exact count is `⌈(N−1)/ℓ⌉`, which we predict (they agree for
///   the power-of-two inputs this function requires, except when ℓ ∤ N−1 —
///   e.g. N = ℓ where both give 1).
pub fn predict(algo: Algorithm, p: usize, nodes: usize, m: usize) -> Option<MetricSet> {
    if !p.is_power_of_two() || !nodes.is_power_of_two() || !p.is_multiple_of(nodes) || nodes < 2 {
        return None;
    }
    let ell = (p / nodes) as u64;
    let n = nodes as u64;
    let pq = p as u64;
    let mb = m as u64;
    let lg = |x: u64| x.trailing_zeros() as u64;

    use Algorithm::*;
    let set = match algo {
        Naive => MetricSet {
            rc: lg(pq),
            sc: (pq - 1) * mb,
            re: 1,
            se: mb,
            rd: pq - 1,
            sd: (pq - 1) * mb,
        },
        ORing => MetricSet {
            rc: pq - 1,
            sc: (pq - 1) * mb,
            re: pq - 1,
            se: (pq - 1) * mb,
            rd: pq - 1,
            sd: (pq - 1) * mb,
        },
        ORd => MetricSet {
            rc: lg(pq),
            sc: (pq - 1) * mb,
            re: 1,
            se: ell * mb,
            rd: n - 1,
            sd: (pq - ell) * mb,
        },
        ORd2 => MetricSet {
            rc: lg(pq),
            sc: (pq - 1) * mb,
            re: lg(n),
            se: (pq - ell) * mb,
            rd: lg(n),
            sd: (pq - ell) * mb,
        },
        CRing => MetricSet {
            rc: n + ell - 2,
            sc: (pq - 1) * mb,
            re: 1,
            se: mb,
            rd: n - 1,
            sd: (n - 1) * mb,
        },
        CRd => MetricSet {
            rc: lg(pq),
            sc: (pq - 1) * mb,
            re: 1,
            se: mb,
            rd: n - 1,
            sd: (n - 1) * mb,
        },
        Hs1 => MetricSet {
            rc: lg(n),
            sc: (pq - ell) * mb,
            re: 1,
            se: ell * mb,
            rd: (n - 1).div_ceil(ell),
            sd: (n - 1).div_ceil(ell) * ell * mb,
        },
        Hs2 => MetricSet {
            rc: lg(n),
            sc: (pq - ell) * mb,
            re: 1,
            se: mb,
            rd: n - 1,
            sd: (n - 1) * mb,
        },
        _ => return None,
    };
    Some(set)
}

/// Analytic latency estimate for an encrypted algorithm:
/// `tc + te + td = (rc·α + sc·β) + (re·αe + se·βe) + (rd·αd + sd·βd)`,
/// the paper's Section IV-A upper-bound composition, priced with the
/// inter-node link (communication is dominated by the network).
///
/// Requires powers of two (it builds on [`predict`]). This is a *model*
/// estimate — coarser than the virtual-time simulator (no overlap, no NIC
/// contention, no shared-memory costs) — but cheap enough to drive online
/// algorithm selection.
pub fn predict_latency_us(
    algo: Algorithm,
    p: usize,
    nodes: usize,
    m: usize,
    model: &eag_netsim::CostModel,
) -> Option<f64> {
    let ms = predict(algo, p, nodes, m)?;
    let tc = ms.rc as f64 * model.inter.alpha_us + ms.sc as f64 / model.inter.bandwidth;
    let te = ms.re as f64 * model.crypto.enc_alpha_us + ms.se as f64 / model.crypto.enc_bandwidth;
    let td = ms.rd as f64 * model.crypto.dec_alpha_us + ms.sd as f64 / model.crypto.dec_bandwidth;
    Some(tc + te + td)
}

/// Picks the encrypted algorithm the cost model predicts to be fastest for
/// this configuration — the "best scheme" column of the paper's Tables
/// III–VI, decided analytically instead of by measurement. Falls back to
/// HS2 (the best large-message all-rounder) when `p`/`nodes` are not powers
/// of two and the closed forms do not apply.
pub fn recommend(p: usize, nodes: usize, m: usize, model: &eag_netsim::CostModel) -> Algorithm {
    Algorithm::encrypted_all()
        .iter()
        .copied()
        .filter(|&a| a != Algorithm::Naive)
        .filter_map(|a| predict_latency_us(a, p, nodes, m, model).map(|t| (a, t)))
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .map(|(a, _)| a)
        .unwrap_or(Algorithm::Hs2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bounds_match_table_1() {
        // p = 128, N = 8, ℓ = 16, m = 1024.
        let b = lower_bounds(128, 8, 1024);
        assert_eq!(b.rc, 7);
        assert_eq!(b.sc, 127 * 1024);
        assert_eq!(b.re, 1);
        assert_eq!(b.se, 1024);
        // ceil(lg 8 / lg 17) = ceil(3 / 4.09) = 1.
        assert_eq!(b.rd, 1);
        assert_eq!(b.sd, 7 * 1024);
    }

    #[test]
    fn rd_bound_grows_with_n_for_fixed_ell() {
        // ℓ = 1: rd >= lg N.
        let b = lower_bounds(16, 16, 8);
        assert_eq!(b.rd, 4);
        // ℓ >= N: one round suffices.
        let b = lower_bounds(64, 4, 8);
        assert_eq!(b.rd, 1);
    }

    #[test]
    fn predictions_meet_or_exceed_bounds() {
        for &(p, nodes) in &[(16usize, 4usize), (128, 8), (64, 16), (1024, 16)] {
            let m = 256;
            let lb = lower_bounds(p, nodes, m);
            for &algo in Algorithm::encrypted_all() {
                // O-Bruck is an extension with no Table II closed form.
                let Some(pr) = predict(algo, p, nodes, m) else {
                    continue;
                };
                assert!(
                    pr.rc >= lb.rc || matches!(algo, Algorithm::Hs1 | Algorithm::Hs2),
                    "{algo}: rc {} < bound {}",
                    pr.rc,
                    lb.rc
                );
                assert!(pr.re >= lb.re, "{algo}");
                assert!(pr.se >= lb.se, "{algo}");
                assert!(pr.rd >= lb.rd, "{algo}: rd {} < {}", pr.rd, lb.rd);
                assert!(pr.sd >= lb.sd, "{algo}");
            }
        }
    }

    #[test]
    fn concurrent_algorithms_meet_the_sd_bound() {
        let (p, nodes, m) = (128, 8, 1 << 20);
        let lb = lower_bounds(p, nodes, m);
        for algo in [Algorithm::CRing, Algorithm::CRd, Algorithm::Hs2] {
            assert_eq!(predict(algo, p, nodes, m).unwrap().sd, lb.sd, "{algo}");
        }
    }

    #[test]
    fn naive_is_ell_times_worse_on_sd() {
        let (p, nodes, m) = (128, 8, 1024);
        let naive = predict(Algorithm::Naive, p, nodes, m).unwrap();
        let cring = predict(Algorithm::CRing, p, nodes, m).unwrap();
        // (p−1)m vs (N−1)m: a factor ≈ ℓ.
        assert!(naive.sd / cring.sd >= (p / nodes - 2) as u64);
    }

    #[test]
    fn predict_requires_powers_of_two() {
        assert!(predict(Algorithm::CRing, 91, 7, 8).is_none());
        assert!(predict(Algorithm::CRing, 128, 8, 8).is_some());
        assert!(predict(Algorithm::Ring, 128, 8, 8).is_none());
    }

    #[test]
    fn recommend_matches_the_papers_size_bands() {
        let model = eag_netsim::profile::by_name("noleland").unwrap().model;
        // Small messages: a round-efficient scheme (the paper's Tables
        // III/VI small rows are won by O-RD, O-RD2, HS1).
        let small = recommend(128, 8, 4, &model);
        assert!(
            matches!(
                small,
                Algorithm::ORd | Algorithm::ORd2 | Algorithm::Hs1 | Algorithm::CRd
            ),
            "small-message pick: {small}"
        );
        // Large messages: a decryption-bound-meeting scheme (paper: HS2,
        // C-Ring, C-RD).
        let large = recommend(128, 8, 2 * 1024 * 1024, &model);
        assert!(
            matches!(
                large,
                Algorithm::Hs2 | Algorithm::CRing | Algorithm::CRd | Algorithm::Hs1
            ),
            "large-message pick: {large}"
        );
        // Naive is never recommended.
        for m in [1usize, 1024, 1 << 20] {
            assert_ne!(recommend(128, 8, m, &model), Algorithm::Naive);
        }
    }

    #[test]
    fn recommend_falls_back_for_general_shapes() {
        let model = eag_netsim::profile::by_name("noleland").unwrap().model;
        assert_eq!(recommend(91, 7, 1024, &model), Algorithm::Hs2);
    }

    #[test]
    fn predicted_latency_is_monotone_in_size() {
        let model = eag_netsim::profile::by_name("noleland").unwrap().model;
        for &algo in Algorithm::encrypted_all() {
            let Some(a) = predict_latency_us(algo, 128, 8, 64, &model) else {
                continue;
            };
            let b = predict_latency_us(algo, 128, 8, 64 * 1024, &model).unwrap();
            assert!(b > a, "{algo}");
        }
    }

    #[test]
    fn hs1_prediction_for_big_n_small_ell() {
        // N = 8, ℓ = 2: rd = ⌈7/2⌉ = 4, sd = 4·2m = 8m = max{N,ℓ}m.
        let pr = predict(Algorithm::Hs1, 16, 8, 10).unwrap();
        assert_eq!(pr.rd, 4);
        assert_eq!(pr.sd, 80);
    }
}
