//! Sub-communicator all-gathers: run an encrypted all-gather over an
//! arbitrary subset of ranks (an MPI sub-communicator), not just
//! `MPI_COMM_WORLD`.
//!
//! **Extension beyond the paper**, which evaluates world-sized collectives
//! only — but real applications routinely all-gather over row/column
//! communicators of a process grid. The group versions reuse the same
//! algorithm kernels (`o_ring_over`, `o_rd_over`, `o_bruck_over`, and the
//! generic item movers); the opportunistic encryption rule keys off the
//! *physical* node placement of the group members, so a group that happens
//! to be node-local pays no encryption at all.

use crate::algorithm::Algorithm;
use crate::collective::{bruck_allgather_items, rd_allgather_items, ring_allgather_items};
use crate::encrypted::{o_bruck_over, o_rd_over, o_ring_over, OrdVariant};
use crate::output::GatherOutput;
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Item, ProcCtx};

impl Algorithm {
    /// True when this algorithm can run over an arbitrary rank subset.
    /// The shared-memory algorithms (HS1/HS2 and counterparts) assume whole
    /// nodes participate; the Concurrent family assumes the full ℓ-group
    /// structure; the remaining algorithms only need the member list.
    pub fn supports_groups(&self) -> bool {
        use Algorithm::*;
        matches!(
            self,
            Ring | RingRanked | Rd | Bruck | Naive | ORing | ORd | ORd2 | OBruck
        )
    }
}

/// An ordered set of participating ranks — a sub-communicator by value.
///
/// Ranks keep their *global* identities (so physical node placement, and
/// with it the opportunistic encryption rule, is preserved); a member's
/// contiguous "new rank" is its position in the sorted member list. This
/// makes [`Group::shrink`] deterministic: every survivor that agrees on the
/// same failed set derives the identical shrunk group, renumbering, and
/// node mapping without any further communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<Rank>,
}

impl Group {
    /// The full world of `p` ranks.
    pub fn world(p: usize) -> Self {
        Group {
            members: (0..p).collect(),
        }
    }

    /// A group of the given ranks (sorted and deduplicated).
    pub fn new(members: &[Rank]) -> Self {
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        Group { members }
    }

    /// The member ranks, ascending.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `rank` is a member.
    pub fn contains(&self, rank: Rank) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// The contiguous position (the "new rank") of a global rank within
    /// this group, if it is a member.
    pub fn position_of(&self, rank: Rank) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// The group with `failed` removed. Order (and hence the renumbering)
    /// is preserved for the survivors — deterministic at every caller that
    /// holds the same failed set.
    pub fn shrink(&self, failed: &[Rank]) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|r| !failed.contains(r))
                .collect(),
        }
    }
}

/// Runs `algo` as an all-gather of `m`-byte blocks among `members` only.
///
/// Every member must call with the identical `members` list (like an MPI
/// sub-communicator); non-members must not call. The returned output has
/// one slot per *member position* — `GatherOutput::get(r)` is keyed by the
/// global rank as usual, and exactly the member ranks are filled.
pub fn allgather_group(
    ctx: &mut ProcCtx,
    algo: Algorithm,
    members: &[Rank],
    m: usize,
) -> GatherOutput {
    assert!(
        algo.supports_groups(),
        "{algo} does not support sub-communicator groups"
    );
    assert!(
        members.contains(&ctx.rank()),
        "calling rank {} is not in the group",
        ctx.rank()
    );
    ctx.begin_collective();

    let mut out = GatherOutput::new_sparse(ctx.p(), members, m);
    let my_chunk = ctx.my_block(m);

    use Algorithm::*;
    match algo {
        Ring => {
            let items =
                ring_allgather_items(ctx, members, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        RingRanked => {
            // Order members so same-node members are consecutive.
            let topo = ctx.topology().clone();
            let mut ordered = members.to_vec();
            ordered.sort_by_key(|&r| (topo.node_of(r), r));
            let items =
                ring_allgather_items(ctx, &ordered, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        Rd => {
            let items =
                rd_allgather_items(ctx, members, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        Bruck => {
            let items =
                bruck_allgather_items(ctx, members, Item::Plain(my_chunk), tags::PHASE_MAIN);
            out.place_items(items);
        }
        Naive => {
            out.place(my_chunk.clone());
            let sealed = Item::Sealed(ctx.encrypt(my_chunk));
            let items = if m < ctx.mvapich_switch_bytes() {
                bruck_allgather_items(ctx, members, sealed, tags::PHASE_MAIN)
            } else {
                ring_allgather_items(ctx, members, vec![sealed], tags::PHASE_MAIN)
            };
            for item in items {
                let s = item.into_sealed();
                if s.origins.iter().all(|&o| out.has(o)) {
                    continue;
                }
                let c = ctx.decrypt(s);
                out.place(c);
            }
        }
        ORing => o_ring_over(ctx, members, my_chunk, &mut out, tags::PHASE_MAIN),
        ORd => o_rd_over(
            ctx,
            members,
            my_chunk,
            &mut out,
            OrdVariant::ForwardSealed,
            tags::PHASE_MAIN,
        ),
        ORd2 => o_rd_over(
            ctx,
            members,
            my_chunk,
            &mut out,
            OrdVariant::MergeRecrypt,
            tags::PHASE_MAIN,
        ),
        OBruck => o_bruck_over(ctx, members, my_chunk, &mut out, tags::PHASE_MAIN),
        _ => unreachable!("supports_groups() vetted above"),
    }
    for &r in members {
        assert!(out.has(r), "{algo} left member {r} unfilled");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};
    use proptest::prelude::*;

    const SEED: u64 = 0x6A0;

    fn world(p: usize, nodes: usize) -> WorldSpec {
        let mut s = WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::free(),
            DataMode::Real { seed: SEED },
        );
        s.capture_wire = true;
        s
    }

    fn group_algorithms() -> Vec<Algorithm> {
        Algorithm::all()
            .iter()
            .copied()
            .filter(Algorithm::supports_groups)
            .collect()
    }

    #[test]
    fn shrink_renumbers_deterministically() {
        let g = Group::world(8);
        assert_eq!(g.len(), 8);
        assert!(g.contains(7));
        let s = g.shrink(&[2, 5]);
        assert_eq!(s.members(), &[0, 1, 3, 4, 6, 7]);
        assert_eq!(s.position_of(3), Some(2));
        assert_eq!(s.position_of(5), None);
        assert!(!s.contains(5));
        // Shrinking is order-insensitive in the failed set and idempotent.
        assert_eq!(g.shrink(&[5, 2]), s);
        assert_eq!(s.shrink(&[2, 5]), s);
        // Unsorted, duplicated input normalizes.
        assert_eq!(Group::new(&[4, 1, 4, 0]).members(), &[0, 1, 4]);
        assert!(Group::new(&[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 256,
            ..ProptestConfig::default()
        })]

        /// Shrinking composes: removing the union of two failed sets in one
        /// step reaches the same group — members, order, and renumbering —
        /// as removing them sequentially, in either order. This is the
        /// property the multi-crash recovery engine leans on: epoch-`e`
        /// failures are applied by *global* rank on top of epoch-`e-1`'s
        /// shrunk group, and every survivor that agrees on the same sets
        /// must derive the identical final communicator without talking.
        #[test]
        fn shrink_composes_over_arbitrary_failed_sets(
            base in proptest::collection::vec(0usize..64, 1..32),
            a in proptest::collection::vec(0usize..64, 0..16),
            b in proptest::collection::vec(0usize..64, 0..16),
        ) {
            let g = Group::new(&base);
            let mut a: Vec<Rank> = a;
            a.sort_unstable();
            a.dedup();

            // Disjoint failed sets — the common cascading-crash shape.
            let mut b_disjoint: Vec<Rank> =
                b.iter().copied().filter(|r| !a.contains(r)).collect();
            b_disjoint.sort_unstable();
            b_disjoint.dedup();
            let mut union: Vec<Rank> = a.clone();
            union.extend(&b_disjoint);
            let combined = g.shrink(&union);
            prop_assert_eq!(&g.shrink(&a).shrink(&b_disjoint), &combined);
            prop_assert_eq!(&g.shrink(&b_disjoint).shrink(&a), &combined);

            // Overlapping sets compose too (re-suspecting an already-agreed
            // -dead rank is idempotent), and survivor renumbering matches.
            let b_any: Vec<Rank> = b;
            let mut overlap_union = a.clone();
            overlap_union.extend(&b_any);
            let seq = g.shrink(&a).shrink(&b_any);
            prop_assert_eq!(&seq, &g.shrink(&overlap_union));
            for (pos, &r) in seq.members().iter().enumerate() {
                prop_assert_eq!(seq.position_of(r), Some(pos));
                prop_assert!(g.contains(r));
                prop_assert!(!overlap_union.contains(&r));
            }
        }
    }

    #[test]
    fn group_allgather_over_scattered_members() {
        // Members straddle three nodes, with gaps and unordered ranks.
        let members: Vec<Rank> = vec![10, 1, 4, 7, 2];
        for algo in group_algorithms() {
            let members2 = members.clone();
            let report = run(&world(12, 3), move |ctx| {
                if members2.contains(&ctx.rank()) {
                    let out = allgather_group(ctx, algo, &members2, 48);
                    out.verify_members(SEED, &members2);
                }
            });
            if algo.is_encrypted() {
                assert!(
                    !report.wiretap.saw_plaintext_frame(),
                    "{algo}: leaked plaintext in group collective"
                );
            }
        }
    }

    #[test]
    fn node_local_group_needs_no_encryption() {
        // A group entirely on node 0: the opportunistic algorithms must not
        // encrypt anything.
        let members: Vec<Rank> = vec![0, 1, 2, 3];
        for algo in [Algorithm::ORing, Algorithm::ORd, Algorithm::OBruck] {
            let members2 = members.clone();
            let report = run(&world(12, 3), move |ctx| {
                if members2.contains(&ctx.rank()) {
                    allgather_group(ctx, algo, &members2, 32).verify_members(SEED, &members2);
                }
            });
            let sum = eag_runtime::Metrics::component_sum(&report.metrics);
            assert_eq!(sum.enc_rounds, 0, "{algo} encrypted intra-node data");
            assert_eq!(sum.dec_rounds, 0, "{algo}");
        }
    }

    #[test]
    fn row_and_column_groups_of_a_grid() {
        // A 4x3 process grid on 3 nodes: every rank joins one row group and
        // one column group, sequentially.
        let (rows, cols) = (4usize, 3usize);
        let p = rows * cols;
        let report = run(&world(p, 3), move |ctx| {
            let me = ctx.rank();
            let my_row: Vec<Rank> = (0..cols).map(|c| (me / cols) * cols + c).collect();
            let my_col: Vec<Rank> = (0..rows).map(|r| r * cols + me % cols).collect();
            allgather_group(ctx, Algorithm::ORd, &my_row, 16).verify_members(SEED, &my_row);
            allgather_group(ctx, Algorithm::OBruck, &my_col, 16).verify_members(SEED, &my_col);
        });
        assert!(!report.wiretap.saw_plaintext_frame());
    }

    #[test]
    #[should_panic(expected = "not in the group")]
    fn non_member_call_is_rejected() {
        run(&world(4, 2), |ctx| {
            let members = vec![0, 1];
            if ctx.rank() == 3 {
                let _ = allgather_group(ctx, Algorithm::Ring, &members, 8);
            }
        });
    }

    #[test]
    #[should_panic(expected = "does not support sub-communicator")]
    fn unsupported_algorithm_is_rejected() {
        run(&world(4, 2), |ctx| {
            if ctx.rank() == 0 {
                let _ = allgather_group(ctx, Algorithm::Hs1, &[0], 8);
            }
        });
    }
}
