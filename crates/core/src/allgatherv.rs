//! Encrypted MPI_Allgatherv — variable per-rank block sizes.
//!
//! **Extension beyond the paper**, which only treats equal blocks. Real
//! applications frequently call `MPI_Allgatherv` (boundary layers of uneven
//! domain decompositions, sparse structures). The algorithms that move
//! blocks as indivisible single-origin items generalize directly:
//!
//! - Ring / rank-ordered Ring / Bruck (unencrypted baselines),
//! - Naive, O-Ring, O-Bruck, C-Ring, HS2 (encrypted).
//!
//! The merged-ciphertext algorithms (O-RD, O-RD2, HS1) rely on equal-stride
//! node buffers and are not offered here; [`Algorithm::supports_varying`]
//! reports capability. As in MPI, every rank must pass the same `lens`
//! (the receive-count vector is global knowledge).

use crate::algorithm::Algorithm;
use crate::collective::{bruck_allgather_items, recover_collective, ring_allgather_items};
use crate::encrypted::{hs_v, o_bruck_over, o_ring_over, HsVariant};
use crate::output::{DegradedOutput, GatherOutput};
use crate::tags;
use eag_netsim::Rank;
use eag_runtime::{Item, ProcCtx};

impl Algorithm {
    /// True when this algorithm supports variable per-rank block lengths.
    pub fn supports_varying(&self) -> bool {
        use Algorithm::*;
        matches!(
            self,
            Ring | RingRanked | Bruck | Naive | ORing | OBruck | CRing | Hs2
        )
    }
}

/// Runs `algo` as an all-gather-v: rank `r` contributes `lens[r]` bytes.
/// Panics if [`Algorithm::supports_varying`] is false for `algo`.
pub fn allgatherv(ctx: &mut ProcCtx, algo: Algorithm, lens: &[usize]) -> GatherOutput {
    assert_eq!(lens.len(), ctx.p(), "need one length per rank");
    assert!(
        algo.supports_varying(),
        "{algo} does not support variable block lengths"
    );
    ctx.begin_collective();

    let me = ctx.rank();
    let members: Vec<Rank> = (0..ctx.p()).collect();
    let my_chunk = ctx.my_block(lens[me]);
    let mut out = GatherOutput::new_varying(lens.to_vec());

    use Algorithm::*;
    match algo {
        Ring => {
            let items =
                ring_allgather_items(ctx, &members, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        RingRanked => {
            let order = ctx.topology().ring_order();
            let items =
                ring_allgather_items(ctx, &order, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        Bruck => {
            let items =
                bruck_allgather_items(ctx, &members, Item::Plain(my_chunk), tags::PHASE_MAIN);
            out.place_items(items);
        }
        Naive => {
            out.place(my_chunk.clone());
            let sealed = Item::Sealed(ctx.encrypt(my_chunk));
            // Selection mirrors the uniform path, keyed on the largest block.
            let max_len = lens.iter().copied().max().unwrap_or(0);
            let items = if max_len < ctx.mvapich_switch_bytes() {
                bruck_allgather_items(ctx, &members, sealed, tags::PHASE_MAIN)
            } else {
                ring_allgather_items(ctx, &members, vec![sealed], tags::PHASE_MAIN)
            };
            for item in items {
                let s = item.into_sealed();
                if s.origins.iter().all(|&o| out.has(o)) {
                    continue;
                }
                let c = ctx.decrypt(s);
                out.place(c);
            }
        }
        ORing => o_ring_over(ctx, &members, my_chunk, &mut out, tags::PHASE_MAIN),
        OBruck => o_bruck_over(ctx, &members, my_chunk, &mut out, tags::PHASE_MAIN),
        CRing => {
            let topo = ctx.topology().clone();
            let group = topo.local_index(me);
            let group_members: Vec<Rank> = (0..topo.nodes())
                .map(|node| topo.peer_on_node(topo.leader_of(node), group))
                .collect();
            o_ring_over(ctx, &group_members, my_chunk, &mut out, tags::PHASE_SUB);
            let local = topo.ranks_on_node(topo.node_of(me));
            if local.len() > 1 {
                // Contribute the group's blocks as individual items (no
                // merging — lengths vary).
                let contribution: Vec<Item> = group_members
                    .iter()
                    .map(|&r| Item::Plain(out.get(r).expect("sub-gather incomplete").clone()))
                    .collect();
                let items = ring_allgather_items(ctx, &local, contribution, tags::PHASE_LOCAL);
                out.place_items(items);
            }
        }
        Hs2 => {
            out = hs_v(ctx, lens, HsVariant::Hs2);
        }
        _ => unreachable!("supports_varying() vetted above"),
    }
    assert!(out.is_complete(), "{algo} left the all-gather-v incomplete");
    out
}

/// Runs `algo` as an all-gather-v among `members` only: member `r`
/// contributes `lens[r]` bytes (`lens` stays indexed by *global* rank, as
/// everywhere else). Requires an algorithm in the intersection of
/// [`Algorithm::supports_groups`] and [`Algorithm::supports_varying`]:
/// Ring, rank-ordered Ring, Bruck, Naive, O-Ring, O-Bruck.
pub fn allgatherv_group(
    ctx: &mut ProcCtx,
    algo: Algorithm,
    lens: &[usize],
    members: &[Rank],
) -> GatherOutput {
    assert_eq!(lens.len(), ctx.p(), "need one length per rank");
    assert!(
        algo.supports_groups() && algo.supports_varying(),
        "{algo} does not support variable-length sub-communicator groups"
    );
    assert!(
        members.contains(&ctx.rank()),
        "calling rank {} is not in the group",
        ctx.rank()
    );
    ctx.begin_collective();

    let me = ctx.rank();
    let my_chunk = ctx.my_block(lens[me]);
    let mut out = GatherOutput::new_varying_sparse(lens.to_vec(), members);

    use Algorithm::*;
    match algo {
        Ring => {
            let items =
                ring_allgather_items(ctx, members, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        RingRanked => {
            let topo = ctx.topology().clone();
            let mut ordered = members.to_vec();
            ordered.sort_by_key(|&r| (topo.node_of(r), r));
            let items =
                ring_allgather_items(ctx, &ordered, vec![Item::Plain(my_chunk)], tags::PHASE_MAIN);
            out.place_items(items);
        }
        Bruck => {
            let items =
                bruck_allgather_items(ctx, members, Item::Plain(my_chunk), tags::PHASE_MAIN);
            out.place_items(items);
        }
        Naive => {
            out.place(my_chunk.clone());
            let sealed = Item::Sealed(ctx.encrypt(my_chunk));
            let max_len = members.iter().map(|&r| lens[r]).max().unwrap_or(0);
            let items = if max_len < ctx.mvapich_switch_bytes() {
                bruck_allgather_items(ctx, members, sealed, tags::PHASE_MAIN)
            } else {
                ring_allgather_items(ctx, members, vec![sealed], tags::PHASE_MAIN)
            };
            for item in items {
                let s = item.into_sealed();
                if s.origins.iter().all(|&o| out.has(o)) {
                    continue;
                }
                let c = ctx.decrypt(s);
                out.place(c);
            }
        }
        ORing => o_ring_over(ctx, members, my_chunk, &mut out, tags::PHASE_MAIN),
        OBruck => o_bruck_over(ctx, members, my_chunk, &mut out, tags::PHASE_MAIN),
        _ => unreachable!("capability vetted above"),
    }
    for &r in members {
        assert!(out.has(r), "{algo} left member {r} unfilled");
    }
    out
}

/// [`allgatherv`] under the crash-recovery engine: run the variable-length
/// all-gather, and on crashes agree on the failed set and re-run over the
/// survivor group — with the original per-rank lengths, so the degraded
/// output is byte-identical to a from-scratch group run. The re-run uses
/// `algo` itself when it is group- and varying-capable, O-Ring otherwise.
pub fn recover_allgatherv(ctx: &mut ProcCtx, algo: Algorithm, lens: &[usize]) -> DegradedOutput {
    let rerun_algo = if algo.supports_groups() && algo.supports_varying() {
        algo
    } else {
        Algorithm::ORing
    };
    recover_collective(
        ctx,
        |ctx| allgatherv(ctx, algo, lens),
        |ctx, members| allgatherv_group(ctx, rerun_algo, lens, members),
    )
}
