//! # eag-core — encrypted all-gather algorithms
//!
//! A reproduction of *"Efficient Algorithms for Encrypted All-gather
//! Operation"* (IPDPS 2021): all-gather collectives whose inter-node traffic
//! is AES-128-GCM encrypted, designed to meet the paper's lower bounds on
//! communication, encryption, and decryption cost.
//!
//! ## Algorithms
//!
//! Unencrypted baselines ([`unencrypted`]): Ring, rank-ordered Ring,
//! Recursive Doubling (any p), Bruck, Hierarchical, and the modeled MVAPICH
//! default — plus the unencrypted counterparts of the new algorithms
//! (in [`encrypted`], with encryption switched off).
//!
//! Encrypted algorithms ([`encrypted`]): Naive, O-Ring, O-RD, O-RD2,
//! C-Ring, C-RD, HS1, HS2 — the full Table II column set.
//!
//! ## Entry point
//!
//! ```
//! use eag_core::{allgather, Algorithm};
//! use eag_netsim::{profile, Mapping, Topology};
//! use eag_runtime::{run, DataMode, WorldSpec};
//!
//! let spec = WorldSpec::new(
//!     Topology::new(8, 2, Mapping::Block),
//!     profile::noleland(),
//!     DataMode::Real { seed: 7 },
//! );
//! let report = run(&spec, |ctx| {
//!     let out = allgather(ctx, Algorithm::Hs2, 1024);
//!     out.verify(7); // every rank got every block, bit-exact
//! });
//! assert!(report.latency_us > 0.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod algorithm;
pub mod allgatherv;
pub mod bounds;
pub mod collective;
pub mod encrypted;
pub mod group;
pub mod operation;
pub mod output;
pub mod unencrypted;

pub use algorithm::{allgather, Algorithm};
pub use allgatherv::{allgatherv, allgatherv_group, recover_allgatherv};
pub use bounds::{
    lower_bounds, lower_bounds_op, predict, predict_latency_us, recommend, try_lower_bounds,
    BoundsError, MetricSet,
};
pub use collective::{recover_allgather, recover_collective};
pub use eag_runtime::CipherSuite;
pub use group::{allgather_group, Group};
pub use operation::{
    varying_lens, AlltoallAlgo, BcastAlgo, Collective, Operation, RootedAlgo,
};
pub use output::{DegradedOutput, GatherOutput};

/// Tag-space layout: every phase of every algorithm draws its message tags
/// (and shared-memory slot keys) from a distinct base so that concurrent
/// phases can never alias.
pub mod tags {
    /// Main all-gather exchange.
    pub const PHASE_MAIN: u64 = 1 << 20;
    /// Intra-node gather (hierarchical baseline).
    pub const PHASE_GATHER: u64 = 2 << 20;
    /// Intra-node broadcast (hierarchical baseline).
    pub const PHASE_BCAST: u64 = 3 << 20;
    /// Concurrent sub-all-gathers.
    pub const PHASE_SUB: u64 = 4 << 20;
    /// Node-local all-gather (Concurrent phase 2).
    pub const PHASE_LOCAL: u64 = 5 << 20;
    /// Shared-memory slots: per-process input blocks.
    pub const SLOT_GATHER: u64 = 10 << 20;
    /// Shared-memory slots: own-node ciphertexts (HS2 step 1).
    pub const SLOT_CIPHER_IN: u64 = 11 << 20;
    /// Shared-memory slots: foreign ciphertexts awaiting decryption.
    pub const SLOT_CIPHER_FOREIGN: u64 = 12 << 20;
    /// Shared-memory slots: jointly decrypted plaintexts.
    pub const SLOT_PLAIN_OUT: u64 = 13 << 20;
    /// Survivor agreement on the failed-rank set (crash recovery; the
    /// flooded-consensus round number is added to the base).
    pub const PHASE_AGREE: u64 = 14 << 20;
    /// Scatter tree/linear exchange (scatter and scatterv).
    pub const PHASE_SCATTER: u64 = 15 << 20;
    /// All-to-all exchange (pairwise and Bruck variants).
    pub const PHASE_A2A: u64 = 16 << 20;
    /// Sealed length-exchange prologue of the irregular collectives.
    pub const PHASE_LEN_XCHG: u64 = 17 << 20;
}
