//! Collective output assembly and verification.
//!
//! [`GatherOutput`] is the single output container for every collective in
//! the suite: a per-rank slot array with an *expected* mask. All-gather
//! expects every slot at every rank; broadcast expects only the root's slot
//! (at every rank); gather expects everything at the root and nothing
//! elsewhere; scatter expects only the caller's own slot; all-to-all
//! expects every slot, but filled with pair-keyed blocks verified by
//! [`GatherOutput::verify_pairwise`].

use eag_runtime::{pattern_block, pattern_block_pair, Chunk, Data, Item};

/// The assembled result of an all-gather at one process: one block per rank.
///
/// Supports both the uniform MPI_Allgather case (every rank contributes
/// `m` bytes) and the MPI_Allgatherv case (per-rank lengths).
#[derive(Debug, Clone)]
pub struct GatherOutput {
    lens: Vec<usize>,
    uniform: Option<usize>,
    blocks: Vec<Option<Chunk>>,
    /// Which rank slots this collective is expected to fill (all of them
    /// for world collectives; the member set for group collectives).
    expected: Vec<bool>,
}

impl GatherOutput {
    /// An empty output buffer for `p` blocks of `block_len` bytes.
    pub fn new(p: usize, block_len: usize) -> Self {
        GatherOutput {
            lens: vec![block_len; p],
            uniform: Some(block_len),
            blocks: vec![None; p],
            expected: vec![true; p],
        }
    }

    /// An output buffer for a sub-communicator collective: only `members`
    /// (global ranks) are expected to be filled, each with `block_len`
    /// bytes.
    pub fn new_sparse(p: usize, members: &[usize], block_len: usize) -> Self {
        let mut expected = vec![false; p];
        for &r in members {
            assert!(r < p, "member rank {r} out of range");
            expected[r] = true;
        }
        GatherOutput {
            lens: vec![block_len; p],
            uniform: Some(block_len),
            blocks: vec![None; p],
            expected,
        }
    }

    /// An empty output buffer with per-rank block lengths (all-gather-v).
    pub fn new_varying(lens: Vec<usize>) -> Self {
        let uniform = match lens.first() {
            Some(&first) if lens.iter().all(|&l| l == first) => Some(first),
            _ => None,
        };
        let blocks = vec![None; lens.len()];
        let expected = vec![true; lens.len()];
        GatherOutput {
            lens,
            uniform,
            blocks,
            expected,
        }
    }

    /// A varying-length output buffer where only `members` (global ranks)
    /// are expected — the allgatherv shape after a shrink-and-recover.
    /// `lens` stays indexed by *global* rank.
    pub fn new_varying_sparse(lens: Vec<usize>, members: &[usize]) -> Self {
        let mut out = Self::new_varying(lens);
        out.expected = vec![false; out.blocks.len()];
        for &r in members {
            assert!(r < out.blocks.len(), "member rank {r} out of range");
            out.expected[r] = true;
        }
        out
    }

    /// Per-rank block length (uniform collectives only).
    ///
    /// Panics for varying-length outputs; use [`GatherOutput::len_of`].
    pub fn block_len(&self) -> usize {
        self.uniform
            .expect("block_len() is only defined for uniform all-gathers")
    }

    /// The expected block length of `origin`.
    pub fn len_of(&self, origin: usize) -> usize {
        self.lens[origin]
    }

    /// Number of rank slots.
    pub fn p(&self) -> usize {
        self.blocks.len()
    }

    /// Places a (possibly multi-origin) plaintext chunk. Chunks covering
    /// already-placed origins must carry identical data (this tolerates the
    /// benign duplicates of the general recursive-doubling fix-up steps).
    pub fn place(&mut self, chunk: Chunk) {
        chunk.check();
        let singles = if chunk.origins.len() == 1 {
            vec![chunk]
        } else {
            chunk.split()
        };
        for single in singles {
            let origin = single.origins[0];
            assert!(origin < self.blocks.len(), "origin {origin} out of range");
            assert_eq!(
                single.data.len(),
                self.lens[origin],
                "block for origin {origin} has the wrong length"
            );
            match &self.blocks[origin] {
                Some(existing) => {
                    assert_eq!(
                        existing, &single,
                        "conflicting data placed for origin {origin}"
                    );
                }
                None => self.blocks[origin] = Some(single),
            }
        }
    }

    /// Places every plaintext item in `items`; panics on sealed items.
    pub fn place_items(&mut self, items: Vec<Item>) {
        for item in items {
            self.place(item.into_plain());
        }
    }

    /// Expected origins still missing.
    pub fn missing(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .zip(self.expected.iter())
            .enumerate()
            .filter_map(|(i, (b, &exp))| (exp && b.is_none()).then_some(i))
            .collect()
    }

    /// True once every expected rank's block is present.
    pub fn is_complete(&self) -> bool {
        self.missing().is_empty()
    }

    /// True if the block for `origin` is already present.
    pub fn has(&self, origin: usize) -> bool {
        self.blocks[origin].is_some()
    }

    /// The block placed for `origin`, if any.
    pub fn get(&self, origin: usize) -> Option<&Chunk> {
        self.blocks[origin].as_ref()
    }

    /// Panics unless complete; returns the blocks ordered by rank
    /// (world collectives only — every slot must be expected).
    pub fn into_blocks(self) -> Vec<Chunk> {
        assert!(
            self.expected.iter().all(|&e| e),
            "into_blocks() requires a world collective; use get() for groups"
        );
        let missing = self.missing();
        assert!(
            missing.is_empty(),
            "all-gather incomplete: missing origins {missing:?}"
        );
        self.blocks.into_iter().map(Option::unwrap).collect()
    }

    /// Verifies a completed real-mode output against the deterministic input
    /// patterns (each rank's block must equal `pattern_block(seed, rank, m)`).
    /// For phantom outputs, verifies lengths only.
    pub fn verify(&self, seed: u64) {
        let missing = self.missing();
        assert!(
            missing.is_empty(),
            "all-gather incomplete: missing origins {missing:?}"
        );
        for (rank, block) in self
            .blocks
            .iter()
            .enumerate()
            .filter(|&(r, _)| self.expected[r])
        {
            let chunk = block.as_ref().unwrap();
            assert_eq!(chunk.data.len(), self.lens[rank]);
            if let Data::Real(bytes) = &chunk.data {
                let expect = pattern_block(seed, rank, self.lens[rank]);
                assert_eq!(bytes, &expect, "rank {rank}'s block corrupted in transit");
            }
        }
    }
    /// Verifies a completed group collective: exactly `members` are filled
    /// (bit-exact, like [`GatherOutput::verify`]) and no other slot is.
    pub fn verify_members(&self, seed: u64, members: &[usize]) {
        self.verify(seed);
        for (r, block) in self.blocks.iter().enumerate() {
            let should = members.contains(&r);
            assert_eq!(
                block.is_some(),
                should,
                "rank {r}: filled = {}, member = {should}",
                block.is_some()
            );
        }
    }

    /// Verifies a completed *personalized* output at rank `dst` (all-to-all):
    /// every expected slot `src` must hold `pattern_block_pair(seed, src,
    /// dst, len)`. Phantom outputs verify lengths only.
    pub fn verify_pairwise(&self, seed: u64, dst: usize) {
        let missing = self.missing();
        assert!(
            missing.is_empty(),
            "all-to-all incomplete at rank {dst}: missing sources {missing:?}"
        );
        for (src, block) in self
            .blocks
            .iter()
            .enumerate()
            .filter(|&(r, _)| self.expected[r])
        {
            let chunk = block.as_ref().unwrap();
            assert_eq!(chunk.data.len(), self.lens[src]);
            if let Data::Real(bytes) = &chunk.data {
                let expect = pattern_block_pair(seed, src, dst, self.lens[src]);
                assert_eq!(
                    bytes, &expect,
                    "block {src}->{dst} corrupted in transit"
                );
            }
        }
    }
}

/// The result of a crash-tolerant all-gather ([`crate::recover_allgather`]):
/// the blocks of every *surviving* source rank, plus the agreed set of
/// failed ranks whose blocks are permanently missing.
///
/// `failed` empty means the collective completed cleanly — the output is a
/// full all-gather result. Otherwise the output is the degraded re-run over
/// the shrunk survivor group: complete over survivors, empty at every
/// failed slot.
#[derive(Debug, Clone)]
pub struct DegradedOutput {
    /// The agreed failed ranks, ascending. Identical at every survivor.
    pub failed: Vec<usize>,
    /// Membership epochs consumed before the deciding agreement: 0 for a
    /// clean (or clean-confirmed) run, `e ≥ 1` when `e` recovery
    /// iterations ran. Protocol-lockstep, so identical at every survivor
    /// — it participates in [`DegradedOutput::canonical_bytes`] as a
    /// cross-survivor sanity check on the recovery engine itself.
    pub epochs: u64,
    /// The gathered blocks (sparse when `failed` is non-empty).
    pub output: GatherOutput,
}

impl DegradedOutput {
    /// True when no rank failed (the output is a complete all-gather).
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The surviving source ranks, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.output.p())
            .filter(|r| !self.failed.contains(r))
            .collect()
    }

    /// Verifies the degraded contract: every survivor's block is present
    /// and bit-exact against the deterministic input pattern, and every
    /// failed slot is empty.
    pub fn verify(&self, seed: u64) {
        self.output.verify_members(seed, &self.survivors());
    }

    /// A canonical byte encoding of the recovery *decision* alone — epochs
    /// consumed and the agreed failed set. For replicated collectives
    /// (all-gather, broadcast) survivors additionally agree on every block,
    /// so [`DegradedOutput::canonical_bytes`] applies; for rooted or
    /// personalized collectives (gather, scatter, all-to-all) each rank
    /// legitimately holds different payload, and cross-survivor identity is
    /// asserted on this header plus a per-role bit-exact payload check.
    pub fn canonical_header(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&self.epochs.to_le_bytes());
        bytes.extend_from_slice(&(self.failed.len() as u64).to_le_bytes());
        for &f in &self.failed {
            bytes.extend_from_slice(&(f as u64).to_le_bytes());
        }
        bytes
    }

    /// A canonical byte encoding of the failed set and every present block,
    /// for cross-survivor byte-identity checks: two survivors agree on the
    /// degraded result iff their encodings are equal.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = self.canonical_header();
        for r in 0..self.output.p() {
            match self.output.get(r) {
                Some(chunk) => {
                    bytes.extend_from_slice(&(r as u64).to_le_bytes());
                    match &chunk.data {
                        Data::Real(b) => {
                            bytes.extend_from_slice(&(b.len() as u64).to_le_bytes());
                            b.copy_into(&mut bytes);
                        }
                        Data::Phantom(len) => {
                            bytes.extend_from_slice(&(*len as u64).to_le_bytes());
                        }
                    }
                }
                None => bytes.extend_from_slice(&u64::MAX.to_le_bytes()),
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(origin: usize, bytes: Vec<u8>) -> Chunk {
        Chunk::single(origin, Data::Real(bytes.into()))
    }

    #[test]
    fn place_and_complete() {
        let mut out = GatherOutput::new(3, 2);
        out.place(chunk(0, vec![0, 1]));
        assert!(!out.is_complete());
        assert_eq!(out.missing(), vec![1, 2]);
        out.place(chunk(1, vec![2, 3]));
        out.place(chunk(2, vec![4, 5]));
        assert!(out.is_complete());
        let blocks = out.into_blocks();
        assert_eq!(blocks[2].data.to_vec(), vec![4, 5]);
    }

    #[test]
    fn multi_origin_chunks_are_split() {
        let mut out = GatherOutput::new(2, 2);
        let merged = Chunk {
            origins: vec![0, 1],
            block_len: 2,
            data: Data::Real(vec![9, 8, 7, 6].into()),
        };
        out.place(merged);
        assert!(out.is_complete());
        let blocks = out.into_blocks();
        assert_eq!(blocks[0].data.to_vec(), vec![9, 8]);
        assert_eq!(blocks[1].data.to_vec(), vec![7, 6]);
    }

    #[test]
    fn identical_duplicates_are_tolerated() {
        let mut out = GatherOutput::new(1, 2);
        out.place(chunk(0, vec![1, 2]));
        out.place(chunk(0, vec![1, 2]));
        assert!(out.is_complete());
    }

    #[test]
    #[should_panic(expected = "conflicting data")]
    fn conflicting_duplicates_panic() {
        let mut out = GatherOutput::new(1, 2);
        out.place(chunk(0, vec![1, 2]));
        out.place(chunk(0, vec![3, 4]));
    }

    #[test]
    fn verify_checks_patterns() {
        let seed = 11;
        let mut out = GatherOutput::new(2, 8);
        out.place(Chunk::single(
            0,
            Data::Real(pattern_block(seed, 0, 8).into()),
        ));
        out.place(Chunk::single(
            1,
            Data::Real(pattern_block(seed, 1, 8).into()),
        ));
        out.verify(seed);
    }

    #[test]
    #[should_panic(expected = "corrupted")]
    fn verify_rejects_wrong_bytes() {
        let mut out = GatherOutput::new(1, 8);
        out.place(Chunk::single(0, Data::Real(vec![0; 8].into())));
        out.verify(11);
    }

    #[test]
    fn degraded_output_contract() {
        let seed = 11;
        let mut out = GatherOutput::new_sparse(3, &[0, 2], 8);
        out.place(Chunk::single(
            0,
            Data::Real(pattern_block(seed, 0, 8).into()),
        ));
        out.place(Chunk::single(
            2,
            Data::Real(pattern_block(seed, 2, 8).into()),
        ));
        let d = DegradedOutput {
            failed: vec![1],
            epochs: 1,
            output: out,
        };
        assert!(!d.is_complete());
        assert_eq!(d.survivors(), vec![0, 2]);
        d.verify(seed);
        // Canonical bytes are a pure function of (epochs, failed, blocks):
        // a clone matches, a different failed set or epoch count does not.
        assert_eq!(d.canonical_bytes(), d.clone().canonical_bytes());
        let other = DegradedOutput {
            failed: vec![],
            epochs: 1,
            output: d.output.clone(),
        };
        assert_ne!(d.canonical_bytes(), other.canonical_bytes());
        let later_epoch = DegradedOutput {
            failed: d.failed.clone(),
            epochs: 2,
            output: d.output.clone(),
        };
        assert_ne!(d.canonical_bytes(), later_epoch.canonical_bytes());
    }

    #[test]
    fn phantom_blocks_verify_lengths_only() {
        let mut out = GatherOutput::new(2, 16);
        out.place(Chunk::single(0, Data::Phantom(16)));
        out.place(Chunk::single(1, Data::Phantom(16)));
        out.verify(0);
    }
}
