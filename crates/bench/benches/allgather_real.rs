//! Wall-clock benchmarks of the *real* runtime: threads, channels, actual
//! byte movement, actual AES-128-GCM — the whole encrypted collective at
//! laptop scale. Complements the virtual-time simulations that regenerate
//! the paper's tables.
//!
//! Measurement follows the OSU benchmark structure the paper uses: the
//! ranks stay up for the whole measurement and the collective runs in a
//! loop inside one world, so thread spawn/join cost stays out of the number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn world() -> WorldSpec {
    WorldSpec::new(
        Topology::new(16, 4, Mapping::Block),
        profile::free(), // wall time is the measurement; no virtual pricing
        DataMode::Real { seed: 9 },
    )
}

/// Runs `iters` collectives inside a single world and returns the loop's
/// wall time measured on rank 0 (all ranks run the same loop, as in OSU).
fn osu_loop(algo: Algorithm, m: usize, iters: u64) -> Duration {
    let spec = world();
    let report = run(&spec, move |ctx| {
        // Warmup.
        for _ in 0..2 {
            black_box(allgather(ctx, algo, m).is_complete());
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(allgather(ctx, algo, m).is_complete());
        }
        start.elapsed()
    });
    report.outputs[0]
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather_real_16x4");
    group.sample_size(10);
    for &m in &[1024usize, 64 * 1024] {
        group.throughput(Throughput::Bytes((16 * m) as u64));
        for algo in [
            Algorithm::Mvapich,
            Algorithm::Naive,
            Algorithm::ORd,
            Algorithm::CRing,
            Algorithm::Hs2,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), m), &m, |b, &m| {
                b.iter_custom(|iters| osu_loop(algo, m, iters))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
