//! Ablation study over the design choices DESIGN.md calls out. This is a
//! model-latency study (not wall time), so it uses a plain `main` and
//! prints comparison tables:
//!
//! 1. O-RD vs O-RD2 — per-source-block vs merged-recrypt ciphertexts.
//! 2. HS1 vs HS2 — leader-encrypts vs everyone-encrypts.
//! 3. C-Ring vs HS1 — concurrent streams vs single-leader traffic,
//!    with the NIC contention model on and off.
//! 4. Ring vs rank-ordered Ring under cyclic mapping.
//! 5. HS-ML multi-leader sweep: k leaders per node from 1 (= HS2-like) to
//!    ℓ (= C-Ring-like stream concurrency), showing where the NIC saturates.

use eag_bench::fmt::size_label;
use eag_bench::{simulate, SimConfig};
use eag_core::Algorithm;
use eag_netsim::Mapping;

fn cfg(mapping: Mapping, contention: bool) -> SimConfig {
    SimConfig {
        p: 128,
        nodes: 8,
        mapping,
        profile: "noleland".into(),
        reps: 3,
        nic_contention: contention,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    }
}

fn compare(title: &str, cfg: &SimConfig, a: Algorithm, b: Algorithm, sizes: &[usize]) {
    println!("\n== {title} ==");
    println!("{:>8} {:>12} {:>12}  winner", "size", a.name(), b.name());
    for &m in sizes {
        let ta = simulate(cfg, a, m).mean;
        let tb = simulate(cfg, b, m).mean;
        println!(
            "{:>8} {:>10.2}us {:>10.2}us  {}",
            size_label(m),
            ta,
            tb,
            if ta <= tb { a.name() } else { b.name() }
        );
    }
}

fn multi_leader_sweep() {
    use eag_core::encrypted::{hs_ml, MlPattern};
    use eag_netsim::{profile, Topology};
    use eag_runtime::{run, DataMode, WorldSpec};

    // Bridges-2 model: one core stream (12 GB/s) cannot saturate the
    // 25 GB/s NIC, so extra leaders should pay off up to ~k = 2.
    println!("\n== ablation 5: HS-ML multi-leader sweep (bridges2, p=128, N=8, 256KB) ==");
    println!("{:>4} {:>14}", "k", "latency");
    let m = 256 * 1024;
    for k in [1usize, 2, 4, 8, 16] {
        let spec = WorldSpec::new(
            Topology::new(128, 8, Mapping::Block),
            profile::bridges2(),
            DataMode::Phantom,
        );
        let samples: Vec<f64> = (0..3)
            .map(|_| {
                run(&spec, move |ctx| {
                    let out = hs_ml(ctx, m, k, MlPattern::Ring);
                    assert!(out.is_complete());
                })
                .latency_us
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!("{k:>4} {mean:>12.2}us");
    }
}

fn main() {
    let sizes = [
        1usize,
        64,
        1024,
        8 * 1024,
        64 * 1024,
        512 * 1024,
        2 * 1024 * 1024,
    ];
    let block = cfg(Mapping::Block, true);

    compare(
        "ablation 1: O-RD (forward sealed) vs O-RD2 (merge + re-encrypt)",
        &block,
        Algorithm::ORd,
        Algorithm::ORd2,
        &sizes,
    );
    compare(
        "ablation 2: HS1 (leader encrypts lm) vs HS2 (everyone encrypts m)",
        &block,
        Algorithm::Hs1,
        Algorithm::Hs2,
        &sizes,
    );
    compare(
        "ablation 3a: C-Ring vs HS1, NIC contention ON",
        &block,
        Algorithm::CRing,
        Algorithm::Hs1,
        &sizes,
    );
    compare(
        "ablation 3b: C-Ring vs HS1, NIC contention OFF",
        &cfg(Mapping::Block, false),
        Algorithm::CRing,
        Algorithm::Hs1,
        &sizes,
    );
    compare(
        "ablation 4: natural Ring vs rank-ordered Ring, cyclic mapping",
        &cfg(Mapping::Cyclic, true),
        Algorithm::Ring,
        Algorithm::RingRanked,
        &sizes,
    );
    multi_leader_sweep();
}
