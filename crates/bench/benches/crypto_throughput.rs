//! Real AES-128-GCM throughput on this machine — the measured counterpart
//! of the paper's Figure 1 encryption curve, plus the primitive costs
//! (AES block, GHASH) that make it up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eag_crypto::{Aes128, AesGcm128, Key, Nonce};
use std::hint::black_box;

fn bench_seal_open(c: &mut Criterion) {
    let gcm = AesGcm128::new(&Key::from_bytes([7u8; 16]));
    let nonce = Nonce::from_bytes([1u8; 12]);
    let mut group = c.benchmark_group("gcm");
    for &size in &[64usize, 1024, 16 * 1024, 256 * 1024, 1024 * 1024] {
        let data = vec![0xA5u8; size];
        let sealed = gcm.seal(&nonce, b"", &data);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &data, |b, d| {
            b.iter(|| black_box(gcm.seal(&nonce, b"", d)))
        });
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, s| {
            b.iter(|| black_box(gcm.open(&nonce, b"", s).unwrap()))
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    let aes = Aes128::new(&[0x42u8; 16]);
    group.throughput(Throughput::Bytes(16));
    group.bench_function("aes_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            black_box(&block);
        })
    });
    group.throughput(Throughput::Bytes(64));
    group.bench_function("aes_blocks4", |b| {
        let mut quad = [0u8; 64];
        b.iter(|| {
            aes.encrypt_blocks4(&mut quad);
            black_box(&quad);
        })
    });
    group.throughput(Throughput::Bytes(16));
    group.bench_function("ghash_block", |b| {
        let mut g = eag_crypto::ghash::GHash::new(&[0x11u8; 16]);
        let block = [0x22u8; 16];
        b.iter(|| {
            g.update_block(&block);
            black_box(g.finalize());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_seal_open, bench_primitives);
criterion_main!(benches);
