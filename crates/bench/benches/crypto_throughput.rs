//! Real AES-128-GCM throughput on this machine — the measured counterpart
//! of the paper's Figure 1 encryption curve, plus the primitive costs
//! (AES block, GHASH) that make it up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eag_crypto::{Aes128, AesGcm128, Key, Nonce};
use std::hint::black_box;

fn bench_seal_open(c: &mut Criterion) {
    let gcm = AesGcm128::new(&Key::from_bytes([7u8; 16]));
    let nonce = Nonce::from_bytes([1u8; 12]);
    let mut group = c.benchmark_group("gcm");
    for &size in &[64usize, 1024, 16 * 1024, 256 * 1024, 1024 * 1024] {
        let data = vec![0xA5u8; size];
        let sealed = gcm.seal(&nonce, b"", &data);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &data, |b, d| {
            b.iter(|| black_box(gcm.seal(&nonce, b"", d)))
        });
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, s| {
            b.iter(|| black_box(gcm.open(&nonce, b"", s).unwrap()))
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    let aes = Aes128::new(&[0x42u8; 16]);
    group.throughput(Throughput::Bytes(16));
    group.bench_function("aes_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            black_box(&block);
        })
    });
    group.throughput(Throughput::Bytes(64));
    group.bench_function("aes_blocks4", |b| {
        let mut quad = [0u8; 64];
        b.iter(|| {
            aes.encrypt_blocks4(&mut quad);
            black_box(&quad);
        })
    });
    group.throughput(Throughput::Bytes(16));
    group.bench_function("ghash_block", |b| {
        let mut g = eag_crypto::ghash::GHash::new(&[0x11u8; 16]);
        let block = [0x22u8; 16];
        b.iter(|| {
            g.update_block(&block);
            black_box(g.finalize());
        })
    });
    group.finish();
}

/// The seed layout walked each message twice — one CTR keystream sweep,
/// then one GHASH sweep over the ciphertext. The fused kernel interleaves
/// both in a single pass; this group measures that gap directly at the
/// message sizes the paper's Figure 1 covers.
fn bench_fused_vs_two_sweep(c: &mut Criterion) {
    let key = [7u8; 16];
    let aes = Aes128::new(&key);
    let mut h = [0u8; 16];
    aes.encrypt_block(&mut h);
    let proto = eag_crypto::ghash::GHash::new(&h);
    let gcm = AesGcm128::new(&Key::from_bytes(key));
    let nonce = Nonce::from_bytes([1u8; 12]);
    let icb = {
        let mut b = [0u8; 16];
        b[..12].copy_from_slice(nonce.as_bytes());
        b[15] = 2;
        b
    };
    let mut group = c.benchmark_group("fused_vs_two_sweep");
    for &size in &[64 * 1024usize, 256 * 1024, 1024 * 1024, 2 * 1024 * 1024] {
        let data = vec![0xA5u8; size];
        let mut buf = data.clone();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("two_sweep", size), &data, |b, d| {
            b.iter(|| {
                buf.copy_from_slice(d);
                aes.xor_ctr_keystream(&icb, &mut buf);
                let mut g = proto.fresh();
                g.update_padded(&buf);
                black_box(g.finalize());
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_seal", size), &data, |b, d| {
            b.iter(|| {
                buf.copy_from_slice(d);
                black_box(gcm.seal_in_place_detached(&nonce, b"", &mut buf));
            })
        });
    }
    group.finish();
}

/// Allocating vs. in-place AEAD at runtime message sizes: the in-place
/// entry points are what `ProcCtx::encrypt`/`decrypt` use per chunk.
fn bench_in_place_vs_alloc(c: &mut Criterion) {
    let gcm = AesGcm128::new(&Key::from_bytes([7u8; 16]));
    let nonce = Nonce::from_bytes([1u8; 12]);
    let mut group = c.benchmark_group("in_place_vs_alloc");
    for &size in &[64 * 1024usize, 256 * 1024, 1024 * 1024, 2 * 1024 * 1024] {
        let data = vec![0xA5u8; size];
        let sealed = gcm.seal(&nonce, b"", &data);
        let (ct, tag) = sealed.split_at(size);
        let mut buf = data.clone();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal_alloc", size), &data, |b, d| {
            b.iter(|| black_box(gcm.seal(&nonce, b"", d)))
        });
        group.bench_with_input(BenchmarkId::new("seal_in_place", size), &data, |b, d| {
            b.iter(|| {
                buf.copy_from_slice(d);
                black_box(gcm.seal_in_place_detached(&nonce, b"", &mut buf));
            })
        });
        group.bench_with_input(BenchmarkId::new("open_alloc", size), &sealed, |b, s| {
            b.iter(|| black_box(gcm.open(&nonce, b"", s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("open_in_place", size), &ct, |b, d| {
            b.iter(|| {
                buf.copy_from_slice(d);
                gcm.open_in_place_detached(&nonce, b"", &mut buf, tag)
                    .unwrap();
                black_box(&buf);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_seal_open,
    bench_primitives,
    bench_fused_vs_two_sweep,
    bench_in_place_vs_alloc
);
criterion_main!(benches);
