//! Machine-readable benchmark reports.
//!
//! Everything the human-readable tables print — per-configuration latency
//! statistics, the six per-algorithm cost metrics of the paper's Table II,
//! and (optionally) real wall-clock crypto throughput — serialized into a
//! stable, versioned JSON schema (`BENCH_<profile>.json`) that the
//! [`regress`](crate::regress) gate and CI can consume.
//!
//! The committed baseline is produced by [`run_smoke_suite`], which runs a
//! fixed-seed, contention-free suite: on the virtual-time simulator such
//! runs are *bit-deterministic* (pure `f64` arithmetic, no wall clock, no
//! arrival-order races), so the serialized report is byte-identical across
//! machines and re-runs. Wall-clock crypto probes are inherently noisy and
//! therefore excluded from the deterministic suite; attach them explicitly
//! via [`BenchReport::with_crypto`] when measuring, and never commit them
//! into a gating baseline.

use crate::harness::{
    simulate_collective_recovery_schedule, simulate_collective_samples, SimConfig,
};
use crate::sessions::{run_session_case, smoke_session_suite, SessionCase, SessionEntry};
use crate::stats::Stats;
use eag_core::{Algorithm, AlltoallAlgo, BcastAlgo, Collective};
use eag_netsim::{Crash, Mapping};
use eag_runtime::{CipherSuite, Metrics};
use serde::{Deserialize, Serialize};

/// Version of the JSON schema emitted by [`BenchReport`]. Bump on any
/// breaking change to the field layout; [`BenchReport::from_json`] rejects
/// mismatched versions instead of misreading them.
///
/// v7: entries and recovery cells carry an `operation` field (the collective
/// operation the cell measured — `allgather`, `bcast`, `alltoall`, …) which
/// joined the entry-identity key; `algorithm` now names the per-operation
/// variant.
pub const SCHEMA_VERSION: u64 = 7;

/// A complete benchmark report: one entry per (algorithm, configuration,
/// message size) plus optional wall-clock crypto throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Name of the suite that produced this report (e.g. `"smoke"`).
    pub suite: String,
    /// Cluster profile every entry ran on (e.g. `"noleland"`).
    pub profile: String,
    /// True when every entry is bit-deterministic (no NIC contention, no
    /// wall-clock probes): a regress gate against such a baseline expects
    /// *exact* reproduction, not just statistical agreement.
    pub deterministic: bool,
    /// One entry per benchmarked (algorithm, config, message size).
    pub entries: Vec<BenchEntry>,
    /// One entry per crash-recovery measurement: the survivor-path latency
    /// of shrink-and-recover under a planned rank crash. Always
    /// deterministic (flag-based detection, no NACK timers, no contention),
    /// so the regress gate compares these exactly.
    pub recovery: Vec<RecoveryEntry>,
    /// One entry per concurrent-sessions cell: service throughput and
    /// per-session tail latency (p95/p99) versus how many tenant sessions
    /// share the fabric (see [`crate::sessions`]). Deterministic by
    /// construction, so the regress gate compares the tails exactly.
    pub sessions: Vec<SessionEntry>,
    /// Real wall-clock AES-GCM throughput, if probed (`--probe`). Always
    /// `None` in committed baselines — wall-clock numbers are machine- and
    /// load-dependent.
    pub crypto: Option<CryptoProbe>,
}

/// One benchmarked (operation, variant, configuration, message size) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Collective operation name as accepted by `Operation::by_name`
    /// (e.g. `"allgather"`, `"bcast"`, `"alltoall"`). Part of the entry's
    /// identity: the same variant name can exist under several operations
    /// (`allgather/O-Ring` vs `allgatherv/O-Ring`).
    pub operation: String,
    /// Variant name within the operation, as accepted by
    /// `Collective::by_names` (e.g. `"O-Ring"`, `"binomial"`).
    pub algorithm: String,
    /// Number of processes.
    pub p: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Process-to-node mapping.
    pub mapping: Mapping,
    /// Per-process message size in bytes (the paper's `m`).
    pub msg_bytes: u64,
    /// Repetitions the latency statistics summarize.
    pub reps: u64,
    /// Whether per-node NIC bandwidth sharing was modeled (nondeterministic
    /// arrival order; always `false` in the deterministic smoke suite).
    pub nic_contention: bool,
    /// Virtual-time latency statistics over the repetitions.
    pub latency: LatencyStats,
    /// The paper's six cost metrics for this run (critical path over ranks).
    pub metrics: PaperMetrics,
    /// Data-pattern seed for real-payload cells; `None` for phantom-mode
    /// cells. Part of the entry's identity: the same (algorithm, p, nodes,
    /// mapping, msg_bytes) point exists in both modes.
    pub data_seed: Option<u64>,
    /// AEAD cipher suite the cell ran under, by canonical name
    /// (`CipherSuite::name`). Part of the entry's identity: real-payload
    /// smoke cells exist per suite at the same configuration point.
    pub cipher_suite: String,
    /// Data-plane allocation/copy probe (real-payload cells only — phantom
    /// runs move no payload bytes, so the probe would read zero).
    pub copy_probe: Option<CopyProbe>,
}

/// Deterministic data-plane cost of one real-payload cell: what the
/// implementation physically moved, as opposed to the modeled traffic in
/// [`PaperMetrics`]. Taken from the component-wise maximum over ranks, so
/// the numbers read as "per rank on the critical path, per run". Exact
/// counters on the virtual-time simulator, hence gated by exact comparison
/// in `eag regress` — a change here means the zero-copy story changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyProbe {
    /// Payload bytes physically memcpy'd by the data plane.
    pub memcpy_bytes: u64,
    /// Fresh payload byte buffers allocated by the data plane.
    pub buf_allocs: u64,
}

/// Latency summary plus the raw samples it was computed from, all in
/// microseconds of virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Sample standard deviation.
    pub std_dev_us: f64,
    /// Smallest sample.
    pub min_us: f64,
    /// Largest sample.
    pub max_us: f64,
    /// Median sample.
    pub median_us: f64,
    /// 95th percentile (nearest-rank).
    pub p95_us: f64,
    /// 99th percentile (nearest-rank; equals `max_us` for `n < 100`).
    pub p99_us: f64,
    /// Number of samples.
    pub n: u64,
    /// The raw samples, in run order — kept so a future reader can
    /// recompute any statistic without re-running the suite.
    pub samples_us: Vec<f64>,
}

impl LatencyStats {
    /// Builds the serializable summary from computed [`Stats`] and the raw
    /// samples they summarize.
    pub fn from_stats(stats: &Stats, samples: &[f64]) -> LatencyStats {
        LatencyStats {
            mean_us: stats.mean,
            std_dev_us: stats.std_dev,
            min_us: stats.min,
            max_us: stats.max,
            median_us: stats.median,
            p95_us: stats.p95,
            p99_us: stats.p99,
            n: stats.n as u64,
            samples_us: samples.to_vec(),
        }
    }

    /// Reconstructs [`Stats`] for comparison code (regress gate).
    pub fn to_stats(&self) -> Stats {
        Stats {
            mean: self.mean_us,
            std_dev: self.std_dev_us,
            min: self.min_us,
            max: self.max_us,
            median: self.median_us,
            p95: self.p95_us,
            p99: self.p99_us,
            n: self.n as usize,
        }
    }
}

/// The six cost metrics the paper's Table II derives per algorithm, taken
/// from the component-wise maximum over ranks (the per-metric critical
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperMetrics {
    /// Communication rounds (`r` in Table II).
    pub comm_rounds: u64,
    /// max(bytes sent, bytes received) excluding GCM framing (`sc`).
    pub sc_payload_bytes: u64,
    /// Encryption operations (`er`).
    pub enc_rounds: u64,
    /// Plaintext bytes encrypted (`ec`).
    pub enc_bytes: u64,
    /// Decryption operations (`dr`).
    pub dec_rounds: u64,
    /// Plaintext bytes recovered by decryption (`dc`).
    pub dec_bytes: u64,
}

impl PaperMetrics {
    /// Extracts the six paper metrics from a runtime [`Metrics`] record
    /// (normally `RunReport::max_metrics()`).
    pub fn of(m: &Metrics) -> PaperMetrics {
        PaperMetrics {
            comm_rounds: m.comm_rounds,
            sc_payload_bytes: m.sc_payload(),
            enc_rounds: m.enc_rounds,
            enc_bytes: m.enc_bytes,
            dec_rounds: m.dec_rounds,
            dec_bytes: m.dec_bytes,
        }
    }
}

/// One planned crash of a recovery cell's schedule, in serialized form.
/// Mirrors [`eag_netsim::Crash`] field-for-field so a baseline replays the
/// exact schedule it was measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    /// The rank that crashes.
    pub rank: u64,
    /// The peer-bound send step (within the arming epoch) that triggers it.
    pub step: u64,
    /// The membership epoch the crash is armed in (0 = initial attempt,
    /// e ≥ 1 = inside the e-th recovery iteration's agreement/re-run).
    pub epoch: u64,
    /// Die after the triggering frame left (`true`) or just before
    /// (`false`).
    pub after_send: bool,
    /// Hard crash: no exit notice, survivors detect via heartbeat
    /// staleness.
    pub hard: bool,
}

impl CrashPoint {
    /// Serialized form of one planned crash.
    pub fn of(c: &Crash) -> CrashPoint {
        CrashPoint {
            rank: c.rank as u64,
            step: c.phase_step,
            epoch: c.epoch,
            after_send: c.after_send,
            hard: c.hard,
        }
    }

    /// Reconstructs the runnable crash this point was serialized from.
    pub fn to_crash(self) -> Crash {
        let base = if self.after_send {
            Crash::after(self.rank as usize, self.step)
        } else {
            Crash::before(self.rank as usize, self.step)
        };
        let base = base.at_epoch(self.epoch);
        if self.hard {
            base.hard()
        } else {
            base
        }
    }
}

/// One crash-recovery latency cell: the virtual-time cost of surviving a
/// planned crash *schedule* — up to f ranks dying at their armed epochs
/// and send steps (failure detection, epoch-versioned survivor agreement,
/// and shrink-and-recover re-runs) — versus the fault-free run of the
/// same crash-tolerant collective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEntry {
    /// Collective operation name (part of the cell identity, like
    /// [`BenchEntry::operation`]).
    pub operation: String,
    /// Variant name within the operation, as accepted by
    /// `Collective::by_names`.
    pub algorithm: String,
    /// Number of processes before the crashes.
    pub p: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Process-to-node mapping.
    pub mapping: Mapping,
    /// Per-process message size in bytes.
    pub msg_bytes: u64,
    /// The planned crash schedule (f = `crashes.len()`), in arming order.
    pub crashes: Vec<CrashPoint>,
    /// Virtual latency of the fault-free run, µs.
    pub clean_latency_us: f64,
    /// Virtual latency of the crashed run (detection + agreement epochs +
    /// degraded re-runs), µs.
    pub recovery_latency_us: f64,
    /// Ranks that survived and produced the degraded output.
    pub survivors: u64,
}

/// Wall-clock AEAD throughput measured on this machine via the in-place
/// seal/open paths in `eag-crypto`, one point per (suite, message size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CryptoProbe {
    /// One point per probed (cipher suite, message size) pair.
    pub points: Vec<CryptoProbePoint>,
}

/// Throughput of one cipher suite at one message size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CryptoProbePoint {
    /// AEAD cipher suite probed, by canonical name.
    pub cipher_suite: String,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Seal (encrypt+tag) throughput in MB/s (10^6 bytes per second).
    pub seal_mb_per_s: f64,
    /// Open (verify+decrypt) throughput in MB/s.
    pub open_mb_per_s: f64,
}

/// One benchmark case of a suite: a configuration, a collective
/// (operation × variant), and a message size.
#[derive(Debug, Clone)]
pub struct SuiteCase {
    /// Simulated cluster configuration.
    pub cfg: SimConfig,
    /// Collective under test (operation × algorithm variant).
    pub collective: Collective,
    /// Per-process message size in bytes.
    pub msg_bytes: usize,
}

/// One crash-recovery case of a suite: a configuration, a collective, a
/// message size, and the planned crash schedule.
#[derive(Debug, Clone)]
pub struct RecoveryCase {
    /// Simulated cluster configuration.
    pub cfg: SimConfig,
    /// Collective under test (operation × algorithm variant).
    pub collective: Collective,
    /// Per-process message size in bytes.
    pub msg_bytes: usize,
    /// The planned crash schedule (f = `crashes.len()`), in arming order.
    pub crashes: Vec<Crash>,
}

/// Message sizes exercised by the smoke suite (1 KiB and 64 KiB: one
/// latency-bound, one bandwidth-bound point).
pub const SMOKE_SIZES: [usize; 2] = [1024, 64 * 1024];

/// The fixed smoke suite behind the committed CI baseline: every encrypted
/// algorithm plus the modeled MVAPICH baseline, on a 16-process / 4-node
/// Noleland world, block and cyclic mappings, [`SMOKE_SIZES`] message
/// sizes. NIC contention is off, so every case is bit-deterministic.
///
/// On top of the phantom latency grid, the suite carries real-payload cells
/// for O-Ring and O-Bruck (block mapping, both sizes, seed
/// [`SMOKE_DATA_SEED`]) under *every* cipher suite: these run actual AEAD
/// over pattern blocks and record the data-plane copy probe,
/// regression-gating the zero-copy story and every backend's correctness
/// alongside latency. The virtual latencies of the per-suite cells are
/// identical by construction (the cost model is suite-blind), which the
/// regress gate then re-checks for free.
///
/// Since schema v7 the suite also carries one phantom latency cell per new
/// collective (broadcast, gather/scatter incl. the irregular variants,
/// all-to-all; block mapping, both sizes) plus real-payload copy-probe
/// cells for a representative pair of them (binomial broadcast and pairwise
/// all-to-all, default suite).
pub fn smoke_suite() -> Vec<SuiteCase> {
    let mut cases = Vec::new();
    for &mapping in &[Mapping::Block, Mapping::Cyclic] {
        let cfg = SimConfig {
            p: 16,
            nodes: 4,
            mapping,
            profile: "noleland".into(),
            reps: 3,
            nic_contention: false,
            data_seed: None,
            suite: CipherSuite::AesGcm128,
        };
        let mut algos = vec![Algorithm::Mvapich];
        algos.extend_from_slice(Algorithm::encrypted_all());
        for algo in algos {
            for &m in &SMOKE_SIZES {
                cases.push(SuiteCase {
                    cfg: cfg.clone(),
                    collective: Collective::Allgather(algo),
                    msg_bytes: m,
                });
            }
        }
    }
    let new_cfg = SimConfig {
        p: 16,
        nodes: 4,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 3,
        nic_contention: false,
        data_seed: None,
        suite: CipherSuite::AesGcm128,
    };
    for collective in Collective::new_operations_all() {
        for &m in &SMOKE_SIZES {
            cases.push(SuiteCase {
                cfg: new_cfg.clone(),
                collective,
                msg_bytes: m,
            });
        }
    }
    for suite in CipherSuite::ALL {
        let real_cfg = SimConfig {
            p: 16,
            nodes: 4,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 3,
            nic_contention: false,
            data_seed: Some(SMOKE_DATA_SEED),
            suite,
        };
        for algo in [Algorithm::ORing, Algorithm::OBruck] {
            for &m in &SMOKE_SIZES {
                cases.push(SuiteCase {
                    cfg: real_cfg.clone(),
                    collective: Collective::Allgather(algo),
                    msg_bytes: m,
                });
            }
        }
    }
    let new_real_cfg = SimConfig {
        data_seed: Some(SMOKE_DATA_SEED),
        ..new_cfg
    };
    for collective in [
        Collective::Broadcast(BcastAlgo::Binomial),
        Collective::Alltoall(AlltoallAlgo::Pairwise),
    ] {
        for &m in &SMOKE_SIZES {
            cases.push(SuiteCase {
                cfg: new_real_cfg.clone(),
                collective,
                msg_bytes: m,
            });
        }
    }
    cases
}

/// Data-pattern seed of the smoke suite's real-payload cells.
pub const SMOKE_DATA_SEED: u64 = 11;

/// The fixed crash-recovery cases behind the committed baseline, on an
/// 8-process / 2-node Noleland world with 1 KiB blocks:
///
/// * `f = 1` — every encrypted algorithm survives rank 0 (a node leader,
///   so it sends in every algorithm) crashing just before its first send
///   step;
/// * `f = 2` — O-Ring and O-Bruck survive two concurrent epoch-0 crashes;
/// * `f = 3` — O-Ring and O-Bruck survive a cascading schedule whose last
///   crash is armed at epoch 1, inside round 0 of the first agreement
///   instance (the mid-agreement cascade the restartable agreement
///   exists for);
/// * `f = 1` per new operation — binomial broadcast, pairwise all-to-all
///   and the irregular O-Ring allgatherv each survive a crash of a rank
///   that sends in their main phase (so the armed crash reliably fires).
///
/// Each case is bit-deterministic, so the committed latencies gate exactly.
pub fn smoke_recovery_suite() -> Vec<RecoveryCase> {
    let cfg = SimConfig {
        p: 8,
        nodes: 2,
        mapping: Mapping::Block,
        profile: "noleland".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let mut cases: Vec<RecoveryCase> = Algorithm::encrypted_all()
        .iter()
        .map(|&algo| RecoveryCase {
            cfg: cfg.clone(),
            collective: Collective::Allgather(algo),
            msg_bytes: 1024,
            crashes: vec![Crash::before(0, 0)],
        })
        .collect();
    for algo in [Algorithm::ORing, Algorithm::OBruck] {
        cases.push(RecoveryCase {
            cfg: cfg.clone(),
            collective: Collective::Allgather(algo),
            msg_bytes: 1024,
            crashes: vec![Crash::before(0, 0), Crash::before(4, 1)],
        });
        cases.push(RecoveryCase {
            cfg: cfg.clone(),
            collective: Collective::Allgather(algo),
            msg_bytes: 1024,
            crashes: vec![
                Crash::before(0, 0),
                Crash::before(2, 1),
                Crash::before(4, 0).at_epoch(1),
            ],
        });
    }
    for (collective, victim) in [
        (Collective::Broadcast(BcastAlgo::Binomial), 4usize),
        (Collective::Alltoall(AlltoallAlgo::Pairwise), 3),
        (Collective::Allgatherv(Algorithm::ORing), 3),
    ] {
        cases.push(RecoveryCase {
            cfg: cfg.clone(),
            collective,
            msg_bytes: 1024,
            crashes: vec![Crash::before(victim, 0)],
        });
    }
    cases
}

/// Runs one crash-recovery case and serializes the result.
pub fn run_recovery_case(case: &RecoveryCase) -> RecoveryEntry {
    let sample = simulate_collective_recovery_schedule(
        &case.cfg,
        case.collective,
        case.msg_bytes,
        &case.crashes,
    );
    RecoveryEntry {
        operation: case.collective.operation().name().to_string(),
        algorithm: case.collective.variant_name().to_string(),
        p: case.cfg.p as u64,
        nodes: case.cfg.nodes as u64,
        mapping: case.cfg.mapping,
        msg_bytes: case.msg_bytes as u64,
        crashes: case.crashes.iter().map(CrashPoint::of).collect(),
        clean_latency_us: sample.clean_latency_us,
        recovery_latency_us: sample.recovery_latency_us,
        survivors: sample.survivors as u64,
    }
}

/// Runs one case and serializes the result.
pub fn run_case(case: &SuiteCase) -> BenchEntry {
    let (samples, metrics) = simulate_collective_samples(&case.cfg, case.collective, case.msg_bytes);
    let stats = Stats::of(&samples);
    BenchEntry {
        operation: case.collective.operation().name().to_string(),
        algorithm: case.collective.variant_name().to_string(),
        p: case.cfg.p as u64,
        nodes: case.cfg.nodes as u64,
        mapping: case.cfg.mapping,
        msg_bytes: case.msg_bytes as u64,
        reps: case.cfg.reps as u64,
        nic_contention: case.cfg.nic_contention,
        latency: LatencyStats::from_stats(&stats, &samples),
        metrics: PaperMetrics::of(&metrics),
        data_seed: case.cfg.data_seed,
        cipher_suite: case.cfg.suite.name().to_string(),
        copy_probe: case.cfg.data_seed.map(|_| CopyProbe {
            memcpy_bytes: metrics.memcpy_bytes,
            buf_allocs: metrics.buf_allocs,
        }),
    }
}

/// Runs a full suite into a report. `suite` names the suite in the output;
/// `profile` should match the cases' cluster profile.
pub fn run_suite(suite: &str, profile: &str, cases: &[SuiteCase]) -> BenchReport {
    run_suite_with_recovery(suite, profile, cases, &[])
}

/// Like [`run_suite`], additionally measuring crash-recovery cases into the
/// report's `recovery` section. Recovery measurements are deterministic by
/// construction and never affect the report's `deterministic` flag.
pub fn run_suite_with_recovery(
    suite: &str,
    profile: &str,
    cases: &[SuiteCase],
    recovery: &[RecoveryCase],
) -> BenchReport {
    run_suite_full(suite, profile, cases, recovery, &[])
}

/// Like [`run_suite_with_recovery`], additionally sweeping the
/// concurrent-sessions cases into the report's `sessions` section. Session
/// sweeps are deterministic by construction (see [`crate::sessions`]) and
/// never affect the report's `deterministic` flag.
pub fn run_suite_full(
    suite: &str,
    profile: &str,
    cases: &[SuiteCase],
    recovery: &[RecoveryCase],
    sessions: &[SessionCase],
) -> BenchReport {
    let deterministic = cases.iter().all(|c| !c.cfg.nic_contention);
    BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.to_string(),
        profile: profile.to_string(),
        deterministic,
        entries: cases.iter().map(run_case).collect(),
        recovery: recovery.iter().map(run_recovery_case).collect(),
        sessions: sessions.iter().map(run_session_case).collect(),
        crypto: None,
    }
}

/// Runs the fixed smoke suite (the one CI gates on), including the
/// crash-recovery cases and the concurrent-sessions sweep.
pub fn run_smoke_suite() -> BenchReport {
    run_suite_full(
        "smoke",
        "noleland",
        &smoke_suite(),
        &smoke_recovery_suite(),
        &smoke_session_suite(),
    )
}

/// Reconstructs the suite a report was produced by, so `eag regress` can
/// re-run exactly the baseline's cases when no `--current` report is given.
pub fn suite_from_report(report: &BenchReport) -> Result<Vec<SuiteCase>, String> {
    report
        .entries
        .iter()
        .map(|e| {
            let collective = Collective::by_names(&e.operation, &e.algorithm).ok_or_else(|| {
                format!(
                    "unknown collective {:?}/{:?} in report",
                    e.operation, e.algorithm
                )
            })?;
            let suite = CipherSuite::by_name(&e.cipher_suite)
                .ok_or_else(|| format!("unknown cipher suite {:?} in report", e.cipher_suite))?;
            Ok(SuiteCase {
                cfg: SimConfig {
                    p: e.p as usize,
                    nodes: e.nodes as usize,
                    mapping: e.mapping,
                    profile: report.profile.clone(),
                    reps: e.reps as usize,
                    nic_contention: e.nic_contention,
                    data_seed: e.data_seed,
                    suite,
                },
                collective,
                msg_bytes: e.msg_bytes as usize,
            })
        })
        .collect()
}

/// Reconstructs the crash-recovery cases a report carried, so `eag regress`
/// can re-measure them alongside the latency suite when no `--current`
/// report is given.
pub fn recovery_suite_from_report(report: &BenchReport) -> Result<Vec<RecoveryCase>, String> {
    report
        .recovery
        .iter()
        .map(|e| {
            let collective = Collective::by_names(&e.operation, &e.algorithm).ok_or_else(|| {
                format!(
                    "unknown collective {:?}/{:?} in report",
                    e.operation, e.algorithm
                )
            })?;
            Ok(RecoveryCase {
                cfg: SimConfig {
                    p: e.p as usize,
                    nodes: e.nodes as usize,
                    mapping: e.mapping,
                    profile: report.profile.clone(),
                    reps: 1,
                    nic_contention: false,
                    data_seed: None,
                    suite: CipherSuite::AesGcm128,
                },
                collective,
                msg_bytes: e.msg_bytes as usize,
                crashes: e.crashes.iter().map(|c| c.to_crash()).collect(),
            })
        })
        .collect()
}

impl BenchReport {
    /// Attaches wall-clock crypto throughput to this report. Doing so marks
    /// the report nondeterministic: wall-clock numbers never reproduce
    /// exactly.
    pub fn with_crypto(mut self, probe: CryptoProbe) -> BenchReport {
        self.crypto = Some(probe);
        self.deterministic = false;
        self
    }

    /// Serializes to pretty JSON (stable field order, shortest-round-trip
    /// floats; byte-identical across runs for deterministic reports).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("value-tree serialization cannot fail")
    }

    /// Parses a report back, rejecting schema-version mismatches.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let report: BenchReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (this binary writes {})",
                report.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Looks up the entry matching `other` by identity (operation,
    /// algorithm, p, nodes, mapping, msg_bytes, data_seed, cipher_suite) —
    /// the key the regress gate joins on. `operation` distinguishes cells
    /// of different collectives that share a variant name
    /// (`allgather/O-Ring` vs `allgatherv/O-Ring`); `data_seed`
    /// distinguishes real-payload cells from the phantom cell at the same
    /// configuration point; `cipher_suite` distinguishes the per-suite real
    /// cells from each other.
    pub fn find_matching(&self, other: &BenchEntry) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| {
            e.operation == other.operation
                && e.algorithm == other.algorithm
                && e.p == other.p
                && e.nodes == other.nodes
                && e.mapping == other.mapping
                && e.msg_bytes == other.msg_bytes
                && e.data_seed == other.data_seed
                && e.cipher_suite == other.cipher_suite
        })
    }

    /// Looks up the recovery entry matching `other` by identity (operation,
    /// algorithm, p, nodes, mapping, msg_bytes, and the full crash
    /// schedule).
    pub fn find_matching_recovery(&self, other: &RecoveryEntry) -> Option<&RecoveryEntry> {
        self.recovery.iter().find(|e| {
            e.operation == other.operation
                && e.algorithm == other.algorithm
                && e.p == other.p
                && e.nodes == other.nodes
                && e.mapping == other.mapping
                && e.msg_bytes == other.msg_bytes
                && e.crashes == other.crashes
        })
    }

    /// Looks up the sessions entry matching `other` by identity (algorithm,
    /// p, nodes, msg_bytes, sessions, physical_nodes).
    pub fn find_matching_session(&self, other: &SessionEntry) -> Option<&SessionEntry> {
        self.sessions.iter().find(|e| {
            e.algorithm == other.algorithm
                && e.p == other.p
                && e.nodes == other.nodes
                && e.msg_bytes == other.msg_bytes
                && e.sessions == other.sessions
                && e.physical_nodes == other.physical_nodes
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let cfg = SimConfig {
            p: 8,
            nodes: 2,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 2,
            nic_contention: false,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        };
        run_suite_with_recovery(
            "unit",
            "noleland",
            &[
                SuiteCase {
                    cfg: cfg.clone(),
                    collective: Collective::Allgather(Algorithm::Hs2),
                    msg_bytes: 512,
                },
                SuiteCase {
                    cfg: cfg.clone(),
                    collective: Collective::Allgather(Algorithm::CRing),
                    msg_bytes: 2048,
                },
            ],
            &[RecoveryCase {
                cfg: SimConfig { reps: 1, ..cfg },
                collective: Collective::Allgather(Algorithm::ORing),
                msg_bytes: 512,
                crashes: vec![Crash::before(0, 0)],
            }],
        )
    }

    #[test]
    fn schema_roundtrip_is_lossless() {
        let report = sample_report();
        let json = report.to_json();
        let back = BenchReport::from_json(&json).expect("parse back");
        assert_eq!(report, back);
        // And the re-serialization is byte-identical (deterministic field
        // order + shortest-round-trip floats).
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn deterministic_suite_reproduces_exactly() {
        // Contention-free virtual-time runs are pure f64 arithmetic: two
        // executions of the same suite serialize byte-identically.
        let a = sample_report().to_json();
        let b = sample_report().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut report = sample_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let json = report.to_json();
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn smoke_suite_shape() {
        let cases = smoke_suite();
        // 2 mappings x (1 + encrypted) all-gather variants x 2 sizes, plus
        // one phantom cell per new collective x 2 sizes, plus the
        // real-payload copy-probe cells: (O-Ring, O-Bruck) x 2 sizes under
        // every cipher suite and 2 representative new collectives x 2 sizes
        // under the default suite.
        let algos = 1 + Algorithm::encrypted_all().len();
        let new_phantom = Collective::new_operations_all().len() * SMOKE_SIZES.len();
        let allgather_real = CipherSuite::ALL.len() * 2 * SMOKE_SIZES.len();
        let new_real = 2 * SMOKE_SIZES.len();
        assert_eq!(
            cases.len(),
            2 * algos * 2 + new_phantom + allgather_real + new_real
        );
        assert!(cases.iter().all(|c| !c.cfg.nic_contention));
        assert!(cases.iter().all(|c| c.cfg.profile == "noleland"));
        let real: Vec<_> = cases.iter().filter(|c| c.cfg.data_seed.is_some()).collect();
        assert_eq!(real.len(), allgather_real + new_real);
        // Every suite appears in the all-gather real cells; the new
        // collectives' real cells and all phantom cells stay on the default
        // suite.
        for suite in CipherSuite::ALL {
            assert_eq!(
                real.iter()
                    .filter(|c| c.cfg.suite == suite
                        && matches!(c.collective, Collective::Allgather(_)))
                    .count(),
                2 * SMOKE_SIZES.len(),
                "{suite}"
            );
        }
        let new_real_cases: Vec<_> = real
            .iter()
            .filter(|c| !matches!(c.collective, Collective::Allgather(_)))
            .collect();
        assert_eq!(new_real_cases.len(), new_real);
        assert!(new_real_cases
            .iter()
            .all(|c| c.cfg.suite == CipherSuite::AesGcm128));
        assert!(cases
            .iter()
            .filter(|c| c.cfg.data_seed.is_none())
            .all(|c| c.cfg.suite == CipherSuite::AesGcm128));
        // Every new collective gets a phantom latency cell at every size.
        for collective in Collective::new_operations_all() {
            assert_eq!(
                cases
                    .iter()
                    .filter(|c| c.collective == collective && c.cfg.data_seed.is_none())
                    .count(),
                SMOKE_SIZES.len(),
                "{collective}"
            );
        }
    }

    #[test]
    fn real_payload_cells_carry_the_copy_probe() {
        let cfg = SimConfig {
            p: 8,
            nodes: 2,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 2,
            nic_contention: false,
            data_seed: Some(SMOKE_DATA_SEED),
            suite: eag_runtime::CipherSuite::AesGcm128,
        };
        let entry = run_case(&SuiteCase {
            cfg,
            collective: Collective::Allgather(Algorithm::ORing),
            msg_bytes: 512,
        });
        assert_eq!(entry.data_seed, Some(SMOKE_DATA_SEED));
        let probe = entry.copy_probe.expect("real cell records the probe");
        assert!(probe.buf_allocs > 0, "{probe:?}");
        // Phantom cells at the same point join differently and carry none.
        let phantom = sample_report();
        assert!(phantom.entries.iter().all(|e| e.copy_probe.is_none()));
        assert!(phantom.entries.iter().all(|e| e.data_seed.is_none()));
    }

    #[test]
    fn smoke_recovery_suite_shape() {
        let cases = smoke_recovery_suite();
        // One f=1 cell per encrypted all-gather variant, f=2 and f=3
        // schedules for O-Ring and O-Bruck, plus one f=1 cell per
        // representative new operation.
        assert_eq!(cases.len(), Algorithm::encrypted_all().len() + 4 + 3);
        assert!(cases.iter().all(|c| !c.cfg.nic_contention));
        let singles: Vec<_> = cases.iter().filter(|c| c.crashes.len() == 1).collect();
        assert_eq!(singles.len(), Algorithm::encrypted_all().len() + 3);
        assert!(singles
            .iter()
            .filter(|c| matches!(c.collective, Collective::Allgather(_)))
            .all(|c| c.crashes[0] == Crash::before(0, 0)));
        // The new-operation cells cover three distinct operations.
        let ops: std::collections::BTreeSet<_> = singles
            .iter()
            .filter(|c| !matches!(c.collective, Collective::Allgather(_)))
            .map(|c| c.collective.operation().name())
            .collect();
        assert_eq!(ops.len(), 3);
        // The f=3 schedules cascade into the first agreement instance.
        let deep: Vec<_> = cases.iter().filter(|c| c.crashes.len() == 3).collect();
        assert_eq!(deep.len(), 2);
        assert!(deep
            .iter()
            .all(|c| c.crashes.iter().any(|crash| crash.epoch == 1)));
    }

    #[test]
    fn recovery_entries_measure_a_real_crash() {
        let report = sample_report();
        assert_eq!(report.recovery.len(), 1);
        let e = &report.recovery[0];
        assert_eq!(e.survivors, e.p - 1);
        assert!(e.recovery_latency_us > e.clean_latency_us);
        // And the suite reconstructs losslessly for the regress re-run path.
        let cases = recovery_suite_from_report(&report).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].collective, Collective::Allgather(Algorithm::ORing));
        assert_eq!(cases[0].cfg.p, e.p as usize);
    }

    #[test]
    fn recovery_lookup_joins_on_identity() {
        let report = sample_report();
        let found = report.find_matching_recovery(&report.recovery[0]).unwrap();
        assert_eq!(found, &report.recovery[0]);
        let mut missing = report.recovery[0].clone();
        missing.crashes[0].step += 1;
        assert!(report.find_matching_recovery(&missing).is_none());
        // A deeper schedule at the same point is a different cell too.
        let mut extended = report.recovery[0].clone();
        extended
            .crashes
            .push(CrashPoint::of(&Crash::before(1, 0).at_epoch(1)));
        assert!(report.find_matching_recovery(&extended).is_none());
    }

    #[test]
    fn entry_lookup_joins_on_identity() {
        let report = sample_report();
        let found = report.find_matching(&report.entries[1]).unwrap();
        assert_eq!(found, &report.entries[1]);
        let mut missing = report.entries[0].clone();
        missing.msg_bytes += 1;
        assert!(report.find_matching(&missing).is_none());
    }

    #[test]
    fn session_entries_roundtrip_and_join_on_identity() {
        let session_case = SessionCase {
            algo: Algorithm::ORing,
            p: 8,
            nodes: 2,
            msg_bytes: 1024,
            sessions: 16,
            physical_nodes: 4,
            profile: "noleland".into(),
        };
        let report = run_suite_full("unit", "noleland", &[], &[], &[session_case]);
        assert!(report.deterministic);
        assert_eq!(report.sessions.len(), 1);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
        let found = report.find_matching_session(&report.sessions[0]).unwrap();
        assert_eq!(found, &report.sessions[0]);
        let mut missing = report.sessions[0].clone();
        missing.sessions += 1;
        assert!(report.find_matching_session(&missing).is_none());
        // And the sweep reconstructs for the regress re-run path.
        let cases = crate::sessions::session_suite_from_report(&report).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].sessions, 16);
    }

    #[test]
    fn crypto_probe_marks_nondeterministic() {
        let report = sample_report().with_crypto(CryptoProbe {
            points: vec![CryptoProbePoint {
                cipher_suite: "aes-gcm".into(),
                msg_bytes: 4096,
                seal_mb_per_s: 1234.5,
                open_mb_per_s: 2345.6,
            }],
        });
        assert!(!report.deterministic);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }
}
