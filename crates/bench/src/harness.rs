//! The simulation driver: runs an algorithm in a phantom-payload world on a
//! calibrated cluster profile and reports the virtual latency.

use crate::stats::Stats;
use eag_core::{Algorithm, Collective};
use eag_netsim::{profile, ClusterProfile, Crash, FaultPlan, Mapping, Topology};
use eag_runtime::{run, run_crashable, CipherSuite, DataMode, RetryPolicy, WorldSpec};
use std::time::Duration;

/// One simulated cluster configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub p: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Process mapping.
    pub mapping: Mapping,
    /// Cluster profile name (`noleland`, `bridges2`, `unit`, `free`).
    pub profile: String,
    /// Repetitions per measurement (the paper averages 10 real runs; the
    /// simulator varies only through NIC-contention arrival order, so a few
    /// repetitions suffice).
    pub reps: usize,
    /// Model per-node NIC bandwidth sharing.
    pub nic_contention: bool,
    /// Data-pattern seed for real-payload runs. `None` runs phantom mode
    /// (length-only payloads, the default for latency cells); `Some(seed)`
    /// runs real AEAD over seeded pattern blocks, which also arms the
    /// data-plane copy probe (`memcpy_bytes`/`buf_allocs`) — phantom runs
    /// move no payload bytes, so their probe reading is trivially zero.
    pub data_seed: Option<u64>,
    /// The AEAD cipher suite ranks seal under (performed in real mode,
    /// priced in phantom mode). Virtual latencies are suite-invariant —
    /// the cost model charges by byte count, and the 28-byte framing is
    /// shared — so only real-mode cells distinguish suites in reports.
    pub suite: CipherSuite,
}

impl SimConfig {
    /// The paper's Noleland setup: p = 128 over N = 8.
    pub fn noleland(mapping: Mapping) -> Self {
        SimConfig {
            p: 128,
            nodes: 8,
            mapping,
            profile: "noleland".into(),
            reps: 3,
            nic_contention: true,
            data_seed: None,
            suite: CipherSuite::AesGcm128,
        }
    }

    /// The paper's non-power-of-two setup: p = 91 over N = 7.
    pub fn noleland_general(mapping: Mapping) -> Self {
        SimConfig {
            p: 91,
            nodes: 7,
            mapping,
            profile: "noleland".into(),
            reps: 3,
            nic_contention: true,
            data_seed: None,
            suite: CipherSuite::AesGcm128,
        }
    }

    /// The paper's Bridges-2 setup: p = 1024 over N = 16, block mapping.
    pub fn bridges2() -> Self {
        SimConfig {
            p: 1024,
            nodes: 16,
            mapping: Mapping::Block,
            profile: "bridges2".into(),
            reps: 2,
            nic_contention: true,
            data_seed: None,
            suite: CipherSuite::AesGcm128,
        }
    }

    /// Resolves the profile by name.
    pub fn cluster_profile(&self) -> ClusterProfile {
        profile::by_name(&self.profile)
            .unwrap_or_else(|| panic!("unknown profile {:?}", self.profile))
    }

    fn world_spec(&self) -> WorldSpec {
        let mode = match self.data_seed {
            Some(seed) => DataMode::Real { seed },
            None => DataMode::Phantom,
        };
        let mut spec = WorldSpec::new(
            Topology::new(self.p, self.nodes, self.mapping),
            self.cluster_profile(),
            mode,
        );
        spec.nic_contention = self.nic_contention;
        spec.suite = self.suite;
        spec
    }
}

/// Simulates `algo` gathering `m`-byte blocks under `cfg`; returns latency
/// statistics over `cfg.reps` runs. Every run also checks the all-gather
/// postcondition via origin tracking.
pub fn simulate(cfg: &SimConfig, algo: Algorithm, m: usize) -> Stats {
    simulate_collective(cfg, Collective::Allgather(algo), m)
}

/// Operation-generic version of [`simulate`]: runs any [`Collective`]
/// (broadcast, gather/scatter, all-to-all, the all-gathers) under `cfg`.
pub fn simulate_collective(cfg: &SimConfig, c: Collective, m: usize) -> Stats {
    let spec = cfg.world_spec();
    let samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let report = run(&spec, move |ctx| {
                let out = c.run(ctx, m);
                debug_assert!(out.is_complete());
            });
            report.latency_us
        })
        .collect();
    Stats::of(&samples)
}

/// Simulates `algo` under `cfg` and returns the raw per-rep latency samples
/// (µs, in run order) together with the critical-path [`Metrics`] of the
/// first run. The machine-readable report pipeline uses this so the JSON can
/// carry both the summary statistics *and* the samples they came from.
///
/// [`Metrics`]: eag_runtime::Metrics
pub fn simulate_samples(
    cfg: &SimConfig,
    algo: Algorithm,
    m: usize,
) -> (Vec<f64>, eag_runtime::Metrics) {
    simulate_collective_samples(cfg, Collective::Allgather(algo), m)
}

/// Operation-generic version of [`simulate_samples`].
pub fn simulate_collective_samples(
    cfg: &SimConfig,
    c: Collective,
    m: usize,
) -> (Vec<f64>, eag_runtime::Metrics) {
    let spec = cfg.world_spec();
    let mut samples = Vec::with_capacity(cfg.reps.max(1));
    let mut metrics = None;
    for _ in 0..cfg.reps.max(1) {
        let report = run(&spec, move |ctx| {
            let out = c.run(ctx, m);
            debug_assert!(out.is_complete());
        });
        samples.push(report.latency_us);
        if metrics.is_none() {
            metrics = Some(report.max_metrics());
        }
    }
    (samples, metrics.expect("at least one rep"))
}

/// Data-pattern seed for recovery measurements. Crash recovery needs real
/// payloads — survivor agreement seals actual failure bitmaps and the
/// degraded outputs are verified bit-exact against the input patterns —
/// unlike the phantom-mode latency paths above.
pub const RECOVERY_DATA_SEED: u64 = 7;

/// One crash-recovery measurement: the virtual latency of a fault-free
/// crash-tolerant all-gather versus the same collective surviving one
/// planned rank crash (detection + survivor agreement + shrink-and-recover
/// re-run over the survivors).
#[derive(Debug, Clone, Copy)]
pub struct RecoverySample {
    /// Virtual latency of the fault-free run, µs.
    pub clean_latency_us: f64,
    /// Virtual latency of the crashed run, µs (includes detection, the
    /// agreement rounds, and the degraded re-run).
    pub recovery_latency_us: f64,
    /// Ranks that survived and produced the degraded output.
    pub survivors: usize,
}

/// Builds the world for a recovery measurement. NIC contention is always
/// off and the NACK retry timer is pushed beyond any realistic wall-clock
/// run: retransmission races wall-clock timers against thread scheduling
/// and would perturb the virtual clock nondeterministically, while crash
/// detection itself is flag-based and never needs it. The resulting
/// latencies are bit-deterministic and safe for an exact-compare gate.
fn recovery_spec(cfg: &SimConfig, crashes: Vec<Crash>) -> WorldSpec {
    let mut spec = WorldSpec::new(
        Topology::new(cfg.p, cfg.nodes, cfg.mapping),
        cfg.cluster_profile(),
        DataMode::Real {
            seed: RECOVERY_DATA_SEED,
        },
    );
    spec.nic_contention = false;
    spec.suite = cfg.suite;
    spec.faults = FaultPlan {
        crashes,
        ..FaultPlan::default()
    };
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_secs(5),
        max_attempts: 3,
        backoff: 2.0,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    spec
}

/// Measures `algo` surviving the planned crash *schedule* — up to
/// `crashes.len()` ranks dying at their armed epochs and send steps —
/// against a fault-free reference of the same crash-tolerant collective.
/// Panics if no planned crash fires at all (the sample would silently
/// measure a clean run) or if any survivor's degraded output fails
/// verification.
pub fn simulate_recovery_schedule(
    cfg: &SimConfig,
    algo: Algorithm,
    m: usize,
    crashes: &[Crash],
) -> RecoverySample {
    simulate_collective_recovery_schedule(cfg, Collective::Allgather(algo), m, crashes)
}

/// Operation-generic version of [`simulate_recovery_schedule`]: any
/// [`Collective`] under a planned crash schedule, verified per-role (the
/// rooted and personalized operations have rank-dependent outputs).
pub fn simulate_collective_recovery_schedule(
    cfg: &SimConfig,
    c: Collective,
    m: usize,
    crashes: &[Crash],
) -> RecoverySample {
    // Every fired crash unwinds through panic machinery by design; keep the
    // expected unwinds out of bench output.
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(eag_runtime::quiet_expected_panics);

    let clean = run(&recovery_spec(cfg, Vec::new()), move |ctx| {
        let out = c.recover(ctx, m);
        c.verify(ctx.rank(), &out.output, RECOVERY_DATA_SEED);
    });
    let report = run_crashable(&recovery_spec(cfg, crashes.to_vec()), move |ctx| {
        let out = c.recover(ctx, m);
        c.verify(ctx.rank(), &out.output, RECOVERY_DATA_SEED);
        out
    });
    assert!(
        !report.crashed.is_empty(),
        "{c}: no crash of the planned schedule {crashes:?} ever fired — \
         the recovery sample would measure a clean run"
    );
    RecoverySample {
        clean_latency_us: clean.latency_us,
        recovery_latency_us: report.latency_us,
        survivors: cfg.p - report.crashed.len(),
    }
}

/// Single-crash convenience wrapper: `crash_rank` dies just before its send
/// step `crash_step`. See [`simulate_recovery_schedule`].
pub fn simulate_recovery(
    cfg: &SimConfig,
    algo: Algorithm,
    m: usize,
    crash_rank: usize,
    crash_step: u64,
) -> RecoverySample {
    simulate_recovery_schedule(cfg, algo, m, &[Crash::before(crash_rank, crash_step)])
}

/// Simulates and also returns the critical-path metrics (single run).
pub fn simulate_with_metrics(
    cfg: &SimConfig,
    algo: Algorithm,
    m: usize,
) -> (f64, eag_runtime::Metrics) {
    simulate_collective_with_metrics(cfg, Collective::Allgather(algo), m)
}

/// Operation-generic version of [`simulate_with_metrics`].
pub fn simulate_collective_with_metrics(
    cfg: &SimConfig,
    c: Collective,
    m: usize,
) -> (f64, eag_runtime::Metrics) {
    let spec = cfg.world_spec();
    let report = run(&spec, move |ctx| {
        let out = c.run(ctx, m);
        debug_assert!(out.is_complete());
    });
    (report.latency_us, report.max_metrics())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mapping: Mapping) -> SimConfig {
        SimConfig {
            p: 16,
            nodes: 4,
            mapping,
            profile: "noleland".into(),
            reps: 2,
            nic_contention: true,
            data_seed: None,
            suite: CipherSuite::AesGcm128,
        }
    }

    #[test]
    fn simulate_produces_positive_latency() {
        let s = simulate(&tiny(Mapping::Block), Algorithm::Hs2, 1024);
        assert!(s.mean > 0.0);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn all_algorithms_simulate_on_small_worlds() {
        let cfg = tiny(Mapping::Block);
        for &algo in Algorithm::all() {
            let s = simulate(&cfg, algo, 64);
            assert!(s.mean > 0.0, "{algo}");
        }
    }

    #[test]
    fn latency_grows_with_message_size() {
        let cfg = tiny(Mapping::Block);
        let small = simulate(&cfg, Algorithm::CRing, 64);
        let large = simulate(&cfg, Algorithm::CRing, 256 * 1024);
        assert!(large.mean > small.mean * 10.0);
    }

    #[test]
    fn recovery_costs_more_than_clean_and_reproduces_exactly() {
        let mut cfg = tiny(Mapping::Block);
        cfg.nic_contention = false;
        let a = simulate_recovery(&cfg, Algorithm::ORing, 1024, 0, 0);
        let b = simulate_recovery(&cfg, Algorithm::ORing, 1024, 0, 0);
        // Bit-deterministic: the exact-compare regress gate depends on it.
        assert_eq!(a.clean_latency_us, b.clean_latency_us);
        assert_eq!(a.recovery_latency_us, b.recovery_latency_us);
        assert_eq!(a.survivors, cfg.p - 1);
        assert!(a.recovery_latency_us > a.clean_latency_us);
    }

    #[test]
    fn multi_crash_schedule_reproduces_exactly() {
        let mut cfg = tiny(Mapping::Block);
        cfg.nic_contention = false;
        // Two epoch-0 crashes plus one armed inside the first agreement
        // instance: the hardest cell shape the committed baseline carries.
        let crashes = [
            Crash::before(0, 0),
            Crash::before(5, 1),
            Crash::before(9, 0).at_epoch(1),
        ];
        let a = simulate_recovery_schedule(&cfg, Algorithm::OBruck, 1024, &crashes);
        let b = simulate_recovery_schedule(&cfg, Algorithm::OBruck, 1024, &crashes);
        assert_eq!(a.clean_latency_us, b.clean_latency_us);
        assert_eq!(a.recovery_latency_us, b.recovery_latency_us);
        assert_eq!(a.survivors, b.survivors);
        assert!(a.survivors >= cfg.p - crashes.len());
        assert!(a.recovery_latency_us > a.clean_latency_us);
    }

    #[test]
    fn deterministic_without_contention() {
        let mut cfg = tiny(Mapping::Block);
        cfg.nic_contention = false;
        cfg.reps = 3;
        let s = simulate(&cfg, Algorithm::ORd, 4096);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }
}
