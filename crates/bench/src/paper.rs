//! The paper's published numbers (Tables III–VI), embedded for side-by-side
//! comparison. Values are transcribed from the IPDPS 2021 paper; latencies
//! in µs, overheads in percent, winner names as printed.

use crate::fmt::parse_size;

/// One published row of a best-scheme table.
#[derive(Debug, Clone)]
pub struct PaperRow {
    /// Message size in bytes.
    pub size: usize,
    /// Latency of unencrypted MPI, µs.
    pub mpi_latency_us: f64,
    /// Overhead of Naive, %.
    pub naive_overhead_pct: f64,
    /// Overhead of the best scheme, %.
    pub best_overhead_pct: f64,
    /// The winning scheme as named in the paper.
    pub best: &'static str,
}

fn row(size: &str, mpi: f64, naive: f64, best: f64, name: &'static str) -> PaperRow {
    PaperRow {
        size: parse_size(size).expect("valid size literal"),
        mpi_latency_us: mpi,
        naive_overhead_pct: naive,
        best_overhead_pct: best,
        best: name,
    }
}

/// Table III — Noleland, p = 128, N = 8, block-order mapping.
pub fn table3() -> Vec<PaperRow> {
    vec![
        row("1B", 10.64, 293.20, 31.49, "O-RD2"),
        row("2B", 9.26, 342.86, 51.49, "HS1"),
        row("4B", 9.35, 348.05, 51.50, "HS1"),
        row("8B", 9.52, 364.69, 55.96, "O-RD"),
        row("16B", 9.91, 309.57, 53.06, "O-RD"),
        row("32B", 10.87, 301.63, 50.86, "O-RD"),
        row("64B", 12.77, 265.33, 39.14, "O-RD"),
        row("1KB", 56.58, 111.57, 9.91, "O-RD"),
        row("2KB", 108.43, 95.54, -0.05, "C-RD"),
        row("4KB", 227.00, 75.93, -16.02, "C-RD"),
        row("8KB", 407.83, 92.21, 6.25, "C-Ring"),
        row("16KB", 1602.35, 59.35, -45.89, "HS2"),
        row("32KB", 2522.14, 87.22, -33.54, "HS2"),
        row("256KB", 15902.40, 136.51, -12.42, "HS2"),
        row("2MB", 136604.31, 137.50, -13.97, "HS2"),
    ]
}

/// Table IV — Noleland, p = 128, N = 8, cyclic-order mapping.
pub fn table4() -> Vec<PaperRow> {
    vec![
        row("1B", 10.27, 305.67, 47.70, "O-RD"),
        row("32B", 10.18, 324.35, 51.21, "O-RD"),
        row("1KB", 50.10, 128.59, 11.54, "O-RD"),
        row("2KB", 93.99, 104.73, 7.33, "O-RD"),
        row("4KB", 862.26, 18.21, -76.50, "O-RD2"),
        row("8KB", 1633.01, 20.79, -75.16, "HS2"),
        row("32KB", 5541.96, 50.85, -63.54, "HS2"),
        row("64KB", 10889.97, 44.12, -66.45, "C-Ring"),
        row("256KB", 43355.27, 38.92, -61.86, "C-Ring"),
        row("2MB", 346830.02, 39.32, -60.92, "C-Ring"),
    ]
}

/// Table V — Noleland, p = 91, N = 7, block-order mapping.
pub fn table5() -> Vec<PaperRow> {
    vec![
        row("1B", 15.85, 166.60, -0.49, "HS1"),
        row("32B", 18.97, 135.55, -6.05, "HS1"),
        row("256B", 47.46, 65.98, -33.78, "HS1"),
        row("512B", 76.64, 48.20, -40.40, "C-RD"),
        row("1KB", 138.91, 35.45, -54.35, "C-RD"),
        row("4KB", 154.49, 74.46, 5.42, "C-RD"),
        row("8KB", 261.20, 91.08, 15.43, "C-Ring"),
        row("32KB", 1586.33, 77.23, -32.57, "C-Ring"),
        row("64KB", 3056.25, 74.10, -30.56, "HS2"),
        row("256KB", 11068.30, 91.04, -19.26, "HS2"),
        row("2MB", 92496.05, 87.95, -19.44, "HS2"),
    ]
}

/// Table VI — Bridges-2, p = 1024, N = 16.
pub fn table6() -> Vec<PaperRow> {
    vec![
        row("1B", 118.57, 344.50, -32.47, "HS1"),
        row("64B", 167.21, 201.26, 16.43, "HS1"),
        row("128B", 250.93, 512.47, 2.22, "HS1"),
        row("512B", 750.43, 265.85, 16.20, "O-RD"),
        row("1KB", 1438.99, 191.99, -3.15, "HS1"),
        row("2KB", 6882.52, 11.18, -71.25, "HS2"),
        row("16KB", 62871.60, 21.52, -78.10, "HS2"),
        row("64KB", 250752.32, 20.88, -80.14, "HS2"),
        row("256KB", 1007353.08, 20.85, -79.41, "HS2"),
        row("512KB", 2007558.81, 20.75, -79.57, "HS2"),
    ]
}

/// Renders a measured table side by side with the paper's published values.
pub fn render_side_by_side(
    title: &str,
    measured: &[crate::tables::BestSchemeRow],
    published: &[PaperRow],
) -> String {
    use crate::fmt::{latency_label, size_label};
    let mut out = format!("### {title} — measured vs paper\n\n");
    out.push_str(
        "| Size | MPI (ours) | MPI (paper) | Naive % (ours/paper) | Best % (ours/paper) | Best (ours/paper) |\n\
         |---|---|---|---|---|---|\n",
    );
    for m in measured {
        let p = published.iter().find(|r| r.size == m.size);
        match p {
            Some(p) => out.push_str(&format!(
                "| {} | {} | {} | {:+.1} / {:+.1} | {:+.1} / {:+.1} | {} / {} |\n",
                size_label(m.size),
                latency_label(m.mpi_latency_us),
                latency_label(p.mpi_latency_us),
                m.naive_overhead_pct,
                p.naive_overhead_pct,
                m.best_overhead_pct,
                p.best_overhead_pct,
                m.best,
                p.best
            )),
            None => out.push_str(&format!(
                "| {} | {} | — | {:+.1} / — | {:+.1} / — | {} / — |\n",
                size_label(m.size),
                latency_label(m.mpi_latency_us),
                m.naive_overhead_pct,
                m.best_overhead_pct,
                m.best
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_nonempty() {
        for t in [table3(), table4(), table5(), table6()] {
            assert!(t.len() >= 10);
            assert!(t.windows(2).all(|w| w[0].size < w[1].size));
        }
    }

    #[test]
    fn paper_signs_match_the_papers_story() {
        // Naive is always a slowdown in the published data…
        for t in [table3(), table4(), table5(), table6()] {
            assert!(t.iter().all(|r| r.naive_overhead_pct > 0.0));
            // …and the best scheme always beats Naive.
            assert!(t.iter().all(|r| r.best_overhead_pct < r.naive_overhead_pct));
        }
        // Large messages go negative on every table.
        for t in [table3(), table4(), table5(), table6()] {
            assert!(t.last().unwrap().best_overhead_pct < 0.0);
        }
    }

    #[test]
    fn side_by_side_renders_both_columns() {
        let measured = vec![crate::tables::BestSchemeRow {
            size: 1,
            mpi_latency_us: 7.3,
            naive_overhead_pct: 470.0,
            best_overhead_pct: 22.0,
            best: eag_core::Algorithm::ORd2,
        }];
        let md = render_side_by_side("Table III", &measured, &table3());
        assert!(md.contains("+470.0 / +293.2"));
        assert!(md.contains("O-RD2 / O-RD2"));
    }
}
