//! Message-size parsing and formatting ("1B", "4KB", "2MB", …).

/// Formats a byte count the way the paper labels its axes.
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Parses a size label back to bytes (`"512KB"` → 524288). Returns `None`
/// for malformed input.
pub fn parse_size(label: &str) -> Option<usize> {
    let s = label.trim().to_ascii_uppercase();
    let (digits, mult) = if let Some(d) = s.strip_suffix("MB") {
        (d, 1024 * 1024)
    } else if let Some(d) = s.strip_suffix("KB") {
        (d, 1024)
    } else if let Some(d) = s.strip_suffix("B") {
        (d, 1)
    } else {
        (s.as_str(), 1)
    };
    digits.trim().parse::<usize>().ok().map(|v| v * mult)
}

/// Formats a latency in µs with the paper's precision.
pub fn latency_label(us: f64) -> String {
    if us >= 10_000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{us:.2}us")
    }
}

/// The message-size sweep of the paper's Table III.
pub fn table3_sizes() -> Vec<usize> {
    [
        "1B", "2B", "4B", "8B", "16B", "32B", "64B", "1KB", "2KB", "4KB", "8KB", "16KB", "32KB",
        "256KB", "2MB",
    ]
    .iter()
    .map(|s| parse_size(s).unwrap())
    .collect()
}

/// The message-size sweep of the paper's Table IV.
pub fn table4_sizes() -> Vec<usize> {
    [
        "1B", "32B", "1KB", "2KB", "4KB", "8KB", "32KB", "64KB", "256KB", "2MB",
    ]
    .iter()
    .map(|s| parse_size(s).unwrap())
    .collect()
}

/// The message-size sweep of the paper's Table V.
pub fn table5_sizes() -> Vec<usize> {
    [
        "1B", "32B", "256B", "512B", "1KB", "4KB", "8KB", "32KB", "64KB", "256KB", "2MB",
    ]
    .iter()
    .map(|s| parse_size(s).unwrap())
    .collect()
}

/// The message-size sweep of the paper's Table VI.
pub fn table6_sizes() -> Vec<usize> {
    [
        "1B", "64B", "128B", "512B", "1KB", "2KB", "16KB", "64KB", "256KB", "512KB",
    ]
    .iter()
    .map(|s| parse_size(s).unwrap())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        for bytes in [1usize, 2, 64, 1024, 8192, 524288, 2 * 1024 * 1024] {
            assert_eq!(parse_size(&size_label(bytes)), Some(bytes));
        }
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(size_label(1), "1B");
        assert_eq!(size_label(2048), "2KB");
        assert_eq!(size_label(2 * 1024 * 1024), "2MB");
        assert_eq!(size_label(1500), "1500B");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_size("abc"), None);
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("12XB"), None);
    }

    #[test]
    fn sweeps_are_sorted() {
        for sizes in [
            table3_sizes(),
            table4_sizes(),
            table5_sizes(),
            table6_sizes(),
        ] {
            assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
