//! The concurrent-sessions bench axis: service throughput and tail
//! latency versus the number of tenant sessions sharing the fabric.
//!
//! The paper benchmarks one collective owning the machine; the ROADMAP
//! north star is a *service* running many small encrypted collectives at
//! once. This module measures that axis deterministically so the Welch
//! regression gate can bite on tail latencies:
//!
//! 1. Run the session's collective **once**, standalone and
//!    contention-free, on the virtual-time simulator — bit-deterministic
//!    latency plus, from the wiretap, the per-node inter-node egress
//!    demand.
//! 2. Push `sessions` copies of that demand through shared owner-scoped
//!    [`NodeNic`] ledgers (logical node `j` of session `k` lands on
//!    physical NIC `(j + k) % physical_nodes`, all sessions starting at
//!    virtual t = 0). A session completes when its own critical path is
//!    done *and* its last byte has cleared the shared NICs, so
//!    per-session completion times spread into the tail the moment the
//!    fabric saturates.
//!
//! Every step is pure `f64` arithmetic in a fixed order: the sweep is
//! bit-deterministic, scales to 10 000 sessions in milliseconds (ledger
//! math, not 10 000 world runs), and a single session reproduces its
//! standalone latency exactly — the contention model is calibrated to
//! vanish at N = 1.

use crate::report::LatencyStats;
use crate::stats::Stats;
use eag_core::{allgather, Algorithm};
use eag_netsim::nic::NodeNic;
use eag_netsim::{profile, Mapping, Topology};
use eag_runtime::{run, DataMode, WorldSpec};
use serde::{Deserialize, Serialize};

/// One point of the sessions axis: a session shape and how many of them
/// run concurrently.
#[derive(Debug, Clone)]
pub struct SessionCase {
    /// Algorithm every session runs.
    pub algo: Algorithm,
    /// Ranks per session.
    pub p: usize,
    /// Logical nodes per session.
    pub nodes: usize,
    /// Per-process message size in bytes.
    pub msg_bytes: usize,
    /// Concurrent sessions pushed through the shared fabric.
    pub sessions: usize,
    /// Physical nodes (NICs) the service spreads sessions over.
    pub physical_nodes: usize,
    /// Cluster profile name.
    pub profile: String,
}

/// One measured sessions-axis cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEntry {
    /// Algorithm name as accepted by `Algorithm::by_name`.
    pub algorithm: String,
    /// Ranks per session.
    pub p: u64,
    /// Logical nodes per session.
    pub nodes: u64,
    /// Per-process message size in bytes.
    pub msg_bytes: u64,
    /// Concurrent sessions (part of the entry's identity).
    pub sessions: u64,
    /// Physical NICs sessions were spread over (identity).
    pub physical_nodes: u64,
    /// Latency of one session running alone, µs (the N = 1 anchor).
    pub standalone_latency_us: f64,
    /// Per-session completion-time statistics (p50/p95/p99 are the tail
    /// the regression gate watches). `samples_us` is left empty: at 10 000
    /// sessions the raw samples would dominate the report, and the sweep
    /// is deterministic — re-running it reproduces them bit-exactly.
    pub latency: LatencyStats,
    /// Service throughput: total inter-node wire bytes across all
    /// sessions divided by the makespan (B/µs ≡ MB/s).
    pub throughput_mb_per_s: f64,
}

/// Session counts of the smoke sweep: 1 → 10k, log-spaced.
pub const SMOKE_SESSION_COUNTS: [usize; 5] = [1, 10, 100, 1000, 10_000];

/// The fixed sessions-axis smoke sweep behind the committed baseline: two
/// small-collective shapes (a leader-routed and a concurrent algorithm),
/// each swept over [`SMOKE_SESSION_COUNTS`] concurrent sessions on a
/// 4-node physical fabric. Deterministic by construction.
pub fn smoke_session_suite() -> Vec<SessionCase> {
    let mut cases = Vec::new();
    for (algo, msg_bytes) in [(Algorithm::ORing, 1024), (Algorithm::CRing, 4096)] {
        for &sessions in &SMOKE_SESSION_COUNTS {
            cases.push(SessionCase {
                algo,
                p: 8,
                nodes: 2,
                msg_bytes,
                sessions,
                physical_nodes: 4,
                profile: "noleland".into(),
            });
        }
    }
    cases
}

/// Runs one sessions-axis cell. See the [module docs](self) for the model.
pub fn run_session_case(case: &SessionCase) -> SessionEntry {
    let prof = profile::by_name(&case.profile)
        .unwrap_or_else(|| panic!("unknown profile {:?}", case.profile));
    let nic_bw = prof.model.nic_bandwidth;

    // Step 1: the standalone, contention-free reference run.
    let mut spec = WorldSpec::new(
        Topology::new(case.p, case.nodes, Mapping::Block),
        prof,
        DataMode::Phantom,
    );
    spec.nic_contention = false;
    let (algo, m) = (case.algo, case.msg_bytes);
    let report = run(&spec, move |ctx| {
        let out = allgather(ctx, algo, m);
        debug_assert!(out.is_complete());
    });
    let standalone = report.latency_us;

    // Per-logical-node inter-node egress, from the wiretap.
    let mut egress = vec![0u64; case.nodes];
    for f in report.wiretap.frames() {
        egress[spec.topology.node_of(f.src)] += f.len as u64;
    }

    // Step 2: N sessions' demand through the shared owner-scoped ledgers.
    let physical = case.physical_nodes.max(1);
    let nics: Vec<NodeNic> = (0..physical).map(|_| NodeNic::new(nic_bw)).collect();
    let mut completions = Vec::with_capacity(case.sessions);
    for k in 0..case.sessions.max(1) {
        let owner = k as u64 + 1;
        let mut finish = standalone;
        for (j, &bytes) in egress.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let drain = nics[(j + k) % physical].reserve_for(owner, 0.0, bytes as usize);
            // After this session's last byte clears the shared NIC it
            // still owes the non-NIC remainder of its critical path
            // (compute, intra-node hops, latency terms). With an empty
            // ledger drain == occupancy, so N = 1 reproduces the
            // standalone latency exactly.
            let tail = if nic_bw.is_finite() {
                (standalone - bytes as f64 / nic_bw).max(0.0)
            } else {
                0.0
            };
            finish = finish.max(drain + tail);
        }
        completions.push(finish);
    }

    let stats = Stats::of(&completions);
    let per_session_bytes: u64 = egress.iter().sum();
    let total_bytes = per_session_bytes * case.sessions.max(1) as u64;
    let throughput = if stats.max > 0.0 {
        total_bytes as f64 / stats.max
    } else {
        0.0
    };
    SessionEntry {
        algorithm: case.algo.name().to_string(),
        p: case.p as u64,
        nodes: case.nodes as u64,
        msg_bytes: case.msg_bytes as u64,
        sessions: case.sessions as u64,
        physical_nodes: case.physical_nodes as u64,
        standalone_latency_us: standalone,
        latency: LatencyStats::from_stats(&stats, &[]),
        throughput_mb_per_s: throughput,
    }
}

/// Reconstructs the sessions cases a report carried, so `eag regress` can
/// re-run them when no `--current` report is given.
pub fn session_suite_from_report(
    report: &crate::report::BenchReport,
) -> Result<Vec<SessionCase>, String> {
    report
        .sessions
        .iter()
        .map(|e| {
            let algo = Algorithm::by_name(&e.algorithm)
                .ok_or_else(|| format!("unknown algorithm {:?} in report", e.algorithm))?;
            Ok(SessionCase {
                algo,
                p: e.p as usize,
                nodes: e.nodes as usize,
                msg_bytes: e.msg_bytes as usize,
                sessions: e.sessions as usize,
                physical_nodes: e.physical_nodes as usize,
                profile: report.profile.clone(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(sessions: usize) -> SessionCase {
        SessionCase {
            algo: Algorithm::ORing,
            p: 8,
            nodes: 2,
            msg_bytes: 1024,
            sessions,
            physical_nodes: 4,
            profile: "noleland".into(),
        }
    }

    #[test]
    fn single_session_reproduces_standalone_latency() {
        let e = run_session_case(&case(1));
        assert_eq!(e.latency.mean_us, e.standalone_latency_us);
        assert_eq!(e.latency.p99_us, e.standalone_latency_us);
        assert!(e.throughput_mb_per_s > 0.0);
    }

    #[test]
    fn contention_stretches_the_tail() {
        let one = run_session_case(&case(1));
        let many = run_session_case(&case(64));
        assert_eq!(many.standalone_latency_us, one.standalone_latency_us);
        // The fabric saturates: later sessions queue, so the p99 pulls
        // away from the median and both exceed the lone-session latency.
        assert!(many.latency.p99_us > one.latency.p99_us);
        assert!(many.latency.p99_us >= many.latency.median_us);
        assert!(many.latency.max_us >= many.latency.p99_us);
    }

    #[test]
    fn sweep_is_bit_deterministic() {
        let a = run_session_case(&case(32));
        let b = run_session_case(&case(32));
        assert_eq!(a, b);
    }

    #[test]
    fn smoke_session_suite_shape() {
        let cases = smoke_session_suite();
        assert_eq!(cases.len(), 2 * SMOKE_SESSION_COUNTS.len());
        assert!(cases.iter().all(|c| c.physical_nodes == 4));
        assert!(cases.iter().all(|c| c.profile == "noleland"));
        assert!(cases.iter().any(|c| c.sessions == 10_000));
    }
}
