//! Local calibration: measure *this machine's* crypto and memory speeds and
//! fit the Hockney cost constants, producing a [`ClusterProfile`] whose
//! encryption/decryption/copy terms are real rather than borrowed from the
//! paper's clusters. (Network terms cannot be measured on one machine; they
//! are inherited from a base profile.)
//!
//! This is exactly the measurement behind the paper's Figure 1, turned into
//! a reusable tool: `eag calibrate` prints the fitted constants and the
//! sweep can run on them. Calibration is per cipher suite —
//! [`calibrate_local_suite`] fits each backend's own αe/βe so the simulator
//! can answer "which algorithm wins *under this AEAD on this machine*",
//! not just under the paper's AES-GCM numbers.

use eag_crypto::{CipherSuite, Key, Nonce};
use eag_netsim::{profile, ClusterProfile};
use std::time::Instant;

/// One measured (size, seconds-per-op) sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Message size in bytes.
    pub bytes: usize,
    /// Mean seconds per operation at that size.
    pub secs_per_op: f64,
}

/// Least-squares fit of `t(m) = alpha + m/bandwidth` over samples.
/// Returns `(alpha_us, bandwidth_bytes_per_us)`.
pub fn fit_hockney(samples: &[Sample]) -> (f64, f64) {
    assert!(samples.len() >= 2, "need at least two sizes to fit");
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.bytes as f64).sum();
    let sy: f64 = samples.iter().map(|s| s.secs_per_op * 1e6).sum();
    let sxx: f64 = samples.iter().map(|s| (s.bytes as f64).powi(2)).sum();
    let sxy: f64 = samples
        .iter()
        .map(|s| s.bytes as f64 * s.secs_per_op * 1e6)
        .sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > f64::EPSILON, "degenerate sample set");
    let beta = (n * sxy - sx * sy) / denom; // µs per byte
    let alpha = (sy - beta * sx) / n;
    let bandwidth = if beta > 0.0 {
        1.0 / beta
    } else {
        f64::INFINITY
    };
    (alpha.max(0.0), bandwidth)
}

fn time_op(mut op: impl FnMut(), per_op_budget: f64) -> f64 {
    // Warm up, then time enough iterations for ~`per_op_budget` seconds.
    for _ in 0..3 {
        op();
    }
    let probe = Instant::now();
    op();
    let one = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = ((per_op_budget / one).ceil() as usize).clamp(5, 20_000);
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the default AES-128-GCM seal cost across `sizes`.
pub fn measure_seal(sizes: &[usize]) -> Vec<Sample> {
    measure_seal_suite(CipherSuite::AesGcm128, sizes)
}

/// Measures one suite's seal cost across `sizes` on this machine.
pub fn measure_seal_suite(suite: CipherSuite, sizes: &[usize]) -> Vec<Sample> {
    let aead = suite.aead_for_key(&Key::from_bytes([0x5Au8; 16]));
    let nonce = Nonce::from_bytes([3u8; 12]);
    sizes
        .iter()
        .map(|&bytes| {
            let mut data = vec![0xC3u8; bytes];
            // Sealing in place re-encrypts the previous ciphertext each
            // iteration; AEAD cost is content-independent, so the timing
            // stands.
            let secs = time_op(
                || {
                    std::hint::black_box(aead.seal_in_place_detached(&nonce, b"", &mut data));
                },
                0.02,
            );
            Sample {
                bytes,
                secs_per_op: secs,
            }
        })
        .collect()
}

/// Measures the default AES-128-GCM open cost across `sizes`.
pub fn measure_open(sizes: &[usize]) -> Vec<Sample> {
    measure_open_suite(CipherSuite::AesGcm128, sizes)
}

/// Measures one suite's open cost across `sizes` on this machine. Each
/// timed operation restores the ciphertext and opens it in place (opening
/// consumes the buffer), mirroring what a receiving rank actually does
/// with an arrived frame.
pub fn measure_open_suite(suite: CipherSuite, sizes: &[usize]) -> Vec<Sample> {
    let aead = suite.aead_for_key(&Key::from_bytes([0x5Au8; 16]));
    let nonce = Nonce::from_bytes([3u8; 12]);
    sizes
        .iter()
        .map(|&bytes| {
            let mut ciphertext = vec![0xC3u8; bytes];
            let tag = aead.seal_in_place_detached(&nonce, b"", &mut ciphertext);
            let mut scratch = vec![0u8; bytes];
            let secs = time_op(
                || {
                    scratch.copy_from_slice(&ciphertext);
                    aead.open_in_place_detached(&nonce, b"", &mut scratch, &tag)
                        .expect("frame is authentic");
                    std::hint::black_box(&scratch);
                },
                0.02,
            );
            Sample {
                bytes,
                secs_per_op: secs,
            }
        })
        .collect()
}

/// Measures plain memcpy cost across `sizes` on this machine.
pub fn measure_memcpy(sizes: &[usize]) -> Vec<Sample> {
    sizes
        .iter()
        .map(|&bytes| {
            let src = vec![0xE1u8; bytes.max(1)];
            let mut dst = vec![0u8; bytes.max(1)];
            let secs = time_op(
                || {
                    dst.copy_from_slice(std::hint::black_box(&src));
                    std::hint::black_box(&dst);
                },
                0.01,
            );
            Sample {
                bytes,
                secs_per_op: secs,
            }
        })
        .collect()
}

/// The default size grid for calibration.
pub fn calibration_sizes() -> Vec<usize> {
    vec![
        256,
        1024,
        4 * 1024,
        16 * 1024,
        64 * 1024,
        256 * 1024,
        1024 * 1024,
    ]
}

/// A calibrated profile: network terms from `base`, crypto and copy terms
/// measured on this machine. Returns the profile plus the raw samples for
/// reporting.
pub struct Calibration {
    /// The resulting profile (named `<base>-local` for the default AES-GCM
    /// suite, `<base>-local-<suite>` otherwise).
    pub profile: ClusterProfile,
    /// The cipher suite the crypto terms were measured under.
    pub suite: CipherSuite,
    /// Seal measurements.
    pub seal: Vec<Sample>,
    /// Open measurements.
    pub open: Vec<Sample>,
    /// Memcpy measurements.
    pub memcpy: Vec<Sample>,
}

/// Runs the full calibration against a named base profile under the
/// default AES-GCM suite (profile named `<base>-local`).
pub fn calibrate_local(base: &str) -> Option<Calibration> {
    calibrate_local_suite(base, CipherSuite::AesGcm128)
}

/// Runs the full calibration against a named base profile with the crypto
/// terms measured under `suite`. The fitted profile keeps the historical
/// `<base>-local` name for AES-GCM and is named `<base>-local-<suite>` for
/// the other suites, so per-suite profiles can coexist in one report.
pub fn calibrate_local_suite(base: &str, suite: CipherSuite) -> Option<Calibration> {
    let mut prof = profile::by_name(base)?;
    let sizes = calibration_sizes();
    let seal = measure_seal_suite(suite, &sizes);
    let open = measure_open_suite(suite, &sizes);
    let memcpy = measure_memcpy(&sizes);

    let (enc_alpha, enc_bw) = fit_hockney(&seal);
    let (dec_alpha, dec_bw) = fit_hockney(&open);
    let (copy_alpha, copy_bw) = fit_hockney(&memcpy);

    prof.name = match suite {
        CipherSuite::AesGcm128 => format!("{base}-local"),
        other => format!("{base}-local-{other}"),
    };
    prof.model.crypto.enc_alpha_us = enc_alpha;
    prof.model.crypto.enc_bandwidth = enc_bw;
    prof.model.crypto.dec_alpha_us = dec_alpha;
    prof.model.crypto.dec_bandwidth = dec_bw;
    prof.model.copy_alpha_us = copy_alpha;
    prof.model.copy_bandwidth = copy_bw;

    Some(Calibration {
        profile: prof,
        suite,
        seal,
        open,
        memcpy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_affine_data() {
        // t(m) = 2 µs + m / 5000 B/µs.
        let samples: Vec<Sample> = [1000usize, 2000, 8000, 64000]
            .iter()
            .map(|&bytes| Sample {
                bytes,
                secs_per_op: (2.0 + bytes as f64 / 5000.0) * 1e-6,
            })
            .collect();
        let (alpha, bw) = fit_hockney(&samples);
        assert!((alpha - 2.0).abs() < 1e-6, "alpha {alpha}");
        assert!((bw - 5000.0).abs() < 1e-3, "bw {bw}");
    }

    #[test]
    fn fit_clamps_negative_alpha_to_zero() {
        let samples = vec![
            Sample {
                bytes: 1000,
                secs_per_op: 1e-7,
            },
            Sample {
                bytes: 100_000,
                secs_per_op: 2e-5,
            },
        ];
        let (alpha, bw) = fit_hockney(&samples);
        assert!(alpha >= 0.0);
        assert!(bw > 0.0);
    }

    #[test]
    fn seal_measurement_is_sane() {
        let samples = measure_seal(&[1024, 64 * 1024]);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.secs_per_op > 0.0);
        }
        // Larger messages take longer.
        assert!(samples[1].secs_per_op > samples[0].secs_per_op);
    }

    #[test]
    fn calibrate_produces_usable_profile() {
        let cal = calibrate_local("noleland").expect("base exists");
        assert_eq!(cal.profile.name, "noleland-local");
        assert_eq!(cal.suite, CipherSuite::AesGcm128);
        let m = &cal.profile.model;
        assert!(m.crypto.enc_bandwidth > 0.0 && m.crypto.enc_bandwidth.is_finite());
        assert!(m.copy_bandwidth > 0.0);
        // Network terms inherited from the base.
        assert_eq!(m.inter.bandwidth, profile::noleland().model.inter.bandwidth);
    }

    #[test]
    fn per_suite_calibrations_get_distinct_profile_names() {
        // Tiny grids keep this test fast; the fit only needs two sizes.
        for suite in CipherSuite::ALL {
            let seal = measure_seal_suite(suite, &[256, 4096]);
            assert_eq!(seal.len(), 2);
            assert!(seal.iter().all(|s| s.secs_per_op > 0.0), "{suite}");
            let open = measure_open_suite(suite, &[256, 4096]);
            assert!(open.iter().all(|s| s.secs_per_op > 0.0), "{suite}");
        }
        let cal =
            calibrate_local_suite("noleland", CipherSuite::ChaCha20Poly1305).expect("base exists");
        assert_eq!(cal.profile.name, "noleland-local-chacha20-poly1305");
        assert_eq!(cal.suite, CipherSuite::ChaCha20Poly1305);
    }

    #[test]
    fn unknown_base_yields_none() {
        assert!(calibrate_local("atlantis").is_none());
    }
}
