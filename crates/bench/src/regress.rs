//! Statistical regression gating between two benchmark reports.
//!
//! `eag regress --baseline BENCH_x.json` compares a current report against
//! a committed baseline entry-by-entry and fails (nonzero exit) only when a
//! latency regression is **both** large (mean slowdown beyond a threshold)
//! **and** statistically significant (a Welch two-sample t-test rejects
//! "same mean" at the configured confidence). Requiring both keeps the gate
//! from flapping on noise while still catching real slowdowns; on the
//! deterministic smoke suite the per-entry standard deviation is 0 and the
//! test degenerates to an exact mean comparison, so an identical re-run
//! always passes and any genuine slowdown beyond the threshold always
//! fails.
//!
//! Metric drift (the paper's six cost counters changing at all) is reported
//! as a failure too: those counters are exact algorithm properties, so any
//! change is a behavioral change, not noise.

use crate::report::{BenchEntry, BenchReport, RecoveryEntry};
use crate::sessions::SessionEntry;
use std::fmt;

/// Gate configuration.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Mean slowdown (percent) tolerated before an entry can fail the
    /// gate. Speedups never fail.
    pub threshold_pct: f64,
    /// Confidence level for the Welch t-test (e.g. `0.95`). A slowdown
    /// only fails the gate if it is significant at this level — except
    /// when both sides have zero variance, where means are compared
    /// directly.
    pub confidence: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            threshold_pct: 10.0,
            confidence: 0.95,
        }
    }
}

/// Why one entry passed or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold, or slower but not statistically significant.
    Pass,
    /// Faster than baseline beyond the threshold (reported, never fails).
    Improved,
    /// Slower than baseline beyond the threshold and significant.
    Regressed,
    /// The mean held but the tail did not: p99 latency slower than
    /// baseline beyond the threshold and significant. Split out from
    /// [`Verdict::Regressed`] so a tail-only slowdown — the failure mode a
    /// multi-tenant service cares about most — is named in the gate output.
    TailRegressed,
    /// The paper's cost metrics changed — a behavioral change.
    MetricsDrift,
    /// Present in only one of the two reports.
    Unmatched,
}

/// Comparison outcome for one entry.
#[derive(Debug, Clone)]
pub struct EntryComparison {
    /// Identity of the compared entry, e.g. `hs2 p=16 block 1024B`.
    pub label: String,
    /// Baseline mean latency (µs); NaN when unmatched.
    pub baseline_mean_us: f64,
    /// Current mean latency (µs); NaN when unmatched.
    pub current_mean_us: f64,
    /// Mean latency change in percent (positive = slower).
    pub delta_pct: f64,
    /// Welch t statistic of the comparison (0 when both stds are zero).
    pub t_stat: f64,
    /// Whether the latency difference is statistically significant.
    pub significant: bool,
    /// The verdict.
    pub verdict: Verdict,
}

impl fmt::Display for EntryComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<34} {:>12.3} -> {:>12.3} µs  {:>+8.2}%  {}",
            self.label,
            self.baseline_mean_us,
            self.current_mean_us,
            self.delta_pct,
            match self.verdict {
                Verdict::Pass => "ok",
                Verdict::Improved => "IMPROVED",
                Verdict::Regressed => "REGRESSED",
                Verdict::TailRegressed => "TAIL REGRESSED (p99)",
                Verdict::MetricsDrift => "METRICS DRIFT",
                Verdict::Unmatched => "UNMATCHED",
            }
        )
    }
}

/// Full gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-entry comparisons, in current-report order (then baseline-only
    /// leftovers).
    pub comparisons: Vec<EntryComparison>,
    /// Overall pass/fail: fails on any `Regressed`, `MetricsDrift`, or
    /// `Unmatched` entry.
    pub pass: bool,
}

impl GateReport {
    /// Count of entries with the given verdict.
    pub fn count(&self, verdict: &Verdict) -> usize {
        self.comparisons
            .iter()
            .filter(|c| c.verdict == *verdict)
            .count()
    }
}

fn entry_label(e: &BenchEntry) -> String {
    format!(
        "{}/{} p={} {:?} {}B",
        e.operation, e.algorithm, e.p, e.mapping, e.msg_bytes
    )
}

fn recovery_label(e: &RecoveryEntry) -> String {
    let schedule = e
        .crashes
        .iter()
        .map(|c| {
            format!(
                "r{}@s{}{}",
                c.rank,
                c.step,
                if c.epoch > 0 {
                    format!("e{}", c.epoch)
                } else {
                    String::new()
                }
            )
        })
        .collect::<Vec<_>>()
        .join("+");
    format!(
        "recover {}/{} p={} {:?} {}B {schedule}",
        e.operation, e.algorithm, e.p, e.mapping, e.msg_bytes
    )
}

fn session_label(e: &SessionEntry) -> String {
    format!(
        "sessions {} p={} {}B x{} nic{}",
        e.algorithm, e.p, e.msg_bytes, e.sessions, e.physical_nodes
    )
}

/// Compares `current` against `baseline` under `gate`.
pub fn compare(baseline: &BenchReport, current: &BenchReport, gate: &GateConfig) -> GateReport {
    let mut comparisons = Vec::new();
    for cur in &current.entries {
        match baseline.find_matching(cur) {
            Some(base) => comparisons.push(compare_entry(base, cur, gate)),
            None => comparisons.push(unmatched(cur, "missing from baseline")),
        }
    }
    for base in &baseline.entries {
        if current.find_matching(base).is_none() {
            comparisons.push(unmatched(base, "missing from current"));
        }
    }
    for cur in &current.recovery {
        match baseline.find_matching_recovery(cur) {
            Some(base) => comparisons.push(compare_recovery(base, cur, gate)),
            None => comparisons.push(unmatched_recovery(cur, "missing from baseline")),
        }
    }
    for base in &baseline.recovery {
        if current.find_matching_recovery(base).is_none() {
            comparisons.push(unmatched_recovery(base, "missing from current"));
        }
    }
    for cur in &current.sessions {
        match baseline.find_matching_session(cur) {
            Some(base) => comparisons.push(compare_session(base, cur, gate)),
            None => comparisons.push(unmatched_session(cur, "missing from baseline")),
        }
    }
    for base in &baseline.sessions {
        if current.find_matching_session(base).is_none() {
            comparisons.push(unmatched_session(base, "missing from current"));
        }
    }
    let pass = comparisons
        .iter()
        .all(|c| matches!(c.verdict, Verdict::Pass | Verdict::Improved));
    GateReport { comparisons, pass }
}

fn unmatched(e: &BenchEntry, why: &str) -> EntryComparison {
    EntryComparison {
        label: format!("{} ({why})", entry_label(e)),
        baseline_mean_us: f64::NAN,
        current_mean_us: f64::NAN,
        delta_pct: f64::NAN,
        t_stat: f64::NAN,
        significant: false,
        verdict: Verdict::Unmatched,
    }
}

fn unmatched_recovery(e: &RecoveryEntry, why: &str) -> EntryComparison {
    EntryComparison {
        label: format!("{} ({why})", recovery_label(e)),
        baseline_mean_us: f64::NAN,
        current_mean_us: f64::NAN,
        delta_pct: f64::NAN,
        t_stat: f64::NAN,
        significant: false,
        verdict: Verdict::Unmatched,
    }
}

fn unmatched_session(e: &SessionEntry, why: &str) -> EntryComparison {
    EntryComparison {
        label: format!("{} ({why})", session_label(e)),
        baseline_mean_us: f64::NAN,
        current_mean_us: f64::NAN,
        delta_pct: f64::NAN,
        t_stat: f64::NAN,
        significant: false,
        verdict: Verdict::Unmatched,
    }
}

/// Compares one matched concurrent-sessions pair. Session sweeps are
/// deterministic (one ledger replay per cell, zero variance), so every
/// check is an exact comparison: the mean completion time gates as usual,
/// the p99 tail gates separately as [`Verdict::TailRegressed`] (the
/// failure mode a multi-tenant service cares about most), and a service
/// throughput drop beyond the threshold also fails.
pub fn compare_session(
    base: &SessionEntry,
    cur: &SessionEntry,
    gate: &GateConfig,
) -> EntryComparison {
    let (b, c) = (&base.latency, &cur.latency);
    let pct = |base_v: f64, cur_v: f64| {
        if base_v == 0.0 {
            0.0
        } else {
            (cur_v / base_v - 1.0) * 100.0
        }
    };
    let delta_pct = pct(b.mean_us, c.mean_us);
    let tail_delta_pct = pct(b.p99_us, c.p99_us);
    let throughput_drop_pct = -pct(base.throughput_mb_per_s, cur.throughput_mb_per_s);
    let (t_stat, significant) = welch_significant(
        b.mean_us,
        b.std_dev_us,
        b.n as usize,
        c.mean_us,
        c.std_dev_us,
        c.n as usize,
        gate.confidence,
    );
    let (_, tail_significant) = welch_significant(
        b.p99_us,
        b.std_dev_us,
        b.n as usize,
        c.p99_us,
        c.std_dev_us,
        c.n as usize,
        gate.confidence,
    );
    let verdict = if (delta_pct > gate.threshold_pct && significant)
        || throughput_drop_pct > gate.threshold_pct
    {
        Verdict::Regressed
    } else if tail_delta_pct > gate.threshold_pct && tail_significant {
        Verdict::TailRegressed
    } else if delta_pct < -gate.threshold_pct && significant {
        Verdict::Improved
    } else {
        Verdict::Pass
    };
    EntryComparison {
        label: session_label(cur),
        baseline_mean_us: b.mean_us,
        current_mean_us: c.mean_us,
        delta_pct,
        t_stat,
        significant,
        verdict,
    }
}

/// Compares one matched crash-recovery pair. Recovery latencies come from a
/// single deterministic run (zero variance on both sides), so the
/// significance machinery degenerates to an exact comparison: any slowdown
/// of the survivor path beyond the threshold fails the gate, and an
/// identical re-run always passes.
pub fn compare_recovery(
    base: &RecoveryEntry,
    cur: &RecoveryEntry,
    gate: &GateConfig,
) -> EntryComparison {
    let delta_pct = if base.recovery_latency_us == 0.0 {
        0.0
    } else {
        (cur.recovery_latency_us / base.recovery_latency_us - 1.0) * 100.0
    };
    let (t_stat, significant) = welch_significant(
        base.recovery_latency_us,
        0.0,
        1,
        cur.recovery_latency_us,
        0.0,
        1,
        gate.confidence,
    );
    let verdict = if cur.survivors != base.survivors {
        // The crash took out a different number of ranks: a behavioral
        // change in detection/agreement, not a latency matter.
        Verdict::MetricsDrift
    } else if delta_pct > gate.threshold_pct && significant {
        Verdict::Regressed
    } else if delta_pct < -gate.threshold_pct && significant {
        Verdict::Improved
    } else {
        Verdict::Pass
    };
    EntryComparison {
        label: recovery_label(cur),
        baseline_mean_us: base.recovery_latency_us,
        current_mean_us: cur.recovery_latency_us,
        delta_pct,
        t_stat,
        significant,
        verdict,
    }
}

/// Compares one matched entry pair. Besides the mean, the p99 tail gates
/// separately: an entry whose mean holds but whose 99th percentile slows
/// beyond the threshold (significantly, by the same Welch machinery — an
/// exact comparison on deterministic runs) fails as
/// [`Verdict::TailRegressed`].
pub fn compare_entry(base: &BenchEntry, cur: &BenchEntry, gate: &GateConfig) -> EntryComparison {
    let b = &base.latency;
    let c = &cur.latency;
    let delta_pct = if b.mean_us == 0.0 {
        0.0
    } else {
        (c.mean_us / b.mean_us - 1.0) * 100.0
    };
    let tail_delta_pct = if b.p99_us == 0.0 {
        0.0
    } else {
        (c.p99_us / b.p99_us - 1.0) * 100.0
    };
    let (t_stat, significant) = welch_significant(
        b.mean_us,
        b.std_dev_us,
        b.n as usize,
        c.mean_us,
        c.std_dev_us,
        c.n as usize,
        gate.confidence,
    );
    let (_, tail_significant) = welch_significant(
        b.p99_us,
        b.std_dev_us,
        b.n as usize,
        c.p99_us,
        c.std_dev_us,
        c.n as usize,
        gate.confidence,
    );
    let verdict = if cur.metrics != base.metrics || cur.copy_probe != base.copy_probe {
        // Both the paper's cost counters and the data-plane copy probe are
        // exact on the virtual-time simulator: any change is behavioral.
        Verdict::MetricsDrift
    } else if delta_pct > gate.threshold_pct && significant {
        Verdict::Regressed
    } else if tail_delta_pct > gate.threshold_pct && tail_significant {
        Verdict::TailRegressed
    } else if delta_pct < -gate.threshold_pct && significant {
        Verdict::Improved
    } else {
        Verdict::Pass
    };
    EntryComparison {
        label: entry_label(cur),
        baseline_mean_us: b.mean_us,
        current_mean_us: c.mean_us,
        delta_pct,
        t_stat,
        significant,
        verdict,
    }
}

/// Welch two-sample t-test: returns `(t, significant)` for the hypothesis
/// "the two means differ" at confidence level `confidence`.
///
/// When both standard deviations are zero (deterministic virtual-time
/// runs), any difference in means is exact and therefore significant; equal
/// means are not. With variance on either side, computes the Welch t
/// statistic and the Welch–Satterthwaite degrees of freedom, and compares
/// `|t|` against the two-sided Student-t critical value.
pub fn welch_significant(
    mean_a: f64,
    std_a: f64,
    n_a: usize,
    mean_b: f64,
    std_b: f64,
    n_b: usize,
    confidence: f64,
) -> (f64, bool) {
    let va = std_a * std_a / n_a.max(1) as f64;
    let vb = std_b * std_b / n_b.max(1) as f64;
    let pooled = va + vb;
    if pooled == 0.0 {
        // Deterministic on both sides: an exact comparison.
        return (0.0, mean_a != mean_b);
    }
    let t = (mean_b - mean_a) / pooled.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df_den = if n_a > 1 {
        va * va / (n_a - 1) as f64
    } else {
        f64::INFINITY
    } + if n_b > 1 {
        vb * vb / (n_b - 1) as f64
    } else {
        f64::INFINITY
    };
    let df = if df_den.is_finite() && df_den > 0.0 {
        (pooled * pooled) / df_den
    } else {
        1.0
    };
    let crit = student_t_critical(confidence, df);
    (t, t.abs() > crit)
}

/// Two-sided Student-t critical value at `confidence` with `df` degrees of
/// freedom, via the Cornish–Fisher expansion of the normal quantile. Exact
/// enough for gating (absolute error < 0.02 for df >= 2 at the confidence
/// levels used here).
pub fn student_t_critical(confidence: f64, df: f64) -> f64 {
    let alpha = (1.0 - confidence).clamp(1e-9, 1.0);
    let z = normal_quantile(1.0 - alpha / 2.0);
    if !df.is_finite() || df > 1e6 {
        return z;
    }
    let df = df.max(1.0);
    // Cornish–Fisher / Peiser expansion of t in powers of 1/df.
    let z3 = z * z * z;
    let z5 = z3 * z * z;
    let z7 = z5 * z * z;
    z + (z3 + z) / (4.0 * df)
        + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * df * df)
        + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * df * df * df)
}

/// Standard normal quantile (inverse CDF) via the Acklam rational
/// approximation (relative error < 1.15e-9 over (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{run_suite, SuiteCase};
    use crate::SimConfig;
    use eag_core::{Algorithm, Collective};
    use eag_netsim::Mapping;

    fn tiny_report() -> BenchReport {
        let cfg = SimConfig {
            p: 8,
            nodes: 2,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 3,
            nic_contention: false,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        };
        run_suite(
            "unit",
            "noleland",
            &[
                SuiteCase {
                    cfg: cfg.clone(),
                    collective: Collective::Allgather(Algorithm::Hs1),
                    msg_bytes: 1024,
                },
                SuiteCase {
                    cfg,
                    collective: Collective::Allgather(Algorithm::ORd),
                    msg_bytes: 1024,
                },
            ],
        )
    }

    fn recovery_report() -> BenchReport {
        use crate::report::{run_suite_with_recovery, RecoveryCase};
        let cfg = SimConfig {
            p: 8,
            nodes: 2,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 1,
            nic_contention: false,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        };
        run_suite_with_recovery(
            "unit",
            "noleland",
            &[],
            &[RecoveryCase {
                cfg,
                collective: Collective::Allgather(Algorithm::ORing),
                msg_bytes: 512,
                crashes: vec![eag_netsim::Crash::before(0, 0)],
            }],
        )
    }

    #[test]
    fn identical_recovery_rerun_passes() {
        let base = recovery_report();
        let cur = recovery_report();
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(out.pass, "{:#?}", out.comparisons);
        assert_eq!(out.comparisons.len(), 1);
    }

    #[test]
    fn recovery_slowdown_fails() {
        let base = recovery_report();
        let mut cur = base.clone();
        cur.recovery[0].recovery_latency_us *= 1.20;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Regressed), 1);
    }

    #[test]
    fn missing_recovery_entry_fails() {
        let base = recovery_report();
        let mut cur = base.clone();
        cur.recovery.clear();
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Unmatched), 1);
    }

    #[test]
    fn recovery_survivor_drift_fails() {
        let base = recovery_report();
        let mut cur = base.clone();
        cur.recovery[0].survivors -= 1;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::MetricsDrift), 1);
    }

    #[test]
    fn identical_rerun_passes() {
        let base = tiny_report();
        let cur = tiny_report();
        let gate = GateConfig::default();
        let out = compare(&base, &cur, &gate);
        assert!(out.pass, "{:#?}", out.comparisons);
    }

    #[test]
    fn twenty_percent_slowdown_fails() {
        let base = tiny_report();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.latency.mean_us *= 1.20;
            e.latency.median_us *= 1.20;
            for s in &mut e.latency.samples_us {
                *s *= 1.20;
            }
        }
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Regressed), base.entries.len());
    }

    #[test]
    fn small_shift_within_threshold_passes() {
        let base = tiny_report();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.latency.mean_us *= 1.05; // 5% < 10% threshold
        }
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(out.pass, "{:#?}", out.comparisons);
    }

    #[test]
    fn noisy_overlap_does_not_flap() {
        // Same underlying distribution, slightly different sample means,
        // large overlapping variance: must not be significant.
        let base = tiny_report();
        let mut cur = base.clone();
        let e = &mut cur.entries[0];
        e.latency.mean_us *= 1.15; // above threshold...
        e.latency.std_dev_us = e.latency.mean_us; // ...but huge noise
        let mut base2 = base.clone();
        base2.entries[0].latency.std_dev_us = base2.entries[0].latency.mean_us;
        let out = compare(&base2, &cur, &GateConfig::default());
        assert!(out.pass, "{:#?}", out.comparisons);
    }

    #[test]
    fn metrics_drift_fails() {
        let base = tiny_report();
        let mut cur = base.clone();
        cur.entries[0].metrics.enc_rounds += 1;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::MetricsDrift), 1);
    }

    #[test]
    fn copy_probe_drift_fails() {
        use crate::report::CopyProbe;
        let mut base = tiny_report();
        base.entries[0].copy_probe = Some(CopyProbe {
            memcpy_bytes: 1000,
            buf_allocs: 10,
        });
        let mut cur = base.clone();
        cur.entries[0].copy_probe = Some(CopyProbe {
            memcpy_bytes: 2000,
            buf_allocs: 10,
        });
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::MetricsDrift), 1);
        // Identical probes pass.
        let out = compare(&base, &base.clone(), &GateConfig::default());
        assert!(out.pass, "{:#?}", out.comparisons);
    }

    #[test]
    fn unmatched_entries_fail() {
        let base = tiny_report();
        let mut cur = base.clone();
        cur.entries.pop();
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Unmatched), 1);
    }

    #[test]
    fn improvement_never_fails() {
        let base = tiny_report();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.latency.mean_us *= 0.5;
        }
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(out.pass);
        assert_eq!(out.count(&Verdict::Improved), base.entries.len());
    }

    fn session_report() -> BenchReport {
        use crate::report::run_suite_full;
        use crate::sessions::SessionCase;
        run_suite_full(
            "unit",
            "noleland",
            &[],
            &[],
            &[SessionCase {
                algo: Algorithm::ORing,
                p: 8,
                nodes: 2,
                msg_bytes: 1024,
                sessions: 32,
                physical_nodes: 4,
                profile: "noleland".into(),
            }],
        )
    }

    #[test]
    fn identical_session_rerun_passes() {
        let out = compare(&session_report(), &session_report(), &GateConfig::default());
        assert!(out.pass, "{:#?}", out.comparisons);
        assert_eq!(out.comparisons.len(), 1);
    }

    #[test]
    fn session_tail_only_slowdown_fails_as_tail_regressed() {
        let base = session_report();
        let mut cur = base.clone();
        // Mean holds, p99 stretches 20%: a pure tail regression.
        cur.sessions[0].latency.p99_us *= 1.20;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::TailRegressed), 1);
    }

    #[test]
    fn session_throughput_drop_fails() {
        let base = session_report();
        let mut cur = base.clone();
        cur.sessions[0].throughput_mb_per_s *= 0.80;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Regressed), 1);
    }

    #[test]
    fn missing_session_entry_fails() {
        let base = session_report();
        let mut cur = base.clone();
        cur.sessions.clear();
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::Unmatched), 1);
    }

    #[test]
    fn entry_tail_only_slowdown_fails_as_tail_regressed() {
        let base = tiny_report();
        let mut cur = base.clone();
        // Deterministic entries: mean unchanged, p99 up 20% — the tail
        // gate must catch it even though the mean check passes.
        cur.entries[0].latency.p99_us *= 1.20;
        let out = compare(&base, &cur, &GateConfig::default());
        assert!(!out.pass);
        assert_eq!(out.count(&Verdict::TailRegressed), 1);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-8);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn t_critical_matches_tables() {
        // Two-sided 95%: df=4 -> 2.776, df=10 -> 2.228, df=30 -> 2.042.
        assert!((student_t_critical(0.95, 4.0) - 2.776).abs() < 0.05);
        assert!((student_t_critical(0.95, 10.0) - 2.228).abs() < 0.02);
        assert!((student_t_critical(0.95, 30.0) - 2.042).abs() < 0.01);
        // Large df converges to the normal quantile.
        assert!((student_t_critical(0.95, 1e9) - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn welch_detects_separated_means_with_small_noise() {
        // 100 vs 120 with std 1, n=3 each: hugely significant.
        let (t, sig) = welch_significant(100.0, 1.0, 3, 120.0, 1.0, 3, 0.95);
        assert!(sig, "t={t}");
        // 100 vs 101 with std 50: not significant.
        let (_, sig) = welch_significant(100.0, 50.0, 3, 101.0, 50.0, 3, 0.95);
        assert!(!sig);
    }
}
