//! # eag-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (Section V)
//! on the virtual-time simulator, using the same algorithm implementations
//! the correctness tests exercise. One binary per table/figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I (lower bounds) |
//! | `table2` | Table II (per-algorithm metrics, predicted vs measured) |
//! | `table3` | Table III (Noleland, p=128, N=8, block) |
//! | `table4` | Table IV (Noleland, cyclic) |
//! | `table5` | Table V (Noleland, p=91, N=7) |
//! | `table6` | Table VI (Bridges-2, p=1024, N=16) |
//! | `fig1`   | Figure 1 (encryption vs ping-pong throughput) |
//! | `fig5`–`fig8` | Figures 5–8 (latency curves) |
//! | `all_experiments` | everything above, as Markdown |
//!
//! The wall-clock Criterion benches (`benches/`) measure the *real*
//! byte-moving, AES-encrypting runtime at laptop scale.

#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod calibrate;
pub mod figures;
pub mod fmt;
pub mod harness;
pub mod paper;
pub mod regress;
pub mod report;
pub mod sessions;
pub mod stats;
pub mod tables;

pub use harness::{simulate, SimConfig};
pub use report::BenchReport;
pub use stats::Stats;
