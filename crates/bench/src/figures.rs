//! Generators for the paper's Figures 1 and 5–8.

use crate::fmt::{parse_size, size_label};
use crate::harness::{simulate, SimConfig};
use eag_core::Algorithm;
use eag_crypto::{AesGcm128, Key, Nonce};
use eag_netsim::profile;

/// One latency series for a figure panel.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (message size, mean latency µs) points.
    pub points: Vec<(usize, f64)>,
}

/// One panel (the paper splits each figure into small/medium/large).
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel caption, e.g. `"(a) Small messages"`.
    pub title: String,
    /// The series, one per algorithm.
    pub series: Vec<Series>,
}

/// Sweeps `algos` over `sizes` and builds one panel.
pub fn panel(cfg: &SimConfig, title: &str, algos: &[Algorithm], sizes: &[usize]) -> Panel {
    let series = algos
        .iter()
        .map(|&a| Series {
            label: a.name().to_string(),
            points: sizes
                .iter()
                .map(|&m| (m, simulate(cfg, a, m).mean))
                .collect(),
        })
        .collect();
    Panel {
        title: title.to_string(),
        series,
    }
}

fn sizes(labels: &[&str]) -> Vec<usize> {
    labels.iter().map(|l| parse_size(l).unwrap()).collect()
}

/// Figure 5/6 panels: unencrypted algorithms (the MVAPICH baseline and the
/// unencrypted counterparts of C-Ring, C-RD, HS1).
pub fn fig_unencrypted(cfg: &SimConfig) -> Vec<Panel> {
    use Algorithm::*;
    vec![
        panel(
            cfg,
            "(a) Small messages",
            &[Mvapich, CRdPlain, HsPlain],
            &sizes(&["1B", "128B", "512B", "1KB", "2KB"]),
        ),
        panel(
            cfg,
            "(b) Medium messages",
            &[Mvapich, CRingPlain, CRdPlain, HsPlain],
            &sizes(&["8KB", "16KB", "32KB", "64KB"]),
        ),
        panel(
            cfg,
            "(c) Large messages",
            &[Mvapich, CRingPlain, CRdPlain, HsPlain],
            &sizes(&["512KB", "1MB", "2MB"]),
        ),
    ]
}

/// Figure 7/8 panels: encrypted algorithms by size band, as in the paper.
pub fn fig_encrypted(cfg: &SimConfig) -> Vec<Panel> {
    use Algorithm::*;
    vec![
        panel(
            cfg,
            "(a) Small messages",
            &[ORd, ORd2, CRd, Hs1],
            &sizes(&["1B", "2B", "4B", "64B", "128B", "512B"]),
        ),
        panel(
            cfg,
            "(b) Medium messages",
            &[CRing, CRd, Hs1, Hs2],
            &sizes(&["1KB", "2KB", "4KB", "8KB", "16KB", "32KB"]),
        ),
        panel(
            cfg,
            "(c) Large messages",
            &[ORing, CRing, CRd, Hs1, Hs2],
            &sizes(&["128KB", "512KB", "1MB"]),
        ),
    ]
}

/// Renders panels as Markdown tables (size × algorithm latency in µs).
pub fn render_panels(title: &str, panels: &[Panel]) -> String {
    let mut out = format!("### {title}\n\n");
    for p in panels {
        out.push_str(&format!("**{}**\n\n", p.title));
        out.push_str("| Size |");
        for s in &p.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &p.series {
            out.push_str("---|");
        }
        out.push('\n');
        let sizes: Vec<usize> = p.series[0].points.iter().map(|&(m, _)| m).collect();
        for (i, &m) in sizes.iter().enumerate() {
            out.push_str(&format!("| {} |", size_label(m)));
            for s in &p.series {
                out.push_str(&format!(" {:.2} |", s.points[i].1));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders panels as CSV: `panel,series,size_bytes,latency_us` rows.
pub fn render_panels_csv(panels: &[Panel]) -> String {
    let mut out = String::from("panel,series,size_bytes,latency_us\n");
    for p in panels {
        for s in &p.series {
            for &(m, l) in &s.points {
                out.push_str(&format!("{},{},{m},{l:.3}\n", p.title, s.label));
            }
        }
    }
    out
}

/// One point of Figure 1: throughput in MB/s at a message size.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Message size in bytes.
    pub size: usize,
    /// Modeled ping-pong throughput (MB/s).
    pub pingpong_model: f64,
    /// Modeled encryption throughput (MB/s).
    pub encryption_model: f64,
    /// Measured AES-128-GCM seal throughput on this machine (MB/s).
    pub encryption_real: f64,
}

/// Figure 1: encryption vs ping-pong throughput.
///
/// The model curves reproduce the paper's Noleland anchors; the real curve
/// measures this machine's `eag-crypto` seal throughput for reference.
pub fn fig1_points() -> Vec<ThroughputPoint> {
    let model = profile::noleland().model;
    let labels = [
        "1B", "256B", "1KB", "4KB", "16KB", "32KB", "64KB", "128KB", "512KB", "2MB",
    ];
    let gcm = AesGcm128::new(&Key::from_bytes([7u8; 16]));
    let nonce = Nonce::from_bytes([1u8; 12]);
    labels
        .iter()
        .map(|l| {
            let m = parse_size(l).unwrap();
            // Ping-pong: one round trip moves 2m bytes in 2(α+βm).
            let pp = m as f64 / model.inter.time(m);
            let enc = m as f64 / model.crypto.enc_time(m);
            let real = measure_seal_throughput(&gcm, &nonce, m);
            ThroughputPoint {
                size: m,
                pingpong_model: pp,
                encryption_model: enc,
                encryption_real: real,
            }
        })
        .collect()
}

/// Measures real AES-128-GCM seal throughput (MB/s) for `m`-byte messages.
pub fn measure_seal_throughput(gcm: &AesGcm128, nonce: &Nonce, m: usize) -> f64 {
    let data = vec![0xA5u8; m];
    // Warm up, then time enough iterations for a stable figure.
    let iters = (16 * 1024 * 1024 / m.max(1)).clamp(8, 4096);
    for _ in 0..4 {
        std::hint::black_box(gcm.seal(nonce, b"", &data));
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(gcm.seal(nonce, b"", &data));
    }
    let secs = start.elapsed().as_secs_f64();
    (m as f64 * iters as f64) / secs / 1e6
}

/// Renders Figure 1 as a Markdown table.
pub fn render_fig1(points: &[ThroughputPoint]) -> String {
    let mut out = String::from(
        "### Figure 1 — encryption vs ping-pong throughput (MB/s)\n\n\
         | Size | ping-pong (model) | encryption (model) | encryption (this machine) |\n\
         |---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.0} |\n",
            size_label(p.size),
            p.pingpong_model,
            p.encryption_model,
            p.encryption_real
        ));
    }
    out
}

/// Renders one panel as an ASCII log-log-ish line chart (size on x, latency
/// on y, one glyph per series) — the terminal version of the paper's plots.
pub fn render_ascii_chart(panel: &Panel, width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; width]; height];

    let all_points: Vec<(usize, f64)> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all_points.is_empty() {
        return String::from("(empty panel)\n");
    }
    let (x_min, x_max) = all_points
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(m, _)| {
            (lo.min(m as f64), hi.max(m as f64))
        });
    let (y_min, y_max) = all_points
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, l)| {
            (lo.min(l.max(1e-9)), hi.max(l))
        });
    // Log scales (latency and size both span decades).
    let x_span = (x_max.ln() - x_min.ln()).max(1e-9);
    let y_span = (y_max.ln() - y_min.ln()).max(1e-9);
    let x_cell = |m: usize| {
        ((((m as f64).ln() - x_min.ln()) / x_span) * (width - 1) as f64).round() as usize
    };
    let y_cell = |l: f64| {
        let frac = (l.max(1e-9).ln() - y_min.ln()) / y_span;
        height - 1 - (frac * (height - 1) as f64).round() as usize
    };

    for (si, series) in panel.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Mark the points, connecting consecutive sizes with interpolation.
        for pair in series.points.windows(2) {
            let (x0, y0) = (x_cell(pair[0].0), y_cell(pair[0].1));
            let (x1, y1) = (x_cell(pair[1].0), y_cell(pair[1].1));
            let steps = x1.saturating_sub(x0).max(1);
            for s in 0..=steps {
                let x = x0 + s;
                let y = (y0 as f64 + (y1 as f64 - y0 as f64) * s as f64 / steps as f64).round()
                    as usize;
                grid[y.min(height - 1)][x.min(width - 1)] = glyph;
            }
        }
        if let Some(&(m, l)) = series.points.first() {
            grid[y_cell(l)][x_cell(m)] = glyph;
        }
    }

    let mut out = format!("{}\n", panel.title);
    out.push_str(&format!(
        "latency {:.1}µs (top) .. {:.1}µs (bottom), log-log\n",
        y_max, y_min
    ));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "   {} .. {}\n",
        size_label(all_points.iter().map(|&(m, _)| m).min().unwrap()),
        size_label(all_points.iter().map(|&(m, _)| m).max().unwrap())
    ));
    for (si, s) in panel.series.iter().enumerate() {
        out.push_str(&format!("   {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::Mapping;

    fn tiny() -> SimConfig {
        SimConfig {
            p: 8,
            nodes: 4,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 1,
            nic_contention: true,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        }
    }

    #[test]
    fn panel_has_all_series_and_points() {
        let p = panel(
            &tiny(),
            "(a)",
            &[Algorithm::Hs1, Algorithm::Hs2],
            &[64, 1024],
        );
        assert_eq!(p.series.len(), 2);
        assert_eq!(p.series[0].points.len(), 2);
        assert!(p
            .series
            .iter()
            .all(|s| s.points.iter().all(|&(_, l)| l > 0.0)));
    }

    #[test]
    fn model_throughput_anchors() {
        let pts = fig1_points();
        let big = pts.iter().find(|p| p.size == 2 * 1024 * 1024).unwrap();
        // Paper's Figure 1: ping-pong ≈ 11 GB/s, encryption ≈ 5.5 GB/s.
        assert!(big.pingpong_model > 10_000.0);
        assert!(big.encryption_model > 5_000.0 && big.encryption_model < 5_600.0);
        assert!(big.encryption_real > 0.0);
    }

    #[test]
    fn panels_csv_rows_match_points() {
        let p = Panel {
            title: "(a)".into(),
            series: vec![Series {
                label: "X".into(),
                points: vec![(1, 2.0), (4, 8.0)],
            }],
        };
        let csv = render_panels_csv(&[p]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "(a),X,1,2.000");
    }

    #[test]
    fn ascii_chart_renders_all_series() {
        let p = Panel {
            title: "(test)".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![(1, 10.0), (1024, 100.0), (1 << 20, 1000.0)],
                },
                Series {
                    label: "B".into(),
                    points: vec![(1, 20.0), (1024, 50.0), (1 << 20, 5000.0)],
                },
            ],
        };
        let chart = render_ascii_chart(&p, 60, 12);
        assert!(chart.contains("o A"));
        assert!(chart.contains("x B"));
        assert!(chart.contains("1B .. 1MB"));
        assert!(chart.contains('o') && chart.contains('x'));
    }

    #[test]
    fn ascii_chart_empty_panel() {
        let p = Panel {
            title: "(e)".into(),
            series: vec![],
        };
        assert_eq!(render_ascii_chart(&p, 10, 5), "(empty panel)\n");
    }

    #[test]
    fn render_contains_all_sizes() {
        let md = render_panels(
            "f",
            &[panel(&tiny(), "(a)", &[Algorithm::Hs2], &[64, 2048])],
        );
        assert!(md.contains("64B"));
        assert!(md.contains("2KB"));
    }
}
