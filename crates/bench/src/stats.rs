//! Small summary statistics for repeated simulation runs.

/// Summary of a set of latency samples (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (lower of the two middle samples for even `n`).
    pub median: f64,
    /// 95th percentile by the nearest-rank method (`ceil(0.95 n)`-th
    /// smallest sample); equals `max` for `n < 20`.
    pub p95: f64,
    /// 99th percentile by the nearest-rank method (`ceil(0.99 n)`-th
    /// smallest sample); equals `max` for `n < 100`. The tail the
    /// regression gate bites on for the concurrent-sessions axis.
    pub p99: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Summarizes `samples`.
    ///
    /// Panics on an empty slice or on any non-finite sample: a NaN latency
    /// would otherwise poison `mean`/`std_dev` silently and make
    /// [`Stats::overhead_pct`] report a misleading `0`. Callers that want to
    /// handle bad samples gracefully use [`Stats::try_of`].
    pub fn of(samples: &[f64]) -> Stats {
        match Self::try_of(samples) {
            Ok(s) => s,
            Err(e) => panic!("Stats::of: {e}"),
        }
    }

    /// Summarizes `samples`, returning an error (instead of panicking) for
    /// an empty slice or any non-finite sample.
    pub fn try_of(samples: &[f64]) -> Result<Stats, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        if let Some(idx) = samples.iter().position(|s| !s.is_finite()) {
            return Err(StatsError::NonFinite {
                index: idx,
                value: samples[idx],
            });
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let median = sorted[(n - 1) / 2];
        // Nearest-rank percentile: smallest sample with cumulative
        // frequency >= 95%.
        let p95_rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
        let p95 = sorted[p95_rank - 1];
        let p99_rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        let p99 = sorted[p99_rank - 1];
        Ok(Stats {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            p95,
            p99,
            n,
        })
    }

    /// Relative overhead of `self` versus a `baseline` mean, in percent
    /// (negative = faster than the baseline), as the paper reports.
    ///
    /// A zero baseline mean — e.g. a free-profile run where every virtual-
    /// time sample is 0 µs — has no meaningful relative overhead; returns 0
    /// instead of NaN/±inf so report tables stay sane. (Non-finite means can
    /// no longer occur: [`Stats::of`] rejects non-finite samples.)
    pub fn overhead_pct(&self, baseline: &Stats) -> f64 {
        if baseline.mean == 0.0 || !baseline.mean.is_finite() {
            return 0.0;
        }
        (self.mean / baseline.mean - 1.0) * 100.0
    }
}

/// Why a set of samples could not be summarized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The sample slice was empty.
    Empty,
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "no samples"),
            StatsError::NonFinite { index, value } => {
                write!(f, "non-finite sample {value} at index {index}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        // n=1 edge case: every percentile is the lone sample.
        let s = Stats::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.p99, 5.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn two_samples_pin_the_tail_to_the_max() {
        // n=2 edge case: ceil(0.95*2)=ceil(0.99*2)=2 → both tails are the
        // larger sample, regardless of input order.
        let s = Stats::of(&[8.0, 2.0]);
        assert_eq!(s.median, 2.0); // lower middle
        assert_eq!(s.p95, 8.0);
        assert_eq!(s.p99, 8.0);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn mean_and_spread() {
        let s = Stats::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.median, 4.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_p95_on_unsorted_input() {
        let s = Stats::of(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p95, 9.0); // nearest-rank: ceil(0.95*5)=5th of 5
        let even = Stats::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median, 2.0); // lower middle
    }

    #[test]
    fn p95_with_twenty_samples_drops_the_top_outlier() {
        // 1..=19 plus one huge outlier: rank ceil(0.95*20)=19 -> 19.0.
        let mut v: Vec<f64> = (1..=19).map(|i| i as f64).collect();
        v.push(1e6);
        let s = Stats::of(&v);
        assert_eq!(s.p95, 19.0);
        // p99 still lands on the outlier at n=20: ceil(0.99*20)=20.
        assert_eq!(s.p99, 1e6);
        assert_eq!(s.max, 1e6);
    }

    #[test]
    fn p99_with_two_hundred_samples_drops_the_top_outliers() {
        // 1..=198 plus two huge outliers: rank ceil(0.99*200)=198 → the
        // p99 sheds both, while p95 (rank 190) sits lower still.
        let mut v: Vec<f64> = (1..=198).map(|i| i as f64).collect();
        v.push(1e6);
        v.push(2e6);
        let s = Stats::of(&v);
        assert_eq!(s.p95, 190.0);
        assert_eq!(s.p99, 198.0);
        assert_eq!(s.max, 2e6);
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        match Stats::try_of(&[1.0, f64::NAN, 3.0]) {
            Err(StatsError::NonFinite { index: 1, value }) => assert!(value.is_nan()),
            other => panic!("expected NonFinite at index 1, got {other:?}"),
        }
        assert!(matches!(
            Stats::try_of(&[f64::INFINITY]),
            Err(StatsError::NonFinite { index: 0, .. })
        ));
        assert_eq!(Stats::try_of(&[]), Err(StatsError::Empty));
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn of_panics_on_nan() {
        let _ = Stats::of(&[f64::NAN]);
    }

    #[test]
    fn overhead_of_zero_baseline_is_finite() {
        // Free network profiles produce all-zero virtual latencies; the
        // relative overhead must not be NaN or infinite then.
        let zero = Stats::of(&[0.0, 0.0, 0.0]);
        assert_eq!(Stats::of(&[5.0]).overhead_pct(&zero), 0.0);
        assert_eq!(zero.overhead_pct(&zero), 0.0);
    }

    #[test]
    fn overhead_sign() {
        let base = Stats::of(&[100.0]);
        assert!((Stats::of(&[150.0]).overhead_pct(&base) - 50.0).abs() < 1e-9);
        assert!((Stats::of(&[80.0]).overhead_pct(&base) + 20.0).abs() < 1e-9);
    }
}
