//! Small summary statistics for repeated simulation runs.

/// Summary of a set of latency samples (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Summarizes `samples`; panics on an empty slice.
    pub fn of(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Stats {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            n,
        }
    }

    /// Relative overhead of `self` versus a `baseline` mean, in percent
    /// (negative = faster than the baseline), as the paper reports.
    ///
    /// A zero (or non-finite) baseline mean — e.g. a free-profile run where
    /// every virtual-time sample is 0 µs — has no meaningful relative
    /// overhead; returns 0 instead of NaN/±inf so report tables stay sane.
    pub fn overhead_pct(&self, baseline: &Stats) -> f64 {
        if baseline.mean == 0.0 || !baseline.mean.is_finite() {
            return 0.0;
        }
        (self.mean / baseline.mean - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = Stats::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn mean_and_spread() {
        let s = Stats::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_of_zero_baseline_is_finite() {
        // Free network profiles produce all-zero virtual latencies; the
        // relative overhead must not be NaN or infinite then.
        let zero = Stats::of(&[0.0, 0.0, 0.0]);
        assert_eq!(Stats::of(&[5.0]).overhead_pct(&zero), 0.0);
        assert_eq!(zero.overhead_pct(&zero), 0.0);
    }

    #[test]
    fn overhead_sign() {
        let base = Stats::of(&[100.0]);
        assert!((Stats::of(&[150.0]).overhead_pct(&base) - 50.0).abs() < 1e-9);
        assert!((Stats::of(&[80.0]).overhead_pct(&base) + 20.0).abs() < 1e-9);
    }
}
