//! Generators for the paper's Tables I–VI.

use crate::fmt::{latency_label, size_label};
use crate::harness::{simulate, simulate_with_metrics, SimConfig};
use eag_core::{bounds, Algorithm};
use eag_netsim::Mapping;

/// The candidate set for "best scheme": the paper's seven new algorithms
/// (Naive is the baseline being beaten, so it is excluded).
pub fn candidate_schemes() -> &'static [Algorithm] {
    use Algorithm::*;
    &[ORing, ORd, ORd2, CRing, CRd, Hs1, Hs2]
}

/// One row of a Table III/IV/V/VI-style comparison.
#[derive(Debug, Clone)]
pub struct BestSchemeRow {
    /// Message size in bytes.
    pub size: usize,
    /// Latency of the unencrypted MPI baseline, µs.
    pub mpi_latency_us: f64,
    /// Overhead of the Naive encrypted algorithm vs the baseline, %.
    pub naive_overhead_pct: f64,
    /// Overhead of the best new scheme vs the baseline, %.
    pub best_overhead_pct: f64,
    /// The winning scheme.
    pub best: Algorithm,
}

/// Computes a full best-scheme table for `sizes` under `cfg`.
pub fn best_scheme_table(cfg: &SimConfig, sizes: &[usize]) -> Vec<BestSchemeRow> {
    sizes
        .iter()
        .map(|&m| {
            let mpi = simulate(cfg, Algorithm::Mvapich, m);
            let naive = simulate(cfg, Algorithm::Naive, m);
            let (best, best_stats) = candidate_schemes()
                .iter()
                .map(|&a| (a, simulate(cfg, a, m)))
                .min_by(|a, b| a.1.mean.total_cmp(&b.1.mean))
                .expect("non-empty candidate set");
            BestSchemeRow {
                size: m,
                mpi_latency_us: mpi.mean,
                naive_overhead_pct: naive.overhead_pct(&mpi),
                best_overhead_pct: best_stats.overhead_pct(&mpi),
                best,
            }
        })
        .collect()
}

/// Renders a best-scheme table as Markdown (columns as in the paper).
pub fn render_best_scheme_table(title: &str, rows: &[BestSchemeRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str(
        "| Size | Latency of MPI | Overhead of Naive | Overhead of best scheme | Best scheme |\n",
    );
    out.push_str("|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:+.2}% | {:+.2}% | {} |\n",
            size_label(r.size),
            latency_label(r.mpi_latency_us),
            r.naive_overhead_pct,
            r.best_overhead_pct,
            r.best
        ));
    }
    out
}

/// Renders a best-scheme table as CSV (plot-friendly).
pub fn render_best_scheme_csv(rows: &[BestSchemeRow]) -> String {
    let mut out =
        String::from("size_bytes,mpi_latency_us,naive_overhead_pct,best_overhead_pct,best\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{}\n",
            r.size, r.mpi_latency_us, r.naive_overhead_pct, r.best_overhead_pct, r.best
        ));
    }
    out
}

/// Renders Table I (the lower bounds) for a given configuration.
pub fn render_table1(p: usize, nodes: usize, m: usize) -> String {
    let b = bounds::lower_bounds(p, nodes, m);
    let ell = p / nodes;
    let mut out = String::new();
    out.push_str(&format!(
        "### Table I — lower bounds (p = {p}, N = {nodes}, ℓ = {ell}, m = {})\n\n",
        size_label(m)
    ));
    out.push_str("| Metric | rc | sc | re | se | rd | sd |\n|---|---|---|---|---|---|---|\n");
    out.push_str(&format!(
        "| Bound | {} | {} | {} | {} | {} | {} |\n",
        b.rc, b.sc, b.re, b.se, b.rd, b.sd
    ));
    out
}

/// One row of the Table II comparison: predicted vs measured metrics.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    /// Algorithm.
    pub algo: Algorithm,
    /// The paper's closed-form prediction.
    pub predicted: bounds::MetricSet,
    /// Metrics measured by the runtime (critical-path maxima).
    pub measured: bounds::MetricSet,
}

/// Measures every encrypted algorithm and compares with Table II.
/// Requires powers of two and block mapping (the table's assumptions).
pub fn table2_rows(p: usize, nodes: usize, m: usize) -> Vec<MetricsRow> {
    let cfg = SimConfig {
        p,
        nodes,
        mapping: Mapping::Block,
        profile: "unit".into(),
        reps: 1,
        nic_contention: false,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    Algorithm::encrypted_all()
        .iter()
        .filter_map(|&algo| {
            // Algorithms without a Table II closed form (the O-Bruck
            // extension) are skipped.
            let predicted = bounds::predict(algo, p, nodes, m)?;
            let (_, mx) = simulate_with_metrics(&cfg, algo, m);
            let measured = bounds::MetricSet {
                rc: mx.comm_rounds,
                sc: mx.sc_payload(),
                re: mx.enc_rounds,
                se: mx.enc_bytes,
                rd: mx.dec_rounds,
                sd: mx.dec_bytes,
            };
            Some(MetricsRow {
                algo,
                predicted,
                measured,
            })
        })
        .collect()
}

/// Renders the Table II comparison as Markdown.
pub fn render_table2(p: usize, nodes: usize, m: usize, rows: &[MetricsRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Table II — metrics, predicted (paper) vs measured (runtime), p = {p}, N = {nodes}, m = {}\n\n",
        size_label(m)
    ));
    out.push_str("| Algorithm | rc | sc | re | se | rd | sd |\n|---|---|---|---|---|---|---|\n");
    for r in rows {
        let p = &r.predicted;
        let g = &r.measured;
        let cell = |pred: u64, got: u64| {
            if pred == got {
                format!("{got} ✓")
            } else {
                format!("{got} (paper {pred})")
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            r.algo,
            cell(p.rc, g.rc),
            cell(p.sc, g.sc),
            cell(p.re, g.re),
            cell(p.se, g.se),
            cell(p.rd, g.rd),
            cell(p.sd, g.sd),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig {
            p: 16,
            nodes: 4,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 1,
            nic_contention: true,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        }
    }

    #[test]
    fn best_scheme_rows_have_sane_fields() {
        let rows = best_scheme_table(&tiny(), &[64, 64 * 1024]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.mpi_latency_us > 0.0);
            assert!(r.best_overhead_pct <= r.naive_overhead_pct);
        }
    }

    #[test]
    fn table2_metrics_match_predictions_exactly() {
        for row in table2_rows(16, 4, 32) {
            assert_eq!(row.predicted, row.measured, "{}", row.algo);
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = best_scheme_table(&tiny(), &[64]);
        let csv = render_best_scheme_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("size_bytes,"));
        assert!(lines[1].starts_with("64,"));
    }

    #[test]
    fn render_produces_markdown() {
        let rows = best_scheme_table(&tiny(), &[64]);
        let md = render_best_scheme_table("t", &rows);
        assert!(md.contains("| Size |"));
        assert!(md.contains("64B"));
        let t1 = render_table1(128, 8, 1024);
        assert!(t1.contains("Bound"));
    }
}
