//! Runs the entire evaluation — every table and figure — and prints one
//! Markdown report (the source of EXPERIMENTS.md's measured columns).

use eag_bench::figures::{fig1_points, fig_encrypted, fig_unencrypted, render_fig1, render_panels};
use eag_bench::fmt::{table3_sizes, table4_sizes, table5_sizes, table6_sizes};
use eag_bench::paper::{self, render_side_by_side};
use eag_bench::tables::{best_scheme_table, render_table1, render_table2, table2_rows};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    println!("# Encrypted All-gather — full experiment suite\n");

    println!("{}", render_table1(128, 8, 1024));
    println!("{}", render_table1(1024, 16, 1024));

    let rows = table2_rows(128, 8, 1024);
    println!("{}", render_table2(128, 8, 1024, &rows));

    println!("{}", render_fig1(&fig1_points()));

    let block = SimConfig::noleland(Mapping::Block);
    let cyclic = SimConfig::noleland(Mapping::Cyclic);

    println!(
        "{}",
        render_panels(
            "Figure 5 — unencrypted, block (latency µs)",
            &fig_unencrypted(&block)
        )
    );
    println!(
        "{}",
        render_panels(
            "Figure 6 — unencrypted, cyclic (latency µs)",
            &fig_unencrypted(&cyclic)
        )
    );
    println!(
        "{}",
        render_panels(
            "Figure 7 — encrypted, block (latency µs)",
            &fig_encrypted(&block)
        )
    );
    println!(
        "{}",
        render_panels(
            "Figure 8 — encrypted, cyclic (latency µs)",
            &fig_encrypted(&cyclic)
        )
    );

    println!(
        "{}",
        render_side_by_side(
            "Table III (Noleland, p = 128, N = 8, block)",
            &best_scheme_table(&block, &table3_sizes()),
            &paper::table3()
        )
    );
    println!(
        "{}",
        render_side_by_side(
            "Table IV (Noleland, p = 128, N = 8, cyclic)",
            &best_scheme_table(&cyclic, &table4_sizes()),
            &paper::table4()
        )
    );
    println!(
        "{}",
        render_side_by_side(
            "Table V (Noleland, p = 91, N = 7, block)",
            &best_scheme_table(
                &SimConfig::noleland_general(Mapping::Block),
                &table5_sizes()
            ),
            &paper::table5()
        )
    );
    println!(
        "{}",
        render_side_by_side(
            "Table VI (Bridges-2, p = 1024, N = 16)",
            &best_scheme_table(&SimConfig::bridges2(), &table6_sizes()),
            &paper::table6()
        )
    );
}
