//! Scaling study (not in the paper, implied by its analysis): how the
//! encryption overhead scales with node count N at fixed ℓ and fixed m.
//!
//! The paper's Table II predicts Naive's decrypted volume grows as (p−1)m
//! = (Nℓ−1)m while the bound-meeting algorithms decrypt only (N−1)m — so
//! Naive's *relative* overhead should stay roughly constant with N while
//! the best schemes' overhead stays near zero. This binary measures both.

use eag_bench::fmt::size_label;
use eag_bench::{simulate, SimConfig};
use eag_core::Algorithm;
use eag_netsim::Mapping;

fn main() {
    let ell = 8usize;
    let m = 64 * 1024;
    println!(
        "### Scaling with node count (ℓ = {ell} fixed, m = {}, Noleland model)\n",
        size_label(m)
    );
    println!("| N | p | MPI (µs) | Naive | O-RD | C-Ring | HS2 |");
    println!("|---|---|---|---|---|---|---|");
    for nodes in [2usize, 4, 8, 16, 32] {
        let cfg = SimConfig {
            p: nodes * ell,
            nodes,
            mapping: Mapping::Block,
            profile: "noleland".into(),
            reps: 2,
            nic_contention: true,
            data_seed: None,
            suite: eag_runtime::CipherSuite::AesGcm128,
        };
        let mpi = simulate(&cfg, Algorithm::Mvapich, m);
        let pct = |algo| format!("{:+.1}%", simulate(&cfg, algo, m).overhead_pct(&mpi));
        println!(
            "| {nodes} | {} | {:.1} | {} | {} | {} | {} |",
            cfg.p,
            mpi.mean,
            pct(Algorithm::Naive),
            pct(Algorithm::ORd),
            pct(Algorithm::CRing),
            pct(Algorithm::Hs2),
        );
    }
}
