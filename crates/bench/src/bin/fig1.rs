//! Regenerates the paper's Figure 1: encryption throughput versus ping-pong
//! throughput across message sizes.

use eag_bench::figures::{fig1_points, render_fig1};

fn main() {
    print!("{}", render_fig1(&fig1_points()));
}
