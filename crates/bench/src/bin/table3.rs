//! Regenerates the paper's Table III (Noleland, p = 128, N = 8, block-order mapping),
//! printing the measured rows side by side with the published values.

use eag_bench::fmt::table3_sizes;
use eag_bench::paper::{render_side_by_side, table3};
use eag_bench::tables::{best_scheme_table, render_best_scheme_table};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    let cfg = SimConfig::noleland(Mapping::Block);
    let rows = best_scheme_table(&cfg, &table3_sizes());
    print!("{}", render_side_by_side("Table III", &rows, &table3()));
    println!();
    print!(
        "{}",
        render_best_scheme_table(
            "Table III — Noleland, p = 128, N = 8, block-order mapping",
            &rows
        )
    );
}
