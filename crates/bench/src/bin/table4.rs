//! Regenerates the paper's Table IV (Noleland, p = 128, N = 8, cyclic-order mapping),
//! printing the measured rows side by side with the published values.

use eag_bench::fmt::table4_sizes;
use eag_bench::paper::{render_side_by_side, table4};
use eag_bench::tables::{best_scheme_table, render_best_scheme_table};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    let cfg = SimConfig::noleland(Mapping::Cyclic);
    let rows = best_scheme_table(&cfg, &table4_sizes());
    print!("{}", render_side_by_side("Table IV", &rows, &table4()));
    println!();
    print!(
        "{}",
        render_best_scheme_table(
            "Table IV — Noleland, p = 128, N = 8, cyclic-order mapping",
            &rows
        )
    );
}
