//! Regenerates the paper's Table VI (Bridges-2, p = 1024, N = 16),
//! printing the measured rows side by side with the published values.

use eag_bench::fmt::table6_sizes;
use eag_bench::paper::{render_side_by_side, table6};
use eag_bench::tables::{best_scheme_table, render_best_scheme_table};
use eag_bench::SimConfig;

fn main() {
    let cfg = SimConfig::bridges2();
    let rows = best_scheme_table(&cfg, &table6_sizes());
    print!("{}", render_side_by_side("Table VI", &rows, &table6()));
    println!();
    print!(
        "{}",
        render_best_scheme_table("Table VI — Bridges-2, p = 1024, N = 16", &rows)
    );
}
