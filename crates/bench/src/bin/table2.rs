//! Regenerates the paper's Table II: per-algorithm metrics, comparing the
//! closed-form predictions with what the runtime actually measures.

use eag_bench::tables::{render_table2, table2_rows};

fn main() {
    for (p, nodes) in [(128usize, 8usize), (1024, 16)] {
        let m = 1024;
        let rows = table2_rows(p, nodes, m);
        print!("{}", render_table2(p, nodes, m, &rows));
        println!();
        let mismatches = rows.iter().filter(|r| r.predicted != r.measured).count();
        println!(
            "{mismatches} metric mismatches out of {} algorithms\n",
            rows.len()
        );
    }
}
