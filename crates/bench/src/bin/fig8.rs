//! Regenerates the paper's Figure 8: encrypted all-gather algorithms on
//! Noleland with cyclic-order mapping (p = 128, N = 8).

use eag_bench::figures::{fig_encrypted, render_panels};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    let cfg = SimConfig::noleland(Mapping::Cyclic);
    let panels = fig_encrypted(&cfg);
    for panel in &panels {
        println!("{}", eag_bench::figures::render_ascii_chart(panel, 72, 16));
    }
    print!(
        "{}",
        render_panels(
            "Figure 8 — encrypted algorithms, cyclic mapping (latency µs)",
            &panels
        )
    );
}
