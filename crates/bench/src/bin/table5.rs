//! Regenerates the paper's Table V (Noleland, p = 91, N = 7, block-order mapping),
//! printing the measured rows side by side with the published values.

use eag_bench::fmt::table5_sizes;
use eag_bench::paper::{render_side_by_side, table5};
use eag_bench::tables::{best_scheme_table, render_best_scheme_table};
use eag_bench::SimConfig;
use eag_netsim::Mapping;

fn main() {
    let cfg = SimConfig::noleland_general(Mapping::Block);
    let rows = best_scheme_table(&cfg, &table5_sizes());
    print!("{}", render_side_by_side("Table V", &rows, &table5()));
    println!();
    print!(
        "{}",
        render_best_scheme_table(
            "Table V — Noleland, p = 91, N = 7, block-order mapping",
            &rows
        )
    );
}
