//! `eag` — the encrypted all-gather command-line tool.
//!
//! ```text
//! eag run        --algo HS2 --p 128 --nodes 8 --size 4KB [--mapping cyclic]
//!                [--op bcast|gather|scatter|alltoall|allgatherv|…]
//!                [--profile bridges2] [--cipher aes-gcm-siv] [--real]
//!                [--trace] [--json out.json]
//!                [--crash 3@1 --crash 2@0e1 …]  (crash-tolerant run)
//! eag sweep      --p 128 --nodes 8 [--mapping block] [--profile noleland]
//!                [--sizes 1B,1KB,64KB,1MB]
//! eag bench      [--json BENCH_noleland.json] [--probe]
//! eag regress    --baseline BENCH_noleland.json [--current BENCH_ci.json]
//!                [--threshold 10] [--confidence 0.95]
//! eag recommend  --p 128 --nodes 8 --size 64KB [--profile noleland]
//! eag audit      --p 12 --nodes 3 [--size 256B]
//! eag list
//! ```

use eag_bench::fmt::{parse_size, size_label};
use eag_bench::tables::{best_scheme_table, render_best_scheme_table};
use eag_bench::SimConfig;
use eag_core::{allgather, Algorithm, Collective, Operation};
use eag_netsim::{profile, Crash, FaultPlan, Mapping, Topology};
use eag_runtime::{
    pattern_block, run, run_crashable, CipherSuite, DataMode, RetryPolicy, WorldSpec,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&opts),
        "sweep" => cmd_sweep(&opts),
        "bench" => cmd_bench(&opts),
        "regress" => cmd_regress(&opts),
        "recommend" => cmd_recommend(&opts),
        "audit" => cmd_audit(&opts),
        "calibrate" => cmd_calibrate(&opts),
        "list" => cmd_list(),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
eag — encrypted all-gather simulator and benchmark CLI

commands:
  run        simulate one collective once (--algo, --p, --nodes, --size;
             optional --op allgather|allgatherv|bcast|gather|gatherv|
             scatter|scatterv|alltoall — default allgather; --op also
             accepts op/variant in one flag, e.g. --op bcast/binomial;
             optional --mapping block|cyclic, --profile, --real, --trace,
             --chrome-trace out.json, --cipher
             aes-gcm|aes-gcm-siv|chacha20-poly1305).
             Repeatable --crash RANK@STEP[eEPOCH][a][h] switches to a
             crash-tolerant run surviving that schedule: STEP counts the
             rank's peer sends within its arming epoch (e1 = inside the
             first agreement instance), 'a' dies after the send leaves,
             'h' is a hard crash (heartbeat detection only). A schedule
             replays deterministically: same flags, same recovery.
  sweep      best-scheme table across sizes (--p, --nodes; optional
             --mapping, --profile, --sizes 1B,1KB,…, --csv out.csv)
  bench      run the fixed deterministic smoke suite (latency entries,
             crash-recovery cells, and the concurrent-sessions sweep:
             throughput and p95/p99 tail latency vs 1→10k tenant sessions)
             and emit the machine-readable report
             (--json PATH or '-' for stdout;
             --probe adds wall-clock crypto throughput — never commit
             probed reports as baselines)
  regress    gate a report against a baseline (--baseline BENCH_x.json;
             optional --current BENCH_y.json, else the baseline's suite is
             re-run; --threshold pct, --confidence 0..1). Exits nonzero on
             a statistically significant regression (mean or p99 tail),
             metric drift, or missing entries
  recommend  model-driven algorithm pick (--p, --nodes, --size)
  audit      wiretap security audit of all encrypted algorithms
             (--p, --nodes; optional --size)
  calibrate  measure THIS machine's crypto/memcpy speeds for every AEAD
             backend, fit per-suite Hockney constants, and compare
             algorithms under each fitted profile (optional --base
             noleland|bridges2, --p, --nodes)
  list       list all algorithms";

struct Options {
    flags: HashMap<String, String>,
    /// Every `--crash` occurrence, in order — the one repeatable flag
    /// (`flags` is last-wins).
    crashes: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut flags = HashMap::new();
        let mut crashes = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            // Boolean flags.
            if matches!(name, "real" | "trace" | "probe") {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            if name == "crash" {
                crashes.push(value.clone());
                continue;
            }
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Options { flags, crashes })
    }

    fn usize_of(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    fn size_of(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => parse_size(v).ok_or_else(|| format!("--{name}: bad size {v:?}")),
        }
    }

    fn mapping(&self) -> Result<Mapping, String> {
        match self.flags.get("mapping").map(String::as_str) {
            None | Some("block") => Ok(Mapping::Block),
            Some("cyclic") => Ok(Mapping::Cyclic),
            Some(other) => Err(format!("--mapping: {other:?} (use block|cyclic)")),
        }
    }

    fn profile_name(&self) -> String {
        self.flags
            .get("profile")
            .cloned()
            .unwrap_or_else(|| "noleland".to_string())
    }

    fn bool_of(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Parses --cipher (default aes-gcm).
    fn cipher(&self) -> Result<CipherSuite, String> {
        match self.flags.get("cipher") {
            None => Ok(CipherSuite::AesGcm128),
            Some(v) => CipherSuite::by_name(v).ok_or_else(|| {
                format!("--cipher: {v:?} (use aes-gcm|aes-gcm-siv|chacha20-poly1305)")
            }),
        }
    }

    fn f64_of(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    /// Parses and validates --p / --nodes.
    fn shape(&self, default_p: usize, default_nodes: usize) -> Result<(usize, usize), String> {
        let p = self.usize_of("p", default_p)?;
        let nodes = self.usize_of("nodes", default_nodes)?;
        if p == 0 || nodes == 0 {
            return Err("--p and --nodes must be at least 1".into());
        }
        if p % nodes != 0 {
            return Err(format!(
                "--p {p} must be a multiple of --nodes {nodes} (the paper's ℓ = p/N assumption)"
            ));
        }
        Ok((p, nodes))
    }

    /// Parses every `--crash` occurrence into the planned crash schedule.
    fn crash_schedule(&self) -> Result<Vec<Crash>, String> {
        self.crashes.iter().map(|s| parse_crash(s)).collect()
    }
}

/// Parses one `--crash` spec: `RANK@STEP[eEPOCH][a][h]`.
///
/// * `3@1`   — rank 3 dies just before its 2nd peer send (epoch 0);
/// * `2@0e1` — rank 2 dies at epoch 1's first send, i.e. inside round 0
///   of the first survivor-agreement instance;
/// * `4@0a`  — rank 4 dies just *after* its first send left;
/// * `1@0h`  — hard crash: no exit notice, heartbeat detection only.
fn parse_crash(spec: &str) -> Result<Crash, String> {
    let bad = || format!("--crash: bad spec {spec:?} (use RANK@STEP[eEPOCH][a][h])");
    let (rank_s, rest) = spec.split_once('@').ok_or_else(bad)?;
    let rank: usize = rank_s.parse().map_err(|_| bad())?;
    let digits = |s: &str| s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let step_end = digits(rest);
    let step: u64 = rest[..step_end].parse().map_err(|_| bad())?;
    let mut tail = &rest[step_end..];
    let mut epoch = 0u64;
    if let Some(t) = tail.strip_prefix('e') {
        let end = digits(t);
        epoch = t[..end].parse().map_err(|_| bad())?;
        tail = &t[end..];
    }
    let (mut after, mut hard) = (false, false);
    for c in tail.chars() {
        match c {
            'a' => after = true,
            'h' => hard = true,
            _ => return Err(bad()),
        }
    }
    let c = if after {
        Crash::after(rank, step)
    } else {
        Crash::before(rank, step)
    };
    let c = c.at_epoch(epoch);
    Ok(if hard { c.hard() } else { c })
}

/// The variant `eag run --op <operation>` picks when no `--algo` is given.
/// The all-gathers have no obvious default among 19 variants, so they keep
/// requiring `--algo`.
fn default_collective(op: &str) -> Option<Collective> {
    let variant = match Operation::by_name(op)? {
        Operation::Allgather | Operation::Allgatherv => return None,
        Operation::Broadcast
        | Operation::Gather
        | Operation::Gatherv
        | Operation::Scatter
        | Operation::Scatterv => "binomial",
        Operation::Alltoall => "pairwise",
    };
    Collective::by_names(op, variant)
}

/// Resolves `--op` / `--algo` into the collective to run. `--op` accepts
/// either an operation name (variant from `--algo`, or the operation's
/// default) or a combined `op/variant` spec.
fn parse_collective(opts: &Options) -> Result<Collective, String> {
    let (op, inline_variant) = match opts.flags.get("op").map(String::as_str) {
        Some(spec) => match spec.split_once('/') {
            Some((o, v)) => (o.to_string(), Some(v.to_string())),
            None => (spec.to_string(), None),
        },
        None => ("allgather".to_string(), None),
    };
    if Operation::by_name(&op).is_none() {
        return Err(format!("unknown operation {op:?} (try `eag list`)"));
    }
    match inline_variant.or_else(|| opts.flags.get("algo").cloned()) {
        Some(variant) => Collective::by_names(&op, &variant)
            .ok_or_else(|| format!("unknown collective {op}/{variant} (try `eag list`)")),
        None => default_collective(&op)
            .ok_or_else(|| format!("--op {op} needs --algo (try `eag list`)")),
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let (p, nodes) = opts.shape(16, 4)?;
    let m = opts.size_of("size", 1024)?;
    let mapping = opts.mapping()?;
    let collective = parse_collective(opts)?;
    let prof =
        profile::by_name(&opts.profile_name()).ok_or_else(|| "unknown profile".to_string())?;

    let crashes = opts.crash_schedule()?;
    if !crashes.is_empty() {
        return cmd_run_crash(opts, collective, p, nodes, m, mapping, prof, crashes);
    }

    let mut spec = WorldSpec::new(
        Topology::new(p, nodes, mapping),
        prof,
        if opts.bool_of("real") {
            DataMode::Real { seed: 7 }
        } else {
            DataMode::Phantom
        },
    );
    spec.suite = opts.cipher()?;
    spec.trace = opts.bool_of("trace");
    spec.capture_wire = opts.bool_of("real");

    let report = run(&spec, move |ctx| {
        let out = collective.run(ctx, m);
        collective.verify(ctx.rank(), &out, 7);
    });

    println!(
        "{} | p={p} N={nodes} {mapping} | {} blocks | profile {} | cipher {}",
        collective.name(),
        size_label(m),
        opts.profile_name(),
        spec.suite
    );
    println!("latency: {:.2} µs", report.latency_us);
    let mx = report.max_metrics();
    println!(
        "critical path: rc={} sc={}B re={} se={}B rd={} sd={}B",
        mx.comm_rounds,
        mx.sc_payload(),
        mx.enc_rounds,
        mx.enc_bytes,
        mx.dec_rounds,
        mx.dec_bytes
    );
    // Every new operation is encrypted by construction; among the
    // all-gathers only the encrypted variants promise a clean wiretap.
    let encrypted = match collective {
        Collective::Allgather(a) | Collective::Allgatherv(a) => a.is_encrypted(),
        _ => true,
    };
    if encrypted && opts.bool_of("real") {
        println!(
            "wiretap: {} frames, plaintext seen: {}",
            report.wiretap.frame_count(),
            report.wiretap.saw_plaintext_frame()
        );
    }
    if spec.trace {
        print!("{}", eag_runtime::trace::render_gantt(&report.traces, 100));
        if let Some(path) = opts.flags.get("chrome-trace") {
            let json = eag_runtime::trace::to_chrome_trace(&report.traces);
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            println!("chrome trace written to {path} (open in chrome://tracing)");
        }
    }
    if let Some(path) = opts.flags.get("json") {
        // Machine-readable single-entry report: re-measured through the
        // harness (reps + metrics) so the JSON matches what `eag bench`
        // would emit for this cell.
        let case = eag_bench::report::SuiteCase {
            cfg: SimConfig {
                p,
                nodes,
                mapping,
                profile: opts.profile_name(),
                reps: opts.usize_of("reps", 3)?,
                nic_contention: spec.nic_contention,
                data_seed: None,
                suite: spec.suite,
            },
            collective,
            msg_bytes: m,
        };
        let bench = eag_bench::report::run_suite("run", &opts.profile_name(), &[case]);
        write_report(&bench, path)?;
    }
    Ok(())
}

/// `eag run --crash …`: one crash-tolerant collective surviving the planned
/// crash schedule. Runs the operation's recovery wrapper under real payloads
/// (survivor agreement seals actual failure bitmaps and the outputs verify
/// bit-exact), with NIC contention off and flag-based detection, so a given
/// schedule replays deterministically.
#[allow(clippy::too_many_arguments)]
fn cmd_run_crash(
    opts: &Options,
    collective: Collective,
    p: usize,
    nodes: usize,
    m: usize,
    mapping: Mapping,
    prof: eag_netsim::ClusterProfile,
    crashes: Vec<Crash>,
) -> Result<(), String> {
    if let Some(c) = crashes.iter().find(|c| c.rank >= p) {
        return Err(format!("--crash: rank {} is outside 0..{p}", c.rank));
    }
    let seed = 7u64;
    let mut spec = WorldSpec::new(
        Topology::new(p, nodes, mapping),
        prof,
        DataMode::Real { seed },
    );
    spec.suite = opts.cipher()?;
    spec.nic_contention = false;
    spec.faults = FaultPlan {
        crashes: crashes.clone(),
        ..FaultPlan::default()
    };
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_secs(5),
        max_attempts: 3,
        backoff: 2.0,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    if crashes.iter().any(|c| c.hard) {
        // Hard crashes leave no exit notice: arm the heartbeat-staleness
        // suspicion clock or survivors would wait out the full timeout.
        spec.suspect_after = Some(Duration::from_millis(50));
    }
    eag_runtime::quiet_expected_panics();

    let report = run_crashable(&spec, move |ctx| {
        let out = collective.recover(ctx, m);
        collective.verify(ctx.rank(), &out.output, seed);
        out
    });

    let schedule = crashes
        .iter()
        .map(|c| {
            format!(
                "{}@{}{}{}{}",
                c.rank,
                c.phase_step,
                if c.epoch > 0 {
                    format!("e{}", c.epoch)
                } else {
                    String::new()
                },
                if c.after_send { "a" } else { "" },
                if c.hard { "h" } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "{} | p={p} N={nodes} {mapping} | {} blocks | profile {} | crash schedule [{schedule}]",
        collective.name(),
        size_label(m),
        opts.profile_name(),
    );
    println!(
        "crashed: {:?} | survivors: {}",
        report.crashed,
        p - report.crashed.len()
    );
    if let Some(out) = report.outputs.iter().flatten().next() {
        println!(
            "agreed failed set: {:?} | recovery epochs: {}",
            out.failed, out.epochs
        );
    }
    println!(
        "latency: {:.2} µs (clean run + detection + agreement + re-runs)",
        report.latency_us
    );
    if report.crashed.is_empty() {
        println!("note: no planned crash fired (the schedule never reached its send steps)");
    }
    Ok(())
}

/// Writes a report as JSON to `path`, or to stdout when `path` is `-`.
fn write_report(report: &eag_bench::BenchReport, path: &str) -> Result<(), String> {
    let json = report.to_json();
    if path == "-" {
        print!("{json}");
    } else {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "bench report written to {path} ({} entries, {} recovery, {} sessions{})",
            report.entries.len(),
            report.recovery.len(),
            report.sessions.len(),
            if report.deterministic {
                ", deterministic"
            } else {
                ", NOT deterministic — do not commit as a baseline"
            }
        );
    }
    Ok(())
}

fn cmd_bench(opts: &Options) -> Result<(), String> {
    let mut report = eag_bench::report::run_smoke_suite();
    if opts.bool_of("probe") {
        let mut points = Vec::new();
        for suite in CipherSuite::ALL {
            points.extend(
                eag_crypto::probe::probe_throughput_suite(
                    suite,
                    &eag_crypto::probe::DEFAULT_PROBE_SIZES,
                    0.05,
                )
                .iter()
                .map(|p| eag_bench::report::CryptoProbePoint {
                    cipher_suite: suite.name().to_string(),
                    msg_bytes: p.msg_bytes as u64,
                    seal_mb_per_s: p.seal_mb_per_s,
                    open_mb_per_s: p.open_mb_per_s,
                }),
            );
        }
        report = report.with_crypto(eag_bench::report::CryptoProbe { points });
    }
    let path = opts.flags.get("json").map(String::as_str).unwrap_or("-");
    write_report(&report, path)
}

fn cmd_regress(opts: &Options) -> Result<(), String> {
    let baseline_path = opts
        .flags
        .get("baseline")
        .ok_or("regress needs --baseline BENCH_<profile>.json")?;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = eag_bench::BenchReport::from_json(&baseline_text)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    let current = match opts.flags.get("current") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            eag_bench::BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            println!(
                "re-running suite {:?} ({} cases, {} recovery, {} sessions) from the baseline…",
                baseline.suite,
                baseline.entries.len(),
                baseline.recovery.len(),
                baseline.sessions.len()
            );
            let cases = eag_bench::report::suite_from_report(&baseline)?;
            let recovery = eag_bench::report::recovery_suite_from_report(&baseline)?;
            let sessions = eag_bench::sessions::session_suite_from_report(&baseline)?;
            eag_bench::report::run_suite_full(
                &baseline.suite,
                &baseline.profile,
                &cases,
                &recovery,
                &sessions,
            )
        }
    };
    let gate = eag_bench::regress::GateConfig {
        threshold_pct: opts.f64_of("threshold", 10.0)?,
        confidence: opts.f64_of("confidence", 0.95)?,
    };
    if !(0.5..1.0).contains(&gate.confidence) {
        return Err(format!(
            "--confidence must be in [0.5, 1.0), got {}",
            gate.confidence
        ));
    }
    let out = eag_bench::regress::compare(&baseline, &current, &gate);
    for c in &out.comparisons {
        println!("{c}");
    }
    use eag_bench::regress::Verdict;
    println!(
        "gate: {} compared, {} regressed, {} tail-regressed (p99), {} improved, \
         {} metric drift, {} unmatched (threshold {}%, confidence {})",
        out.comparisons.len(),
        out.count(&Verdict::Regressed),
        out.count(&Verdict::TailRegressed),
        out.count(&Verdict::Improved),
        out.count(&Verdict::MetricsDrift),
        out.count(&Verdict::Unmatched),
        gate.threshold_pct,
        gate.confidence
    );
    if out.pass {
        println!("PASS");
        Ok(())
    } else {
        // Not a usage error: fail without re-printing the usage text.
        eprintln!("error: regression gate FAILED");
        std::process::exit(1);
    }
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let (p, nodes) = opts.shape(128, 8)?;
    let cfg = SimConfig {
        p,
        nodes,
        mapping: opts.mapping()?,
        profile: opts.profile_name(),
        reps: 3,
        nic_contention: true,
        data_seed: None,
        suite: eag_runtime::CipherSuite::AesGcm128,
    };
    let sizes: Vec<usize> = match opts.flags.get("sizes") {
        None => vec![1, 64, 1024, 8 * 1024, 64 * 1024, 1024 * 1024],
        Some(list) => list
            .split(',')
            .map(|s| parse_size(s).ok_or_else(|| format!("bad size {s:?}")))
            .collect::<Result<_, _>>()?,
    };
    let rows = best_scheme_table(&cfg, &sizes);
    if let Some(path) = opts.flags.get("csv") {
        let csv = eag_bench::tables::render_best_scheme_csv(&rows);
        std::fs::write(path, csv).map_err(|e| format!("writing {path}: {e}"))?;
        println!("csv written to {path}");
    }
    print!(
        "{}",
        render_best_scheme_table(
            &format!(
                "Best scheme sweep — p={}, N={}, {} mapping, {} profile",
                cfg.p, cfg.nodes, cfg.mapping, cfg.profile
            ),
            &rows
        )
    );
    Ok(())
}

fn cmd_recommend(opts: &Options) -> Result<(), String> {
    let (p, nodes) = opts.shape(128, 8)?;
    let m = opts.size_of("size", 64 * 1024)?;
    let prof =
        profile::by_name(&opts.profile_name()).ok_or_else(|| "unknown profile".to_string())?;
    let pick = eag_core::recommend(p, nodes, m, &prof.model);
    println!(
        "recommended scheme for p={p}, N={nodes}, {} blocks on {}: {}",
        size_label(m),
        opts.profile_name(),
        pick.name()
    );
    for &algo in Algorithm::encrypted_all() {
        if let Some(t) = eag_core::predict_latency_us(algo, p, nodes, m, &prof.model) {
            println!("  {:<10} {t:>12.2} µs (model)", algo.name());
        }
    }
    Ok(())
}

fn cmd_audit(opts: &Options) -> Result<(), String> {
    let (p, nodes) = opts.shape(12, 3)?;
    let m = opts.size_of("size", 256)?;
    let seed = 17u64;
    println!("wiretap audit: p={p}, N={nodes}, {} blocks", size_label(m));
    for &algo in Algorithm::encrypted_all() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let mut spec = WorldSpec::new(
                Topology::new(p, nodes, mapping),
                profile::free(),
                DataMode::Real { seed },
            );
            spec.capture_wire = true;
            let report = run(&spec, move |ctx| {
                allgather(ctx, algo, m).verify(seed);
            });
            let mut leaked = report.wiretap.saw_plaintext_frame();
            for rank in 0..p {
                if m >= 16 && report.wiretap.contains(&pattern_block(seed, rank, m)) {
                    leaked = true;
                }
            }
            println!(
                "  {:<10} {:<6} {}",
                algo.name(),
                mapping.to_string(),
                if leaked { "LEAKED" } else { "clean" }
            );
            if leaked {
                return Err(format!("{algo} leaked plaintext"));
            }
        }
    }
    println!("all encrypted algorithms clean");
    Ok(())
}

fn cmd_calibrate(opts: &Options) -> Result<(), String> {
    let base = opts
        .flags
        .get("base")
        .cloned()
        .unwrap_or_else(|| "noleland".to_string());
    let (p, nodes) = opts.shape(32, 4)?;

    // Calibrate every AEAD backend: per-suite Hockney fits feed per-suite
    // profiles, so the algorithm comparison below answers "which collective
    // wins under *this* cipher on *this* machine".
    let mut cals = Vec::new();
    for suite in CipherSuite::ALL {
        println!("measuring local {suite} and memcpy costs…");
        let cal = eag_bench::calibrate::calibrate_local_suite(&base, suite)
            .ok_or_else(|| format!("unknown base profile {base:?}"))?;
        cals.push(cal);
    }

    for cal in &cals {
        let model = &cal.profile.model;
        println!(
            "
fitted constants ({}):",
            cal.profile.name
        );
        println!(
            "  encrypt : {:.3} µs + m / {:.0} MB/s",
            model.crypto.enc_alpha_us, model.crypto.enc_bandwidth
        );
        println!(
            "  decrypt : {:.3} µs + m / {:.0} MB/s",
            model.crypto.dec_alpha_us, model.crypto.dec_bandwidth
        );
        println!(
            "  memcpy  : {:.3} µs + m / {:.0} MB/s",
            model.copy_alpha_us, model.copy_bandwidth
        );
    }

    // Per-size seal throughput side by side, with the winning backend —
    // the measured backend-crossover table.
    println!(
        "
measured seal throughput (MB/s):"
    );
    print!("{:>8}", "size");
    for cal in &cals {
        print!(" {:>18}", cal.suite.name());
    }
    println!(" {:>18}", "fastest");
    for (i, s) in cals[0].seal.iter().enumerate() {
        print!("{:>8}", size_label(s.bytes));
        let mut best: Option<(&str, f64)> = None;
        for cal in &cals {
            let sample = &cal.seal[i];
            let mbps = sample.bytes as f64 / sample.secs_per_op / 1e6;
            print!(" {mbps:>18.0}");
            if best.is_none_or(|(_, b)| mbps > b) {
                best = Some((cal.suite.name(), mbps));
            }
        }
        println!(" {:>18}", best.expect("at least one suite").0);
    }

    // Algorithm crossover under each suite's fitted profile: where the
    // encrypted schemes overtake the MPI baseline depends on the cipher's
    // αe/βe, so the table is per backend.
    for cal in &cals {
        println!(
            "
algorithm comparison under {} (p={p}, N={nodes}):",
            cal.profile.name
        );
        println!(
            "{:>8} {:>14} {:>12} {:>12}",
            "size", "MPI (µs)", "Naive", "best"
        );
        for m in [1024usize, 64 * 1024, 1024 * 1024] {
            let latency = |algo: Algorithm| {
                let spec = WorldSpec::new(
                    Topology::new(p, nodes, Mapping::Block),
                    cal.profile.clone(),
                    DataMode::Phantom,
                );
                run(&spec, move |ctx| {
                    allgather(ctx, algo, m).verify(0);
                })
                .latency_us
            };
            let mpi = latency(Algorithm::Mvapich);
            let naive = latency(Algorithm::Naive);
            let (best, best_t) = Algorithm::encrypted_all()
                .iter()
                .filter(|&&a| a != Algorithm::Naive)
                .map(|&a| (a, latency(a)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            println!(
                "{:>8} {:>14.2} {:>+11.1}% {:>+11.1}% ({})",
                size_label(m),
                mpi,
                (naive / mpi - 1.0) * 100.0,
                (best_t / mpi - 1.0) * 100.0,
                best
            );
        }
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("unencrypted baselines:");
    for a in Algorithm::unencrypted_all() {
        println!("  {}", a.name());
    }
    println!("encrypted:");
    for a in Algorithm::encrypted_all() {
        println!(
            "  {}{}",
            a.name(),
            if a.supports_varying() {
                "  (supports all-gather-v)"
            } else {
                ""
            }
        );
    }
    println!("other collectives (--op, all encrypted):");
    for c in Collective::new_operations_all() {
        println!("  {}", c.name());
    }
    println!("  allgatherv/<any varying-capable algorithm above>");
    Ok(())
}
