//! Shape regression suite: checks the *qualitative* claims of the paper's
//! evaluation against the simulator, one PASS/FAIL line per claim. This is
//! the reproduction contract of EXPERIMENTS.md in executable form — run it
//! after touching the algorithms or the cost model.

use eag_bench::fmt::parse_size;
use eag_bench::tables::{best_scheme_table, candidate_schemes};
use eag_bench::{simulate, SimConfig};
use eag_core::Algorithm;
use eag_netsim::Mapping;
use std::process::ExitCode;

struct Checker {
    failures: usize,
    checks: usize,
}

impl Checker {
    fn claim(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name}  ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name}  ({detail})");
        }
    }
}

fn main() -> ExitCode {
    let mut c = Checker {
        failures: 0,
        checks: 0,
    };
    let block = SimConfig::noleland(Mapping::Block);
    let cyclic = SimConfig::noleland(Mapping::Cyclic);

    // --- Table III claims (block mapping) ---------------------------------
    let sizes: Vec<usize> = ["1B", "64B", "2KB", "32KB", "2MB"]
        .iter()
        .map(|s| parse_size(s).unwrap())
        .collect();
    let rows = best_scheme_table(&block, &sizes);

    c.claim(
        "T3: Naive overhead is large at every size",
        rows.iter().all(|r| r.naive_overhead_pct > 10.0),
        format!(
            "min Naive overhead {:.1}%",
            rows.iter()
                .map(|r| r.naive_overhead_pct)
                .fold(f64::INFINITY, f64::min)
        ),
    );
    c.claim(
        "T3: best scheme always beats Naive",
        rows.iter()
            .all(|r| r.best_overhead_pct < r.naive_overhead_pct),
        "pairwise comparison over all sizes".into(),
    );
    c.claim(
        "T3: best scheme goes negative (beats unencrypted MPI) for large sizes",
        rows.last().unwrap().best_overhead_pct < 0.0,
        format!(
            "2MB best overhead {:+.1}%",
            rows.last().unwrap().best_overhead_pct
        ),
    );
    c.claim(
        "T3: small-message winner is a round-efficient scheme",
        matches!(
            rows[0].best,
            Algorithm::ORd | Algorithm::ORd2 | Algorithm::Hs1 | Algorithm::CRd
        ),
        format!("1B winner {}", rows[0].best),
    );
    c.claim(
        "T3: large-message winner is a bound-meeting scheme",
        matches!(
            rows.last().unwrap().best,
            Algorithm::Hs2 | Algorithm::Hs1 | Algorithm::CRing | Algorithm::CRd
        ),
        format!("2MB winner {}", rows.last().unwrap().best),
    );

    // --- Table IV claims (cyclic mapping) ---------------------------------
    let big = parse_size("2MB").unwrap();
    let mpi_block = simulate(&block, Algorithm::Mvapich, big);
    let mpi_cyclic = simulate(&cyclic, Algorithm::Mvapich, big);
    let degradation = mpi_cyclic.mean / mpi_block.mean;
    c.claim(
        "T4: MVAPICH degrades ~2-4x under cyclic mapping at 2MB (paper: 2.5x)",
        (1.8..5.0).contains(&degradation),
        format!("degradation {degradation:.2}x"),
    );
    let cring_block = simulate(&block, Algorithm::CRing, big).mean;
    let cring_cyclic = simulate(&cyclic, Algorithm::CRing, big).mean;
    c.claim(
        "T4: C-Ring is mapping-oblivious at 2MB",
        ((cring_block - cring_cyclic).abs() / cring_block) < 0.10,
        format!("block {cring_block:.0}µs vs cyclic {cring_cyclic:.0}µs"),
    );

    // --- Table II / bounds claims ------------------------------------------
    let lb = eag_core::lower_bounds(128, 8, 1024);
    let mut all_match = true;
    for &algo in Algorithm::encrypted_all() {
        if let Some(pred) = eag_core::predict(algo, 128, 8, 1024) {
            all_match &= pred.sd >= lb.sd && pred.se >= lb.se;
        }
    }
    c.claim(
        "T2: every prediction respects the Table I bounds",
        all_match,
        "se/sd vs lower bounds at p=128 N=8".into(),
    );

    // --- Figure 7 claims ----------------------------------------------------
    let m_small = 4usize;
    let ord2 = simulate(&block, Algorithm::ORd2, m_small).mean;
    let oring = simulate(&block, Algorithm::ORing, m_small).mean;
    c.claim(
        "F7a: O-RD2 beats O-Ring for tiny messages",
        ord2 < oring,
        format!("{ord2:.1}µs vs {oring:.1}µs at 4B"),
    );
    let m_large = parse_size("1MB").unwrap();
    let hs2 = simulate(&block, Algorithm::Hs2, m_large).mean;
    let naive = simulate(&block, Algorithm::Naive, m_large).mean;
    c.claim(
        "F7c: HS2 beats Naive by a wide margin at 1MB",
        hs2 < 0.5 * naive,
        format!("{hs2:.0}µs vs Naive {naive:.0}µs"),
    );

    // --- Crossover claims ----------------------------------------------------
    let ord_small = simulate(&block, Algorithm::ORd, m_small).mean;
    let ord2_large = simulate(&block, Algorithm::ORd2, m_large).mean;
    let ord_large = simulate(&block, Algorithm::ORd, m_large).mean;
    c.claim(
        "IV-B: O-RD2 better small, O-RD better large",
        ord2 <= ord_small && ord_large < ord2_large,
        format!("small {ord2:.1} vs {ord_small:.1}; large {ord_large:.0} vs {ord2_large:.0}"),
    );

    // --- Candidate sanity ----------------------------------------------------
    c.claim(
        "best-scheme candidates are the paper's seven new algorithms",
        candidate_schemes().len() == 7 && !candidate_schemes().contains(&Algorithm::Naive),
        format!("{} candidates", candidate_schemes().len()),
    );

    println!("\n{}/{} shape claims hold", c.checks - c.failures, c.checks);
    if c.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
