//! Regenerates the paper's Table I: lower bounds for encrypted all-gather.

use eag_bench::tables::render_table1;

fn main() {
    // The paper's two evaluation configurations.
    print!("{}", render_table1(128, 8, 1024));
    println!();
    print!("{}", render_table1(1024, 16, 1024));
}
