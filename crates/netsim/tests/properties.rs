//! Property-based tests for the topology and the NIC interval allocator.

use eag_netsim::nic::NodeNic;
use eag_netsim::{LinkClass, Mapping, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        1usize..=8,
        1usize..=6,
        prop_oneof![Just(Mapping::Block), Just(Mapping::Cyclic)],
    )
        .prop_map(|(ell, nodes, mapping)| Topology::new(ell * nodes, nodes, mapping))
}

proptest! {
    /// ranks_on_node partitions 0..p; local_index/peer_on_node invert.
    #[test]
    fn topology_partition_and_inverses(topo in arb_topology()) {
        let p = topo.p();
        let mut seen = vec![false; p];
        for node in 0..topo.nodes() {
            for r in topo.ranks_on_node(node) {
                prop_assert!(!seen[r]);
                seen[r] = true;
                prop_assert_eq!(topo.node_of(r), node);
                prop_assert_eq!(topo.peer_on_node(r, topo.local_index(r)), r);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Leaders are on their own node with local index 0.
    #[test]
    fn leaders_are_first_on_their_node(topo in arb_topology()) {
        for node in 0..topo.nodes() {
            let leader = topo.leader_of(node);
            prop_assert_eq!(topo.node_of(leader), node);
            prop_assert_eq!(topo.local_index(leader), 0);
            prop_assert!(topo.is_leader(leader));
        }
    }

    /// The ring order crosses node boundaries exactly N times (with wrap).
    #[test]
    fn ring_order_minimizes_crossings(topo in arb_topology()) {
        let order = topo.ring_order();
        let crossings = (0..order.len())
            .filter(|&i| {
                topo.link(order[i], order[(i + 1) % order.len()]) == LinkClass::Inter
            })
            .count();
        let expect = if topo.nodes() == 1 { 0 } else { topo.nodes() };
        prop_assert_eq!(crossings, expect);
    }

    /// Link classification is symmetric.
    #[test]
    fn links_are_symmetric(topo in arb_topology(), a in 0usize..48, b in 0usize..48) {
        let (a, b) = (a % topo.p(), b % topo.p());
        prop_assert_eq!(topo.link(a, b), topo.link(b, a));
    }

    /// NIC allocator: each reservation finishes no earlier than
    /// now + occupancy, and total occupancy is conserved (the last finish
    /// time is at least total_bytes / bandwidth past the earliest start).
    #[test]
    fn nic_reservations_conserve_occupancy(
        reservations in proptest::collection::vec((0.0f64..100.0, 1usize..1000), 1..40),
    ) {
        let bw = 10.0;
        let nic = NodeNic::new(bw);
        let mut last_finish: f64 = 0.0;
        let mut total_bytes = 0usize;
        let mut earliest: f64 = f64::INFINITY;
        for &(now, bytes) in &reservations {
            let finish = nic.reserve(now, bytes);
            prop_assert!(finish >= now + bytes as f64 / bw - 1e-9);
            last_finish = last_finish.max(finish);
            total_bytes += bytes;
            earliest = earliest.min(now);
        }
        // The NIC can't transmit faster than its aggregate bandwidth.
        prop_assert!(
            last_finish >= earliest + total_bytes as f64 / bw - 1e-6,
            "finish {last_finish} vs {earliest} + {total_bytes}/{bw}"
        );
    }

    /// The ledger's intervals stay disjoint, sorted, and positive-length
    /// under arbitrary reservation sequences.
    #[test]
    fn nic_intervals_stay_disjoint_and_sorted(
        reservations in proptest::collection::vec((0.0f64..50.0, 1usize..400), 1..60),
    ) {
        let nic = NodeNic::new(7.0);
        for &(now, bytes) in &reservations {
            nic.reserve(now, bytes);
        }
        let busy = nic.busy_intervals();
        for w in busy.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-12, "overlap: {w:?}");
        }
        for &(s, e) in &busy {
            prop_assert!(e > s, "empty interval ({s}, {e})");
        }
        // Total busy time equals total occupancy.
        let busy_total: f64 = busy.iter().map(|&(s, e)| e - s).sum();
        let occupancy: f64 = reservations.iter().map(|&(_, b)| b as f64 / 7.0).sum();
        prop_assert!((busy_total - occupancy).abs() < 1e-6);
    }

    /// Reservations made at the same virtual instant serialize exactly.
    #[test]
    fn simultaneous_reservations_serialize(
        sizes in proptest::collection::vec(1usize..500, 1..20),
    ) {
        let bw = 5.0;
        let nic = NodeNic::new(bw);
        let mut finishes: Vec<f64> = sizes.iter().map(|&s| nic.reserve(0.0, s)).collect();
        finishes.sort_by(f64::total_cmp);
        let total: usize = sizes.iter().sum();
        prop_assert!((finishes.last().unwrap() - total as f64 / bw).abs() < 1e-9);
    }
}
