//! Rank-to-node topology and the two process mappings the paper evaluates.
//!
//! With `p` processes on `N` nodes (ℓ = p/N per node):
//! - **block order** maps rank `i` to node `⌊i/ℓ⌋`;
//! - **cyclic order** maps rank `i` to node `i mod N`.
//!
//! The paper shows the default MPI algorithms are sensitive to this mapping
//! (Tables III vs IV), while C-Ring is oblivious to it.

use crate::model::LinkClass;
use serde::{Deserialize, Serialize};

/// A process rank (0-based, as in MPI_Comm_rank).
pub type Rank = usize;

/// Process-to-node mapping order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mapping {
    /// Rank `i` runs on node `⌊i/ℓ⌋`.
    Block,
    /// Rank `i` runs on node `i mod N`.
    Cyclic,
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mapping::Block => f.write_str("block"),
            Mapping::Cyclic => f.write_str("cyclic"),
        }
    }
}

/// The cluster topology: `p` ranks over `nodes` nodes under a [`Mapping`].
///
/// `p` must be a multiple of `nodes` (the paper's standing assumption
/// ℓ = p/N; general `p` is handled by the algorithms, not the topology).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    p: usize,
    nodes: usize,
    mapping: Mapping,
}

impl Topology {
    /// Creates a topology. Panics if `p` is not a positive multiple of `nodes`.
    pub fn new(p: usize, nodes: usize, mapping: Mapping) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(p >= 1, "need at least one process");
        assert!(
            p.is_multiple_of(nodes),
            "p = {p} must be a multiple of the node count {nodes}"
        );
        Topology { p, nodes, mapping }
    }

    /// Total number of processes.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of nodes N.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Processes per node ℓ = p/N.
    pub fn procs_per_node(&self) -> usize {
        self.p / self.nodes
    }

    /// The mapping order in force.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> usize {
        debug_assert!(rank < self.p);
        match self.mapping {
            Mapping::Block => rank / self.procs_per_node(),
            Mapping::Cyclic => rank % self.nodes,
        }
    }

    /// Link class between two ranks.
    #[inline]
    pub fn link(&self, a: Rank, b: Rank) -> LinkClass {
        if a == b {
            LinkClass::SelfLoop
        } else if self.node_of(a) == self.node_of(b) {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }

    /// All ranks on `node`, in increasing rank order.
    pub fn ranks_on_node(&self, node: usize) -> Vec<Rank> {
        (0..self.p).filter(|&r| self.node_of(r) == node).collect()
    }

    /// The leader of `node`: its lowest rank.
    pub fn leader_of(&self, node: usize) -> Rank {
        match self.mapping {
            Mapping::Block => node * self.procs_per_node(),
            Mapping::Cyclic => node,
        }
    }

    /// Whether `rank` is its node's leader.
    pub fn is_leader(&self, rank: Rank) -> bool {
        self.leader_of(self.node_of(rank)) == rank
    }

    /// Index of `rank` among its node's ranks (0-based).
    pub fn local_index(&self, rank: Rank) -> usize {
        match self.mapping {
            Mapping::Block => rank % self.procs_per_node(),
            Mapping::Cyclic => rank / self.nodes,
        }
    }

    /// The `k`-th rank on the node of `rank`.
    pub fn peer_on_node(&self, rank: Rank, k: usize) -> Rank {
        debug_assert!(k < self.procs_per_node());
        let node = self.node_of(rank);
        match self.mapping {
            Mapping::Block => node * self.procs_per_node() + k,
            Mapping::Cyclic => node + k * self.nodes,
        }
    }

    /// A rank order that makes a ring traversal visit each node's processes
    /// consecutively (the "rank-ordered" ring of Kandalla et al. \[13\] that
    /// keeps Ring performance mapping-oblivious). Returns a permutation
    /// `order` such that consecutive entries are on the same node except at
    /// ℓ-sized boundaries; `order` visits node 0's ranks, then node 1's, ...
    pub fn ring_order(&self) -> Vec<Rank> {
        let mut order = Vec::with_capacity(self.p);
        for node in 0..self.nodes {
            order.extend(self.ranks_on_node(node));
        }
        order
    }

    /// Position of each rank inside [`Topology::ring_order`]: the inverse
    /// permutation.
    pub fn ring_position(&self) -> Vec<usize> {
        let order = self.ring_order();
        let mut pos = vec![0usize; self.p];
        for (i, &r) in order.iter().enumerate() {
            pos[r] = i;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_matches_paper_definition() {
        let t = Topology::new(9, 3, Mapping::Block);
        // P0..P2 on node 0, P3..P5 on node 1, P6..P8 on node 2 (paper Fig. 3).
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(2), 0);
        assert_eq!(t.node_of(3), 1);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.node_of(8), 2);
        assert_eq!(t.procs_per_node(), 3);
    }

    #[test]
    fn cyclic_mapping_matches_paper_definition() {
        let t = Topology::new(8, 4, Mapping::Cyclic);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(4), 0);
        assert_eq!(t.node_of(7), 3);
    }

    #[test]
    fn link_classes() {
        let t = Topology::new(8, 2, Mapping::Block);
        assert_eq!(t.link(0, 0), LinkClass::SelfLoop);
        assert_eq!(t.link(0, 3), LinkClass::Intra);
        assert_eq!(t.link(0, 4), LinkClass::Inter);
        assert_eq!(t.link(7, 4), LinkClass::Intra);
    }

    #[test]
    fn leaders_and_local_indices() {
        let b = Topology::new(8, 2, Mapping::Block);
        assert_eq!(b.leader_of(0), 0);
        assert_eq!(b.leader_of(1), 4);
        assert!(b.is_leader(4));
        assert!(!b.is_leader(5));
        assert_eq!(b.local_index(6), 2);
        assert_eq!(b.peer_on_node(6, 0), 4);

        let c = Topology::new(8, 2, Mapping::Cyclic);
        assert_eq!(c.leader_of(1), 1);
        assert_eq!(c.local_index(6), 3);
        assert_eq!(c.peer_on_node(6, 0), 0);
        assert_eq!(c.peer_on_node(6, 3), 6);
    }

    #[test]
    fn ranks_on_node_partition_all_ranks() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let t = Topology::new(12, 3, mapping);
            let mut seen = [false; 12];
            for node in 0..3 {
                let ranks = t.ranks_on_node(node);
                assert_eq!(ranks.len(), 4);
                for r in ranks {
                    assert_eq!(t.node_of(r), node);
                    assert!(!seen[r]);
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn ring_order_groups_nodes_consecutively() {
        let t = Topology::new(12, 3, Mapping::Cyclic);
        let order = t.ring_order();
        // Exactly N-1 inter-node boundaries inside the path, +1 wrap-around.
        let mut inter = 0;
        for i in 0..order.len() {
            let a = order[i];
            let b = order[(i + 1) % order.len()];
            if t.link(a, b) == LinkClass::Inter {
                inter += 1;
            }
        }
        assert_eq!(inter, 3);
    }

    #[test]
    fn ring_position_is_inverse_of_ring_order() {
        let t = Topology::new(16, 4, Mapping::Cyclic);
        let order = t.ring_order();
        let pos = t.ring_position();
        for (i, &r) in order.iter().enumerate() {
            assert_eq!(pos[r], i);
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_divisible_p() {
        let _ = Topology::new(10, 4, Mapping::Block);
    }
}
