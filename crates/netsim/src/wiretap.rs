//! A passive network adversary for tests.
//!
//! The threat model of the paper is a network eavesdropper: inter-node
//! traffic is visible (and tamperable), intra-node traffic is not. The
//! [`Wiretap`] records every frame that crosses an inter-node link so tests
//! can assert the security contract of every encrypted algorithm: *no
//! plaintext byte sequence ever appears on the wire*.

use eag_rope::Rope;
use parking_lot::Mutex;

/// What kind of payload a recorded frame claimed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Sent as plaintext (allowed only intra-node; the tap flags it).
    Plain,
    /// Sent as an encrypted frame (nonce ‖ ciphertext ‖ tag).
    Cipher,
    /// Phantom payload (cost simulation; no bytes to inspect).
    Phantom,
}

/// One captured inter-node frame.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload classification at capture time.
    pub kind: FrameKind,
    /// Wire length in bytes.
    pub len: usize,
    /// Captured bytes (empty for phantom frames). A refcounted rope view of
    /// the payload buffers in flight: the tap observes traffic without
    /// copying it.
    pub bytes: Rope,
}

/// Records all inter-node traffic of a run.
#[derive(Debug, Default)]
pub struct Wiretap {
    frames: Mutex<Vec<FrameRecord>>,
    crashes: Mutex<Vec<usize>>,
}

impl Wiretap {
    /// An empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame.
    pub fn capture(&self, record: FrameRecord) {
        self.frames.lock().push(record);
    }

    /// Number of captured frames.
    pub fn frame_count(&self) -> usize {
        self.frames.lock().len()
    }

    /// Snapshot of all captured frames.
    pub fn frames(&self) -> Vec<FrameRecord> {
        self.frames.lock().clone()
    }

    /// Total bytes observed on inter-node links.
    pub fn total_bytes(&self) -> usize {
        self.frames.lock().iter().map(|f| f.len).sum()
    }

    /// True if any captured frame was classified as plaintext.
    pub fn saw_plaintext_frame(&self) -> bool {
        self.frames
            .lock()
            .iter()
            .any(|f| f.kind == FrameKind::Plain)
    }

    /// True if `needle` occurs as a contiguous byte substring of any captured
    /// frame (segment boundaries in the captured rope are transparent). Used
    /// with high-entropy plaintext blocks: a hit means plaintext leaked onto
    /// the network.
    pub fn contains(&self, needle: &[u8]) -> bool {
        self.frames
            .lock()
            .iter()
            .any(|f| f.bytes.contains_subslice(needle))
    }

    /// Marks `rank` as crashed mid-run (an injected [`Crash`] fired). The
    /// adversary — and tests — can see where the traffic of a rank stops.
    ///
    /// [`Crash`]: crate::chaos::Crash
    pub fn note_crash(&self, rank: usize) {
        self.crashes.lock().push(rank);
    }

    /// Ranks that crashed during the run, in the order their deaths fired.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.crashes.lock().clone()
    }

    /// Clears all captured frames (crash notes are kept: they describe the
    /// run, not a traffic window).
    pub fn clear(&self) {
        self.frames.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, bytes: &[u8]) -> FrameRecord {
        FrameRecord {
            src: 0,
            dst: 1,
            kind,
            len: bytes.len(),
            bytes: Rope::from(bytes),
        }
    }

    #[test]
    fn records_and_counts() {
        let tap = Wiretap::new();
        tap.capture(frame(FrameKind::Cipher, &[1, 2, 3]));
        tap.capture(frame(FrameKind::Cipher, &[4, 5]));
        assert_eq!(tap.frame_count(), 2);
        assert_eq!(tap.total_bytes(), 5);
        assert!(!tap.saw_plaintext_frame());
    }

    #[test]
    fn flags_plaintext_frames() {
        let tap = Wiretap::new();
        tap.capture(frame(FrameKind::Plain, b"secret"));
        assert!(tap.saw_plaintext_frame());
    }

    #[test]
    fn substring_search() {
        let tap = Wiretap::new();
        tap.capture(frame(FrameKind::Cipher, b"xxTOPSECRETyy"));
        assert!(tap.contains(b"TOPSECRET"));
        assert!(!tap.contains(b"TOPSECRES"));
        assert!(!tap.contains(b""));
    }

    #[test]
    fn clear_empties_the_tap() {
        let tap = Wiretap::new();
        tap.capture(frame(FrameKind::Cipher, &[1]));
        tap.clear();
        assert_eq!(tap.frame_count(), 0);
    }

    #[test]
    fn crash_notes_survive_clear() {
        let tap = Wiretap::new();
        tap.note_crash(3);
        tap.capture(frame(FrameKind::Cipher, &[1]));
        tap.clear();
        assert_eq!(tap.crashed_ranks(), vec![3]);
    }
}
