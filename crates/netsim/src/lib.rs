//! # eag-netsim — network & crypto cost simulation for encrypted collectives
//!
//! The paper analyzes encrypted all-gather in Hockney's model: a message of
//! `m` bytes costs `α + β·m`, encryption costs `αe + βe·m`, decryption costs
//! `αd + βd·m` (Section IV-A). This crate implements that model as a
//! *virtual-time* cost simulator:
//!
//! - [`model::CostModel`] prices communication (per link class), encryption,
//!   decryption, memory copies, and barriers;
//! - [`profile`] ships calibrated cluster profiles: [`profile::noleland`]
//!   (the paper's local cluster: 32-core nodes, 100 Gbps InfiniBand) and
//!   [`profile::bridges2`] (PSC Bridges-2: 128-core nodes, 200 Gbps), plus
//!   idealized profiles for deterministic unit tests;
//! - [`topology::Topology`] maps ranks to nodes under block or cyclic
//!   process mapping — the two mappings the paper evaluates;
//! - [`nic::NodeNic`] optionally serializes concurrent inter-node streams of
//!   one node through a shared NIC with bounded aggregate bandwidth (this is
//!   what makes the paper's Concurrent algorithms shine: one core cannot
//!   saturate the link, ℓ cores can);
//! - [`wiretap::Wiretap`] records every frame crossing an inter-node link so
//!   tests can prove plaintext never leaves a node unencrypted.
//!
//! ```
//! use eag_netsim::{profile, LinkClass, Mapping, Topology};
//!
//! let topo = Topology::new(128, 8, Mapping::Block);
//! assert_eq!(topo.procs_per_node(), 16);
//! assert_eq!(topo.link(0, 15), LinkClass::Intra);
//! assert_eq!(topo.link(0, 16), LinkClass::Inter);
//!
//! // The Noleland model prices a 1 MB inter-node message.
//! let model = profile::noleland().model;
//! let t = model.comm_time(LinkClass::Inter, 1 << 20);
//! assert!(t > 90.0 && t < 110.0); // ~95 µs at ~11 GB/s + 2 µs startup
//! ```

#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod chaos;
pub mod fabric;
pub mod model;
pub mod nic;
pub mod profile;
pub mod topology;
pub mod wiretap;

pub use chaos::{Crash, FaultKind, FaultPlan};
pub use fabric::{FabricModel, FabricState};
pub use model::{CostModel, CryptoCost, LinkClass, LinkCost};
pub use profile::ClusterProfile;
pub use topology::{Mapping, Rank, Topology};
pub use wiretap::{FrameKind, FrameRecord, Wiretap};
