//! Deterministic fault injection — the "chaos fabric".
//!
//! A production collective cannot assume the lossless InfiniBand fabric the
//! paper (and CryptMPI before it) was designed for: frames get dropped,
//! delayed, duplicated, reordered, and — in the paper's threat model —
//! actively tampered with. This module describes *what* to inject; the
//! runtime's transport layer (see `eag-runtime`) decides how each injected
//! fault is detected and recovered (sequence numbers, transport checksums,
//! per-hop GCM verification, NACK + retransmit).
//!
//! Decisions are **stateless and seeded**: whether the frame with sequence
//! number `seq` on the `(src, dst, tag)` stream (on transmission `attempt`)
//! is faulted is a pure hash of `(seed, src, dst, tag, seq, attempt)`.
//! Because each rank's send sequence is deterministic, the injected fault
//! set is exactly reproducible run-to-run regardless of thread
//! interleaving — a chaos run that fails in CI can be replayed locally from
//! its seed alone.

/// One kind of in-flight perturbation of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The frame never arrives. Recovered by receive-timeout + NACK.
    Drop,
    /// The frame arrives late (virtual time). No recovery needed; stresses
    /// clock handling and out-of-order tolerance.
    Delay,
    /// The frame arrives twice. Recovered by sequence-number deduplication.
    Duplicate,
    /// The frame is delivered after a later send overtakes it. Recovered by
    /// tag matching + sequence-number deduplication.
    Reorder,
    /// One byte of the frame's payload is flipped on the wire. Recovered by
    /// transport checksum (random corruption) or per-hop GCM verification
    /// (checksum-evading adversarial corruption) + NACK.
    Tamper,
}

impl FaultKind {
    /// Every injectable kind, in a fixed order (used by sweep harnesses).
    pub fn all() -> &'static [FaultKind] {
        &[
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Tamper,
        ]
    }

    /// Short label for tables and traces.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "dup",
            FaultKind::Reorder => "reorder",
            FaultKind::Tamper => "tamper",
        }
    }
}

/// A seeded, replayable rank-crash event.
///
/// Unlike the message-level faults above — which perturb frames the
/// transport then recovers — a crash kills a rank's *thread* mid-collective.
/// The runtime cannot recover the rank; it can only detect the death,
/// agree on the surviving membership, and re-run the collective degraded
/// (see the recovery path in `eag-core`). The trigger is the crashing
/// rank's own send-step counter *within a membership epoch*, so the same
/// plan kills the rank at the same point of the same algorithm run-to-run
/// regardless of thread interleaving — including points inside the
/// recovery machinery itself (agreement rounds and degraded re-runs run
/// under epochs ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The rank whose thread dies.
    pub rank: usize,
    /// Which of the rank's own peer-bound send steps (0-based count of
    /// sends to a *different* rank, counted from the start of the arming
    /// epoch) triggers the death.
    pub phase_step: u64,
    /// The membership epoch the crash is armed in. Epoch 0 is the initial
    /// optimistic attempt; epoch `e ≥ 1` covers the e-th recovery
    /// iteration (its agreement rounds followed by its degraded re-run).
    /// The per-epoch send counter resets when a rank enters an epoch, so
    /// `phase_step` addresses a send *inside* that epoch's traffic.
    pub epoch: u64,
    /// Die after the triggering frame has left (`true`) or just before it
    /// would have been sent (`false`). Both points matter: dying before
    /// leaves the peer's receive permanently unsatisfied, dying after
    /// exercises the "message from a dead rank" admission path.
    pub after_send: bool,
    /// Hard crash: the dead rank leaves no exit notice, so survivors must
    /// suspect it via heartbeat staleness instead of the runner's
    /// immediate crash notice. Slower to detect but covers kill -9-style
    /// deaths rather than clean aborts.
    pub hard: bool,
}

impl Crash {
    /// Soft crash of `rank` just before its `phase_step`-th peer send
    /// (armed in epoch 0, the initial attempt).
    pub fn before(rank: usize, phase_step: u64) -> Self {
        Crash {
            rank,
            phase_step,
            epoch: 0,
            after_send: false,
            hard: false,
        }
    }

    /// Soft crash of `rank` just after its `phase_step`-th peer send
    /// (armed in epoch 0, the initial attempt).
    pub fn after(rank: usize, phase_step: u64) -> Self {
        Crash {
            rank,
            phase_step,
            epoch: 0,
            after_send: true,
            hard: false,
        }
    }

    /// Same event, but leaving no exit notice (heartbeat detection only).
    pub fn hard(mut self) -> Self {
        self.hard = true;
        self
    }

    /// Re-arm the event in membership epoch `epoch`. Epoch 1's early send
    /// steps land inside the first agreement rounds, so
    /// `Crash::before(r, 0).at_epoch(1)` kills `r` mid-agreement — the
    /// cascade the restartable-agreement machinery exists for.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }
}

/// A seeded plan of which inter-node frames to perturb, and how.
///
/// Rates are per-mille (‰) per frame, evaluated independently per
/// `(src, dst, tag, seq, attempt)`; at most one fault is injected per
/// frame.
/// `fault_nth_inter_frame` injects exactly one *recoverable* fault at the
/// n-th inter-node frame (counted globally), which is what the
/// single-fault recovery property tests use. `corrupt_nth_inter_frame` is
/// the legacy **unrecovered** active-adversary injection: it corrupts the
/// frame without arming any of the transport's recovery machinery, so GCM
/// must abort the collective (the security tests rely on this).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-frame fault hash. Two runs with equal seeds (and
    /// equal traffic) inject identical fault sets.
    pub seed: u64,
    /// Drop rate, ‰ of inter-node frames.
    pub drop_permille: u16,
    /// Delay rate, ‰ of inter-node frames.
    pub delay_permille: u16,
    /// Duplication rate, ‰ of inter-node frames.
    pub duplicate_permille: u16,
    /// Reorder rate, ‰ of inter-node frames.
    pub reorder_permille: u16,
    /// Tamper rate, ‰ of inter-node frames.
    pub tamper_permille: u16,
    /// When true, tampering recomputes the transport checksum after
    /// corrupting the payload — modeling an on-path adversary rather than
    /// random bit rot. Such frames pass the link-level check and are caught
    /// only by the per-hop GCM verification (sealed items) or not at all
    /// (plaintext items — exactly the integrity gap encryption closes).
    pub adversarial_tamper: bool,
    /// Virtual-time penalty added to a delayed frame's arrival, µs.
    pub delay_us: f64,
    /// Arm the runtime's reliability framing (sequence numbers, transport
    /// checksums, retransmit log, linger) even when every rate is zero.
    /// No fault is ever injected; this exists to measure the framing's
    /// overhead in isolation (the benches compare armed-at-zero-rate
    /// against fully disabled).
    pub armed: bool,
    /// Inject exactly one recoverable fault at the n-th inter-node frame
    /// (0-based global count). Retransmissions are not counted.
    pub fault_nth_inter_frame: Option<(u64, FaultKind)>,
    /// Legacy unrecovered adversary: flip one byte of the n-th inter-node
    /// frame with **no** recovery framing armed. The encrypted collectives
    /// must abort on it (GCM tag mismatch); unencrypted ones silently
    /// deliver wrong bytes.
    pub corrupt_nth_inter_frame: Option<u64>,
    /// Kill rank threads mid-collective, possibly several and possibly
    /// inside the recovery machinery itself. Each entry arms
    /// independently; the schedule's length is the fault bound `f` the
    /// recovery engine sizes its agreement rounds for. See [`Crash`].
    pub crashes: Vec<Crash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_permille: 0,
            delay_permille: 0,
            duplicate_permille: 0,
            reorder_permille: 0,
            tamper_permille: 0,
            adversarial_tamper: false,
            delay_us: 25.0,
            armed: false,
            fault_nth_inter_frame: None,
            corrupt_nth_inter_frame: None,
            crashes: Vec::new(),
        }
    }
}

/// splitmix64 — the statelessly-seedable mixer used for fault decisions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An all-zero plan with the given seed (faults armed one knob at a
    /// time by the caller).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The canonical chaos mix: `drop_permille`‰ drops plus
    /// `tamper_permille`‰ random tampering (e.g. `10, 10` = 1% + 1%).
    pub fn drop_and_tamper(drop_permille: u16, tamper_permille: u16, seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_permille,
            tamper_permille,
            ..FaultPlan::default()
        }
    }

    /// A plan injecting only `kind`, at `permille`‰.
    pub fn only(kind: FaultKind, permille: u16, seed: u64) -> Self {
        let mut plan = FaultPlan::seeded(seed);
        match kind {
            FaultKind::Drop => plan.drop_permille = permille,
            FaultKind::Delay => plan.delay_permille = permille,
            FaultKind::Duplicate => plan.duplicate_permille = permille,
            FaultKind::Reorder => plan.reorder_permille = permille,
            FaultKind::Tamper => plan.tamper_permille = permille,
        }
        plan
    }

    /// Whether any *recoverable* chaos knob is armed — this is what turns
    /// on the runtime's reliability framing (checksums, retransmit log,
    /// NACK/retry, linger). The legacy `corrupt_nth_inter_frame` is
    /// deliberately excluded: it models an adversary the transport must
    /// *not* recover from.
    pub fn enabled(&self) -> bool {
        self.armed
            || self.total_permille() > 0
            || self.fault_nth_inter_frame.is_some()
            || !self.crashes.is_empty()
    }

    /// The fault bound `f`: how many rank crashes this plan can fire. The
    /// recovery engine runs `max(2, f + 1)` agreement rounds per
    /// membership epoch so that one round is guaranteed crash-free.
    pub fn fault_bound(&self) -> usize {
        self.crashes.len()
    }

    fn total_permille(&self) -> u32 {
        self.drop_permille as u32
            + self.delay_permille as u32
            + self.duplicate_permille as u32
            + self.reorder_permille as u32
            + self.tamper_permille as u32
    }

    /// Decides whether frame `seq` of the `(src → dst, tag)` stream on
    /// transmission `attempt` (0 = original, 1+ = retransmits) is
    /// perturbed, and how. Pure function of the plan's seed and the
    /// arguments; `tag` participates so that algorithms which open a fresh
    /// tag per round (every frame at seq 0) still see independent per-frame
    /// decisions.
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        seq: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        let total = self.total_permille();
        if total == 0 {
            return None;
        }
        let mut h = self.seed ^ 0x6A09_E667_F3BC_C908;
        for word in [src as u64, dst as u64, tag, seq, attempt as u64] {
            h = splitmix64(h ^ word);
        }
        let roll = (h % 1000) as u32;
        let mut edge = self.drop_permille as u32;
        if roll < edge {
            return Some(FaultKind::Drop);
        }
        edge += self.delay_permille as u32;
        if roll < edge {
            return Some(FaultKind::Delay);
        }
        edge += self.duplicate_permille as u32;
        if roll < edge {
            return Some(FaultKind::Duplicate);
        }
        edge += self.reorder_permille as u32;
        if roll < edge {
            return Some(FaultKind::Reorder);
        }
        edge += self.tamper_permille as u32;
        if roll < edge {
            return Some(FaultKind::Tamper);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
        for seq in 0..1000 {
            assert_eq!(plan.decide(0, 1, 9, seq, 0), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_coords() {
        let a = FaultPlan::drop_and_tamper(10, 10, 42);
        let b = FaultPlan::drop_and_tamper(10, 10, 42);
        for seq in 0..500 {
            assert_eq!(a.decide(3, 7, 9, seq, 0), b.decide(3, 7, 9, seq, 0));
        }
        // A different seed gives a different fault set.
        let c = FaultPlan::drop_and_tamper(10, 10, 43);
        let differs = (0..500).any(|seq| a.decide(3, 7, 9, seq, 0) != c.decide(3, 7, 9, seq, 0));
        assert!(differs, "seed does not influence decisions");
    }

    #[test]
    fn retransmissions_hash_independently() {
        // A faulted (seq, attempt=0) must not deterministically fault every
        // retransmit of the same seq, or recovery could never converge.
        let plan = FaultPlan::only(FaultKind::Drop, 1000, 7); // always drop
        assert_eq!(plan.decide(0, 1, 9, 5, 0), Some(FaultKind::Drop));
        let plan = FaultPlan::only(FaultKind::Drop, 500, 7);
        let escapes = (0..64).any(|seq| {
            plan.decide(0, 1, 9, seq, 0) == Some(FaultKind::Drop)
                && plan.decide(0, 1, 9, seq, 1).is_none()
        });
        assert!(escapes, "attempt number does not reroll the fault hash");
    }

    #[test]
    fn rates_are_approximately_honored() {
        let plan = FaultPlan::only(FaultKind::Tamper, 100, 11); // 10%
        let n = 10_000u64;
        let hits = (0..n)
            .filter(|&seq| plan.decide(1, 2, 9, seq, 0) == Some(FaultKind::Tamper))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "tamper rate {rate} off 10%");
    }

    #[test]
    fn only_and_all_cover_every_kind() {
        for &kind in FaultKind::all() {
            let plan = FaultPlan::only(kind, 1000, 0);
            assert!(plan.enabled());
            assert_eq!(plan.decide(0, 1, 9, 0, 0), Some(kind));
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn legacy_corruption_does_not_arm_recovery() {
        let plan = FaultPlan {
            corrupt_nth_inter_frame: Some(0),
            ..FaultPlan::default()
        };
        assert!(!plan.enabled());
        let plan = FaultPlan {
            fault_nth_inter_frame: Some((0, FaultKind::Drop)),
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
    }

    #[test]
    fn crash_plan_arms_recovery_framing() {
        let plan = FaultPlan {
            crashes: vec![Crash::before(3, 2)],
            ..FaultPlan::default()
        };
        assert!(plan.enabled(), "crash detection rides on chaos framing");
        assert_eq!(plan.fault_bound(), 1);
        // Crashes are not message faults: frame decisions stay clean.
        for seq in 0..100 {
            assert_eq!(plan.decide(3, 1, 9, seq, 0), None);
        }
        // Constructors cover both trigger points and the hard knob.
        assert!(!Crash::before(3, 2).after_send);
        assert!(Crash::after(3, 2).after_send);
        assert!(Crash::before(0, 0).hard().hard);
        assert!(!Crash::before(0, 0).hard);
    }

    #[test]
    fn multi_crash_schedules_arm_per_epoch() {
        // A cascade: rank 3 dies in the first attempt, rank 1 dies inside
        // the first recovery iteration's agreement rounds, rank 5 dies in
        // the second iteration's re-run.
        let plan = FaultPlan {
            crashes: vec![
                Crash::before(3, 2),
                Crash::before(1, 0).at_epoch(1),
                Crash::after(5, 4).at_epoch(2).hard(),
            ],
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
        assert_eq!(plan.fault_bound(), 3);
        assert_eq!(plan.crashes[0].epoch, 0);
        assert_eq!(plan.crashes[1].epoch, 1);
        assert_eq!(plan.crashes[2].epoch, 2);
        assert!(plan.crashes[2].hard && plan.crashes[2].after_send);
        // Constructors default to the initial attempt.
        assert_eq!(Crash::before(0, 0).epoch, 0);
        assert_eq!(Crash::after(0, 0).epoch, 0);
        // `hard()` and `at_epoch()` compose in either order.
        assert_eq!(
            Crash::before(2, 1).hard().at_epoch(3),
            Crash::before(2, 1).at_epoch(3).hard()
        );
    }

    #[test]
    fn armed_plan_enables_framing_but_injects_nothing() {
        let plan = FaultPlan {
            armed: true,
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
        for seq in 0..1000 {
            assert_eq!(plan.decide(0, 1, 9, seq, 0), None);
        }
    }
}
