//! Calibrated cluster profiles.
//!
//! Two real clusters are modeled after the paper's Section V-A, calibrated
//! against the paper's own measurements (Figure 1 anchors: encryption
//! throughput saturates near 5,500 MB/s and ping-pong near 11,000 MB/s on
//! Noleland), plus idealized profiles for unit tests. Absolute latencies are
//! not expected to match the authors' hardware; the calibration targets the
//! *shape* of the evaluation (algorithm ranking, crossover message sizes,
//! overhead signs).

use crate::model::{CostModel, CryptoCost, LinkCost};
use serde::{Deserialize, Serialize};

/// A named cluster profile: a cost model plus descriptive metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Human-readable name, e.g. `"noleland"`.
    pub name: String,
    /// The virtual-time cost model.
    pub model: CostModel,
    /// Message size (bytes) at which the modeled MVAPICH baseline switches
    /// from recursive doubling to ring (the paper observes RD for small,
    /// Ring for large on both systems).
    pub mvapich_switch_bytes: usize,
}

/// The paper's local Noleland cluster: Intel Xeon Gold 6130 (32 cores/node),
/// 100 Gbps Mellanox InfiniBand, evaluated with p = 128 on N = 8 nodes.
///
/// Calibration anchors (paper Figure 1 and Table III):
/// - single-stream network bandwidth ≈ 11,000 MB/s, startup ≈ 2 µs;
/// - AES-GCM-128 throughput saturates ≈ 5,500 MB/s, per-op cost ≈ 0.25 µs;
/// - NIC aggregate 100 Gbps = 12,500 MB/s;
/// - intra-node (two-copy shared-memory channel) ≈ 2,000 MB/s per pair;
/// - plain memcpy ≈ 10,000 MB/s.
pub fn noleland() -> ClusterProfile {
    ClusterProfile {
        name: "noleland".to_string(),
        model: CostModel {
            intra: LinkCost {
                alpha_us: 0.3,
                bandwidth: 2_000.0,
            },
            inter: LinkCost {
                alpha_us: 2.0,
                bandwidth: 11_000.0,
            },
            nic_bandwidth: 12_500.0,
            copy_alpha_us: 0.2,
            copy_bandwidth: 10_000.0,
            strided_copy_factor: 4.0,
            barrier_us: 1.5,
            crypto: CryptoCost {
                enc_alpha_us: 0.25,
                enc_bandwidth: 5_500.0,
                dec_alpha_us: 0.25,
                dec_bandwidth: 5_500.0,
            },
            fabric: None,
        },
        mvapich_switch_bytes: 8 * 1024,
    }
}

/// PSC Bridges-2 Regular Memory: 2× AMD EPYC 7742 (128 cores/node),
/// 200 Gbps Mellanox ConnectX-6 HDR, evaluated with p = 1024 on N = 16.
///
/// Relative to Noleland: twice the NIC bandwidth, but many more (and
/// lower-clocked) cores per node sharing it, slightly cheaper memory channel
/// contention per pair, and similar per-core crypto throughput.
pub fn bridges2() -> ClusterProfile {
    ClusterProfile {
        name: "bridges2".to_string(),
        model: CostModel {
            intra: LinkCost {
                alpha_us: 0.4,
                bandwidth: 1_800.0,
            },
            inter: LinkCost {
                alpha_us: 2.2,
                bandwidth: 12_000.0,
            },
            nic_bandwidth: 25_000.0,
            copy_alpha_us: 0.2,
            copy_bandwidth: 9_000.0,
            strided_copy_factor: 4.0,
            barrier_us: 2.5,
            crypto: CryptoCost {
                enc_alpha_us: 0.3,
                enc_bandwidth: 4_800.0,
                dec_alpha_us: 0.3,
                dec_bandwidth: 4_800.0,
            },
            fabric: None,
        },
        mvapich_switch_bytes: 8 * 1024,
    }
}

/// Everything free: functional testing only.
pub fn free() -> ClusterProfile {
    ClusterProfile {
        name: "free".to_string(),
        model: CostModel::free(),
        mvapich_switch_bytes: 8 * 1024,
    }
}

/// Unit costs (`α = β = αe = βe = 1`, uniform links): metric validation.
pub fn unit() -> ClusterProfile {
    ClusterProfile {
        name: "unit".to_string(),
        model: CostModel::unit(),
        mvapich_switch_bytes: 8 * 1024,
    }
}

/// Looks a profile up by name (`noleland`, `bridges2`, `free`, `unit`).
pub fn by_name(name: &str) -> Option<ClusterProfile> {
    match name {
        "noleland" => Some(noleland()),
        "bridges2" => Some(bridges2()),
        "free" => Some(free()),
        "unit" => Some(unit()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noleland_anchors_match_figure_1() {
        let p = noleland();
        // Encryption throughput at 64 KiB should be near saturation
        // (~5,400+ MB/s) and ping-pong at 2 MiB near ~11,000 MB/s.
        let m = 64 * 1024;
        let enc_tput = m as f64 / p.model.crypto.enc_time(m);
        assert!(enc_tput > 5_000.0 && enc_tput < 5_500.0, "{enc_tput}");
        let big = 2 * 1024 * 1024;
        let pp_tput = big as f64 / p.model.inter.time(big);
        assert!(pp_tput > 10_500.0 && pp_tput <= 11_000.0, "{pp_tput}");
        // Encryption is cheaper than ping-pong for tiny messages
        // (0.25 µs vs 2 µs startup)...
        assert!(p.model.crypto.enc_time(1) < p.model.inter.time(1));
        // ...but slower per byte for large ones (the paper's 2x gap).
        assert!(p.model.crypto.enc_time(big) > p.model.inter.time(big));
    }

    #[test]
    fn nic_is_wider_than_one_stream() {
        for p in [noleland(), bridges2()] {
            assert!(p.model.nic_bandwidth > p.model.inter.bandwidth);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("noleland").is_some());
        assert!(by_name("bridges2").is_some());
        assert!(by_name("unit").is_some());
        assert!(by_name("free").is_some());
        assert!(by_name("nope").is_none());
    }
}
