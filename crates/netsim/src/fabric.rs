//! Optional two-level switch fabric: leaf switches with oversubscribed
//! uplinks to a core.
//!
//! The base model treats the network as a full-bisection crossbar (every
//! inter-node stream is limited only by its endpoints' NICs). Real clusters
//! often group nodes under leaf switches whose uplinks are *oversubscribed*:
//! traffic between leaves shares the uplink. This module adds that second
//! level, which is what makes locality-aware communication patterns (a
//! node-ordered ring crosses leaf boundaries N_leaf times; recursive
//! doubling's large rounds cross them everywhere) measurably different —
//! the effect the paper's related work on topology-aware collectives
//! targets.

use crate::nic::NodeNic;
use serde::{Deserialize, Serialize};

/// Parameters of the leaf/core fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FabricModel {
    /// Nodes attached to each leaf switch.
    pub nodes_per_leaf: usize,
    /// Aggregate uplink bandwidth per leaf in B/µs; all cross-leaf traffic
    /// entering or leaving the leaf shares it.
    pub uplink_bandwidth: f64,
    /// Extra per-hop latency for crossing the core, in µs.
    pub extra_alpha_us: f64,
}

impl FabricModel {
    /// Which leaf a node hangs off.
    #[inline]
    pub fn leaf_of(&self, node: usize) -> usize {
        node / self.nodes_per_leaf
    }

    /// Number of leaves needed for `nodes` nodes.
    pub fn leaves(&self, nodes: usize) -> usize {
        nodes.div_ceil(self.nodes_per_leaf)
    }
}

/// Virtual-time ledgers for the fabric: one shared uplink per leaf.
#[derive(Debug)]
pub struct FabricState {
    model: FabricModel,
    uplinks: Vec<NodeNic>,
}

impl FabricState {
    /// Builds ledgers for a cluster of `nodes` nodes.
    pub fn new(model: FabricModel, nodes: usize) -> Self {
        let uplinks = (0..model.leaves(nodes))
            .map(|_| NodeNic::new(model.uplink_bandwidth))
            .collect();
        FabricState { model, uplinks }
    }

    /// The fabric parameters.
    pub fn model(&self) -> &FabricModel {
        &self.model
    }

    /// Accounts a transmission of `bytes` from `src_node` to `dst_node`
    /// starting at `now_us`. Returns `(occupancy_done_us, extra_alpha_us)`:
    /// the time the fabric is done carrying the message, and the additional
    /// flight latency to add. Intra-leaf traffic passes through untouched.
    pub fn reserve(
        &self,
        now_us: f64,
        src_node: usize,
        dst_node: usize,
        bytes: usize,
    ) -> (f64, f64) {
        let src_leaf = self.model.leaf_of(src_node);
        let dst_leaf = self.model.leaf_of(dst_node);
        if src_leaf == dst_leaf {
            return (now_us, 0.0);
        }
        // The message occupies the source leaf's uplink, then the
        // destination leaf's (modeled as one bidirectional ledger each).
        let up = self.uplinks[src_leaf].reserve(now_us, bytes);
        let down = self.uplinks[dst_leaf].reserve(up, bytes);
        (down, self.model.extra_alpha_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> FabricState {
        FabricState::new(
            FabricModel {
                nodes_per_leaf: 2,
                uplink_bandwidth: 100.0,
                extra_alpha_us: 1.5,
            },
            8,
        )
    }

    #[test]
    fn leaf_assignment() {
        let f = fabric();
        assert_eq!(f.model().leaf_of(0), 0);
        assert_eq!(f.model().leaf_of(1), 0);
        assert_eq!(f.model().leaf_of(2), 1);
        assert_eq!(f.model().leaves(8), 4);
        assert_eq!(f.model().leaves(7), 4);
    }

    #[test]
    fn intra_leaf_traffic_is_free() {
        let f = fabric();
        let (done, alpha) = f.reserve(5.0, 0, 1, 1_000_000);
        assert_eq!(done, 5.0);
        assert_eq!(alpha, 0.0);
    }

    #[test]
    fn cross_leaf_traffic_occupies_both_uplinks() {
        let f = fabric();
        // 1000 B over 100 B/µs uplinks: 10 µs up + 10 µs down.
        let (done, alpha) = f.reserve(0.0, 0, 2, 1000);
        assert_eq!(done, 20.0);
        assert_eq!(alpha, 1.5);
        // A second message from the same leaf queues behind the first on
        // the shared source uplink.
        let (done2, _) = f.reserve(0.0, 1, 4, 1000);
        assert!(done2 > 20.0, "uplink not shared: {done2}");
    }

    #[test]
    fn different_leaf_pairs_do_not_contend() {
        let f = fabric();
        let (a, _) = f.reserve(0.0, 0, 2, 1000); // leaves 0 -> 1
        let (b, _) = f.reserve(0.0, 4, 6, 1000); // leaves 2 -> 3
        assert_eq!(a, 20.0);
        assert_eq!(b, 20.0);
    }
}
