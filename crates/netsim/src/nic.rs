//! Per-node NIC contention in virtual time.
//!
//! The paper observes that "on contemporary HPC systems, a single core
//! usually does not have enough computing power to fully utilize the network
//! link" — which is exactly why the Concurrent algorithms win: ℓ concurrent
//! per-process streams together saturate the NIC, while a single leader
//! stream cannot exceed its per-core rate.
//!
//! [`NodeNic`] models the shared NIC as a serially-reusable resource in
//! virtual time: an inter-node transmission of `b` bytes occupies the NIC
//! for `b / nic_bandwidth`, placed in the *earliest idle gap at or after the
//! sender's virtual clock*. Keeping a set of busy intervals (rather than a
//! single high-water mark) matters because worker threads reach the ledger
//! in wall-clock order, not virtual-time order: a rank still at virtual time
//! 4 µs must not queue behind a reservation another rank already made for
//! virtual time 10 µs while the NIC is idle in between.

use parking_lot::Mutex;

/// Virtual-time ledger for one node's NIC.
#[derive(Debug)]
pub struct NodeNic {
    /// Non-overlapping busy intervals, sorted by start time.
    busy: Mutex<Vec<(f64, f64)>>,
    /// Aggregate NIC bandwidth in B/µs (`INFINITY` disables contention).
    bandwidth: f64,
}

impl NodeNic {
    /// Creates a ledger with the given aggregate bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        NodeNic {
            busy: Mutex::new(Vec::new()),
            bandwidth,
        }
    }

    /// Reserves the NIC for `bytes` starting no earlier than `now`;
    /// returns the virtual time at which the last byte clears the NIC.
    ///
    /// With infinite bandwidth this returns `now` and keeps no state.
    pub fn reserve(&self, now_us: f64, bytes: usize) -> f64 {
        if self.bandwidth.is_infinite() {
            return now_us;
        }
        let occ = bytes as f64 / self.bandwidth;
        if occ <= 0.0 {
            return now_us;
        }
        let mut busy = self.busy.lock();

        // Earliest candidate start: skip every interval that overlaps or
        // precedes the running candidate without leaving room for `occ`.
        let mut t = now_us;
        let mut i = busy.partition_point(|&(_, end)| end <= now_us);
        while i < busy.len() {
            let (start, end) = busy[i];
            if start - t >= occ {
                break; // fits in the gap before interval i
            }
            if end > t {
                t = end;
            }
            i += 1;
        }
        let finish = t + occ;

        // Insert [t, finish) at position i, merging with exact-adjacent
        // neighbours so saturated stretches collapse to one interval.
        let merge_left = i > 0 && busy[i - 1].1 == t;
        let merge_right = i < busy.len() && busy[i].0 == finish;
        match (merge_left, merge_right) {
            (true, true) => {
                busy[i - 1].1 = busy[i].1;
                busy.remove(i);
            }
            (true, false) => busy[i - 1].1 = finish,
            (false, true) => busy[i].0 = t,
            (false, false) => busy.insert(i, (t, finish)),
        }
        finish
    }

    /// Resets the ledger to idle (used between simulation repetitions).
    pub fn reset(&self) {
        self.busy.lock().clear();
    }

    /// Snapshot of the busy intervals (testing and diagnostics).
    pub fn busy_intervals(&self) -> Vec<(f64, f64)> {
        self.busy.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_is_transparent() {
        let nic = NodeNic::new(f64::INFINITY);
        assert_eq!(nic.reserve(5.0, 1 << 30), 5.0);
        assert_eq!(nic.reserve(3.0, 1 << 30), 3.0);
    }

    #[test]
    fn serializes_concurrent_streams() {
        let nic = NodeNic::new(100.0); // 100 B/µs
                                       // Two 1000-byte sends at the same instant: the second queues.
        assert_eq!(nic.reserve(0.0, 1000), 10.0);
        assert_eq!(nic.reserve(0.0, 1000), 20.0);
        // A later send after the NIC drained starts immediately.
        assert_eq!(nic.reserve(50.0, 1000), 60.0);
    }

    #[test]
    fn earlier_virtual_time_uses_idle_gap() {
        let nic = NodeNic::new(100.0);
        // A rank that is ahead in virtual time reserves [10, 20).
        assert_eq!(nic.reserve(10.0, 1000), 20.0);
        // A rank still at virtual time 0 must not queue behind it:
        // the NIC is idle during [0, 10).
        assert_eq!(nic.reserve(0.0, 1000), 10.0);
        // But a third rank at time 0 now has to go after [0,20).
        assert_eq!(nic.reserve(0.0, 1000), 30.0);
    }

    #[test]
    fn small_gap_is_skipped_when_too_tight() {
        let nic = NodeNic::new(1.0); // 1 B/µs
        assert_eq!(nic.reserve(0.0, 10), 10.0); // [0,10)
        assert_eq!(nic.reserve(15.0, 10), 25.0); // [15,25)
                                                 // A 10-byte send at t=5 does not fit into the [10,15) gap.
        assert_eq!(nic.reserve(5.0, 10), 35.0);
        // A 5-byte send at t=5 does fit into [10,15).
        assert_eq!(nic.reserve(5.0, 5), 15.0);
    }

    #[test]
    fn adjacent_intervals_merge() {
        let nic = NodeNic::new(1.0);
        for k in 0..100 {
            nic.reserve(k as f64 * 10.0, 10);
        }
        // All reservations were back-to-back → a single merged interval.
        assert_eq!(nic.busy.lock().len(), 1);
    }

    #[test]
    fn reset_clears_backlog() {
        let nic = NodeNic::new(1.0);
        nic.reserve(0.0, 1_000_000);
        nic.reset();
        assert_eq!(nic.reserve(0.0, 1), 1.0);
    }

    #[test]
    fn zero_sized_sends_cost_nothing() {
        let nic = NodeNic::new(1.0);
        assert_eq!(nic.reserve(7.0, 0), 7.0);
        assert!(nic.busy.lock().is_empty());
    }
}
