//! Per-node NIC contention in virtual time.
//!
//! The paper observes that "on contemporary HPC systems, a single core
//! usually does not have enough computing power to fully utilize the network
//! link" — which is exactly why the Concurrent algorithms win: ℓ concurrent
//! per-process streams together saturate the NIC, while a single leader
//! stream cannot exceed its per-core rate.
//!
//! [`NodeNic`] models the shared NIC as a serially-reusable resource in
//! virtual time: an inter-node transmission of `b` bytes occupies the NIC
//! for `b / nic_bandwidth`, placed in the *earliest idle gap at or after the
//! sender's virtual clock*. Keeping a set of busy intervals (rather than a
//! single high-water mark) matters because worker threads reach the ledger
//! in wall-clock order, not virtual-time order: a rank still at virtual time
//! 4 µs must not queue behind a reservation another rank already made for
//! virtual time 10 µs while the NIC is idle in between.
//!
//! # Multi-session sharing
//!
//! One physical NIC may be shared by several concurrent sessions (worlds):
//! each reservation is stamped with its caller's *owner id*
//! ([`NodeNic::reserve_for`]), and a finished session retires only its own
//! intervals ([`NodeNic::retire`]) — it must not drop another session's
//! live reservations the way a blanket [`NodeNic::reset`] would. Intervals
//! only merge with same-owner neighbours so retirement stays exact;
//! cross-owner back-to-back reservations remain distinct ledger entries.

use parking_lot::Mutex;

/// One busy stretch of the NIC, stamped with the reserving session.
#[derive(Debug, Clone, Copy)]
struct Interval {
    start: f64,
    end: f64,
    owner: u64,
}

/// Virtual-time ledger for one node's NIC.
#[derive(Debug)]
pub struct NodeNic {
    /// Non-overlapping busy intervals, sorted by start time.
    busy: Mutex<Vec<Interval>>,
    /// Aggregate NIC bandwidth in B/µs (`INFINITY` disables contention).
    bandwidth: f64,
}

impl NodeNic {
    /// Creates a ledger with the given aggregate bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        NodeNic {
            busy: Mutex::new(Vec::new()),
            bandwidth,
        }
    }

    /// Reserves the NIC for `bytes` starting no earlier than `now`, on
    /// behalf of the standalone owner 0; returns the virtual time at which
    /// the last byte clears the NIC. See [`NodeNic::reserve_for`].
    pub fn reserve(&self, now_us: f64, bytes: usize) -> f64 {
        self.reserve_for(0, now_us, bytes)
    }

    /// Reserves the NIC for `bytes` starting no earlier than `now`, on
    /// behalf of session `owner`; returns the virtual time at which the
    /// last byte clears the NIC. Contention is global — a reservation
    /// queues behind *every* session's traffic — but the interval is
    /// stamped with `owner` so [`NodeNic::retire`] can later remove
    /// exactly this session's stretches.
    ///
    /// With infinite bandwidth this returns `now` and keeps no state.
    pub fn reserve_for(&self, owner: u64, now_us: f64, bytes: usize) -> f64 {
        if self.bandwidth.is_infinite() {
            return now_us;
        }
        let occ = bytes as f64 / self.bandwidth;
        if occ <= 0.0 {
            return now_us;
        }
        let mut busy = self.busy.lock();

        // Earliest candidate start: skip every interval that overlaps or
        // precedes the running candidate without leaving room for `occ`.
        let mut t = now_us;
        let mut i = busy.partition_point(|iv| iv.end <= now_us);
        while i < busy.len() {
            let iv = busy[i];
            if iv.start - t >= occ {
                break; // fits in the gap before interval i
            }
            if iv.end > t {
                t = iv.end;
            }
            i += 1;
        }
        let finish = t + occ;

        // Insert [t, finish) at position i, merging with exact-adjacent
        // *same-owner* neighbours so saturated stretches collapse to one
        // interval; cross-owner neighbours stay distinct so retirement
        // removes exactly the caller's time.
        let merge_left = i > 0 && busy[i - 1].end == t && busy[i - 1].owner == owner;
        let merge_right = i < busy.len() && busy[i].start == finish && busy[i].owner == owner;
        match (merge_left, merge_right) {
            (true, true) => {
                busy[i - 1].end = busy[i].end;
                busy.remove(i);
            }
            (true, false) => busy[i - 1].end = finish,
            (false, true) => busy[i].start = t,
            (false, false) => busy.insert(
                i,
                Interval {
                    start: t,
                    end: finish,
                    owner,
                },
            ),
        }
        finish
    }

    /// Retires every interval reserved by session `owner`, leaving all
    /// other sessions' reservations intact. This is how a finished session
    /// leaves a *shared* NIC; contrast [`NodeNic::reset`].
    pub fn retire(&self, owner: u64) {
        self.busy.lock().retain(|iv| iv.owner != owner);
    }

    /// Resets the ledger to idle (used between simulation repetitions of a
    /// NIC with a single owner). On a NIC shared across sessions use
    /// [`NodeNic::retire`] instead: a blanket reset here would drop other
    /// sessions' live reservations.
    pub fn reset(&self) {
        self.busy.lock().clear();
    }

    /// Snapshot of the busy intervals (testing and diagnostics).
    pub fn busy_intervals(&self) -> Vec<(f64, f64)> {
        self.busy
            .lock()
            .iter()
            .map(|iv| (iv.start, iv.end))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_is_transparent() {
        let nic = NodeNic::new(f64::INFINITY);
        assert_eq!(nic.reserve(5.0, 1 << 30), 5.0);
        assert_eq!(nic.reserve(3.0, 1 << 30), 3.0);
    }

    #[test]
    fn serializes_concurrent_streams() {
        let nic = NodeNic::new(100.0); // 100 B/µs
                                       // Two 1000-byte sends at the same instant: the second queues.
        assert_eq!(nic.reserve(0.0, 1000), 10.0);
        assert_eq!(nic.reserve(0.0, 1000), 20.0);
        // A later send after the NIC drained starts immediately.
        assert_eq!(nic.reserve(50.0, 1000), 60.0);
    }

    #[test]
    fn earlier_virtual_time_uses_idle_gap() {
        let nic = NodeNic::new(100.0);
        // A rank that is ahead in virtual time reserves [10, 20).
        assert_eq!(nic.reserve(10.0, 1000), 20.0);
        // A rank still at virtual time 0 must not queue behind it:
        // the NIC is idle during [0, 10).
        assert_eq!(nic.reserve(0.0, 1000), 10.0);
        // But a third rank at time 0 now has to go after [0,20).
        assert_eq!(nic.reserve(0.0, 1000), 30.0);
    }

    #[test]
    fn small_gap_is_skipped_when_too_tight() {
        let nic = NodeNic::new(1.0); // 1 B/µs
        assert_eq!(nic.reserve(0.0, 10), 10.0); // [0,10)
        assert_eq!(nic.reserve(15.0, 10), 25.0); // [15,25)
                                                 // A 10-byte send at t=5 does not fit into the [10,15) gap.
        assert_eq!(nic.reserve(5.0, 10), 35.0);
        // A 5-byte send at t=5 does fit into [10,15).
        assert_eq!(nic.reserve(5.0, 5), 15.0);
    }

    #[test]
    fn adjacent_intervals_merge() {
        let nic = NodeNic::new(1.0);
        for k in 0..100 {
            nic.reserve(k as f64 * 10.0, 10);
        }
        // All reservations were back-to-back → a single merged interval.
        assert_eq!(nic.busy.lock().len(), 1);
    }

    #[test]
    fn cross_owner_adjacency_does_not_merge() {
        let nic = NodeNic::new(1.0);
        // Sessions 1 and 2 alternate back-to-back 10-byte stretches.
        for k in 0..10 {
            let owner = 1 + (k % 2) as u64;
            nic.reserve_for(owner, k as f64 * 10.0, 10);
        }
        // Same wall of traffic, but per-owner boundaries survive.
        assert_eq!(nic.busy.lock().len(), 10);
        assert_eq!(nic.busy_intervals().first(), Some(&(0.0, 10.0)));
        assert_eq!(nic.busy_intervals().last(), Some(&(90.0, 100.0)));
    }

    /// Satellite-2 regression: two interleaved sessions share the ledger;
    /// one retiring must not free the other's backlog (the old blanket
    /// `reset` did exactly that).
    #[test]
    fn retire_removes_only_the_callers_intervals() {
        let nic = NodeNic::new(1.0); // 1 B/µs
                                     // Session A and session B interleave reservations at t=0:
                                     // A:[0,100) B:[100,200) A:[200,300) B:[300,400).
        assert_eq!(nic.reserve_for(0xA, 0.0, 100), 100.0);
        assert_eq!(nic.reserve_for(0xB, 0.0, 100), 200.0);
        assert_eq!(nic.reserve_for(0xA, 0.0, 100), 300.0);
        assert_eq!(nic.reserve_for(0xB, 0.0, 100), 400.0);

        nic.retire(0xA);

        // B's stretches survive verbatim...
        assert_eq!(nic.busy_intervals(), vec![(100.0, 200.0), (300.0, 400.0)]);
        // ...and still queue B's (and anyone's) new work: a fresh send at
        // t=150 lands in the [200,300) gap A vacated, not at t=400.
        assert_eq!(nic.reserve_for(0xB, 150.0, 100), 300.0);
        // Retiring B empties the ledger entirely.
        nic.retire(0xB);
        assert!(nic.busy_intervals().is_empty());
    }

    #[test]
    fn reset_clears_backlog() {
        let nic = NodeNic::new(1.0);
        nic.reserve(0.0, 1_000_000);
        nic.reset();
        assert_eq!(nic.reserve(0.0, 1), 1.0);
    }

    #[test]
    fn zero_sized_sends_cost_nothing() {
        let nic = NodeNic::new(1.0);
        assert_eq!(nic.reserve(7.0, 0), 7.0);
        assert!(nic.busy.lock().is_empty());
    }
}
