//! The Hockney-style cost model from Section IV-A of the paper.
//!
//! All times are in microseconds (µs); all sizes in bytes; bandwidths in
//! bytes per microsecond (1 B/µs = 1 MB/s).

use serde::{Deserialize, Serialize};

/// Which class of link a message traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Between two processes on the same node (shared memory channel).
    Intra,
    /// Between processes on different nodes (the network; must be encrypted).
    Inter,
    /// A process sending to itself (modeled as free).
    SelfLoop,
}

/// Hockney parameters for one link class: `t(m) = alpha + m / bandwidth`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkCost {
    /// Startup cost α in µs.
    pub alpha_us: f64,
    /// Per-stream bandwidth in B/µs (MB/s).
    pub bandwidth: f64,
}

impl LinkCost {
    /// Transmission time of `bytes` over this link.
    #[inline]
    pub fn time(&self, bytes: usize) -> f64 {
        self.alpha_us + bytes as f64 / self.bandwidth
    }

    /// A free link (used for self-sends and idealized models).
    pub const FREE: LinkCost = LinkCost {
        alpha_us: 0.0,
        bandwidth: f64::INFINITY,
    };
}

/// Hockney parameters for encryption and decryption
/// (`αe + βe·m` / `αd + βd·m`, Section IV-A).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CryptoCost {
    /// Per-operation encryption startup αe in µs.
    pub enc_alpha_us: f64,
    /// Encryption bandwidth 1/βe in B/µs.
    pub enc_bandwidth: f64,
    /// Per-operation decryption startup αd in µs.
    pub dec_alpha_us: f64,
    /// Decryption bandwidth 1/βd in B/µs.
    pub dec_bandwidth: f64,
}

impl CryptoCost {
    /// Time to encrypt `bytes` of plaintext in one operation.
    #[inline]
    pub fn enc_time(&self, bytes: usize) -> f64 {
        self.enc_alpha_us + bytes as f64 / self.enc_bandwidth
    }

    /// Time to decrypt a ciphertext carrying `bytes` of plaintext.
    #[inline]
    pub fn dec_time(&self, bytes: usize) -> f64 {
        self.dec_alpha_us + bytes as f64 / self.dec_bandwidth
    }

    /// Free crypto (for unencrypted baselines in idealized tests).
    pub const FREE: CryptoCost = CryptoCost {
        enc_alpha_us: 0.0,
        enc_bandwidth: f64::INFINITY,
        dec_alpha_us: 0.0,
        dec_bandwidth: f64::INFINITY,
    };
}

/// The full virtual-time cost model for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Intra-node (shared-memory channel) point-to-point cost.
    pub intra: LinkCost,
    /// Inter-node (network) per-stream point-to-point cost.
    pub inter: LinkCost,
    /// Aggregate NIC bandwidth per node in B/µs; concurrent inter-node
    /// streams from one node share this. `f64::INFINITY` disables contention.
    pub nic_bandwidth: f64,
    /// Cost of a memory copy of `m` bytes: `copy_alpha + m / copy_bandwidth`
    /// (shared-memory buffer deposits / user-buffer copies in HS1/HS2).
    pub copy_alpha_us: f64,
    /// Memory-copy bandwidth in B/µs.
    pub copy_bandwidth: f64,
    /// Slowdown factor for strided (non-contiguous) copies, e.g. the
    /// per-block rank-order rearrangement HS1/HS2 need under cyclic mapping.
    /// 1.0 means strided copies run at full copy bandwidth.
    pub strided_copy_factor: f64,
    /// Cost of one node-local barrier in µs.
    pub barrier_us: f64,
    /// Encryption/decryption cost.
    pub crypto: CryptoCost,
    /// Optional two-level switch fabric (leaf uplinks shared by cross-leaf
    /// traffic). `None` models a full-bisection network.
    pub fabric: Option<crate::fabric::FabricModel>,
}

impl CostModel {
    /// Communication time of `bytes` over `link` (per-stream, no contention).
    #[inline]
    pub fn comm_time(&self, link: LinkClass, bytes: usize) -> f64 {
        match link {
            LinkClass::Intra => self.intra.time(bytes),
            LinkClass::Inter => self.inter.time(bytes),
            LinkClass::SelfLoop => 0.0,
        }
    }

    /// Memory-copy time of `bytes`.
    #[inline]
    pub fn copy_time(&self, bytes: usize) -> f64 {
        self.copy_alpha_us + bytes as f64 / self.copy_bandwidth
    }

    /// Strided (cache-unfriendly) memory-copy time of `bytes`.
    #[inline]
    pub fn strided_copy_time(&self, bytes: usize) -> f64 {
        self.copy_alpha_us + bytes as f64 * self.strided_copy_factor / self.copy_bandwidth
    }

    /// A model in which everything is free (functional testing only).
    pub fn free() -> Self {
        CostModel {
            intra: LinkCost::FREE,
            inter: LinkCost::FREE,
            nic_bandwidth: f64::INFINITY,
            copy_alpha_us: 0.0,
            copy_bandwidth: f64::INFINITY,
            strided_copy_factor: 1.0,
            barrier_us: 0.0,
            crypto: CryptoCost::FREE,
            fabric: None,
        }
    }

    /// A "unit" model: every message costs `1 + m`, every crypto op
    /// `1 + m`, copies and barriers are free, no link-class asymmetry.
    /// Used by tests that validate round/byte metrics rather than shapes.
    pub fn unit() -> Self {
        let link = LinkCost {
            alpha_us: 1.0,
            bandwidth: 1.0,
        };
        CostModel {
            intra: link,
            inter: link,
            nic_bandwidth: f64::INFINITY,
            copy_alpha_us: 0.0,
            copy_bandwidth: f64::INFINITY,
            strided_copy_factor: 1.0,
            barrier_us: 0.0,
            crypto: CryptoCost {
                enc_alpha_us: 1.0,
                enc_bandwidth: 1.0,
                dec_alpha_us: 1.0,
                dec_bandwidth: 1.0,
            },
            fabric: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_is_affine() {
        let link = LinkCost {
            alpha_us: 2.0,
            bandwidth: 1000.0,
        };
        assert_eq!(link.time(0), 2.0);
        assert_eq!(link.time(1000), 3.0);
        assert_eq!(link.time(4000), 6.0);
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = CostModel::free();
        assert_eq!(m.comm_time(LinkClass::Inter, 1 << 20), 0.0);
        assert_eq!(m.comm_time(LinkClass::Intra, 1 << 20), 0.0);
        assert_eq!(m.crypto.enc_time(1 << 20), 0.0);
        assert_eq!(m.copy_time(1 << 20), 0.0);
    }

    #[test]
    fn self_loop_is_free_even_in_unit_model() {
        let m = CostModel::unit();
        assert_eq!(m.comm_time(LinkClass::SelfLoop, 123), 0.0);
        assert_eq!(m.comm_time(LinkClass::Inter, 123), 124.0);
    }

    #[test]
    fn crypto_cost_affine() {
        let c = CryptoCost {
            enc_alpha_us: 0.5,
            enc_bandwidth: 5500.0,
            dec_alpha_us: 0.25,
            dec_bandwidth: 5500.0,
        };
        assert!((c.enc_time(5500) - 1.5).abs() < 1e-12);
        assert!((c.dec_time(0) - 0.25).abs() < 1e-12);
    }
}
