//! Property-based tests for the data plane (chunks, parcels, patterns).

use eag_runtime::{pattern_block, Chunk, Data, Item, Parcel, Sealed};
use proptest::prelude::*;

fn arb_chunk(max_origins: usize, block_len: usize) -> impl Strategy<Value = Chunk> {
    proptest::collection::vec(0usize..64, 1..=max_origins).prop_map(move |origins| {
        let data: Vec<u8> = origins
            .iter()
            .flat_map(|&o| pattern_block(7, o, block_len))
            .collect();
        Chunk {
            origins,
            block_len,
            data: Data::Real(data.into()),
        }
    })
}

proptest! {
    /// split ∘ concat = identity on single-origin chunk lists.
    #[test]
    fn concat_split_roundtrip(chunks in proptest::collection::vec(arb_chunk(1, 8), 1..10)) {
        let merged = Chunk::concat(&chunks);
        merged.check();
        prop_assert_eq!(merged.split(), chunks);
    }

    /// concat preserves total length and origin order.
    #[test]
    fn concat_preserves_layout(chunks in proptest::collection::vec(arb_chunk(3, 4), 1..8)) {
        let merged = Chunk::concat(&chunks);
        let want_len: usize = chunks.iter().map(Chunk::len).sum();
        prop_assert_eq!(merged.len(), want_len);
        let want_origins: Vec<usize> =
            chunks.iter().flat_map(|c| c.origins.clone()).collect();
        prop_assert_eq!(&merged.origins, &want_origins);
    }

    /// Parcel wire length = payload length + 28 per sealed item.
    #[test]
    fn parcel_framing_arithmetic(
        plains in proptest::collection::vec(arb_chunk(2, 16), 0..5),
        sealed_lens in proptest::collection::vec(1usize..100, 0..5),
    ) {
        let mut items: Vec<Item> = plains.into_iter().map(Item::Plain).collect();
        let sealed_count = sealed_lens.len();
        for (i, len) in sealed_lens.into_iter().enumerate() {
            items.push(Item::Sealed(Sealed {
                origins: vec![i],
                block_len: len,
                plain_len: len,
                data: Data::Phantom(len + 28),
            }));
        }
        let parcel = Parcel { items };
        prop_assert_eq!(
            parcel.wire_len(),
            parcel.payload_len() + 28 * sealed_count
        );
    }

    /// pattern_block is a pure function of (seed, origin, len) and is
    /// prefix-consistent.
    #[test]
    fn pattern_block_properties(seed in any::<u64>(), origin in 0usize..1000, len in 0usize..200) {
        let a = pattern_block(seed, origin, len);
        prop_assert_eq!(a.len(), len);
        prop_assert_eq!(&a, &pattern_block(seed, origin, len));
        if len >= 8 {
            let longer = pattern_block(seed, origin, len + 40);
            prop_assert_eq!(&longer[..len], &a[..]);
        }
    }
}
