//! # eag-runtime — an MPI-like substrate for encrypted collectives
//!
//! The paper's algorithms run inside an MPI library on a multi-node cluster.
//! This crate provides the equivalent substrate for a single machine:
//!
//! - each MPI **process** is a rank state machine with a
//!   [`world::ProcCtx`], driven by the event-driven [`sched`] scheduler
//!   (a fixed pool of run permits; parked ranks wake on message arrival,
//!   world events, or timer expiry);
//! - **nodes** are groups of ranks; rank→node placement follows the
//!   topology's block or cyclic mapping;
//! - point-to-point messaging is tag-matched over per-rank mailboxes;
//! - **intra-node shared memory** (the HS1/HS2 buffers) is a per-node
//!   deposit/fetch segment with a clock-synchronizing barrier;
//! - every action advances a per-process **virtual clock** priced by the
//!   cluster's cost model (Hockney α+βm links, αe+βe·m crypto, memcpy,
//!   NIC contention), so a run yields both a *functional* result and a
//!   *simulated* latency;
//! - payloads are real bytes (with real AES-128-GCM) or phantom lengths,
//!   chosen per run via [`world::DataMode`].
//!
//! See [`world::run`] for the entry point.
//!
//! ```
//! use eag_netsim::{profile, Mapping, Topology};
//! use eag_runtime::{run, DataMode, Item, Parcel, WorldSpec};
//!
//! // Two ranks on two nodes exchange one encrypted block.
//! let spec = WorldSpec::new(
//!     Topology::new(2, 2, Mapping::Block),
//!     profile::noleland(),
//!     DataMode::Real { seed: 1 },
//! );
//! let report = run(&spec, |ctx| {
//!     if ctx.rank() == 0 {
//!         let sealed = ctx.encrypt(ctx.my_block(64));
//!         ctx.send(1, 7, Parcel::one(Item::Sealed(sealed)));
//!         0
//!     } else {
//!         let parcel = ctx.recv(0, 7);
//!         let chunk = ctx.decrypt(parcel.items[0].clone().into_sealed());
//!         chunk.data.rope().len()
//!     }
//! });
//! assert_eq!(report.outputs[1], 64);
//! assert_eq!(report.wiretap.frame_count(), 1); // one inter-node frame
//! ```

#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod error;
pub mod metrics;
pub mod payload;
pub mod sched;
pub mod session;
pub mod shared;
pub mod trace;
pub mod world;

pub use eag_crypto::{Aead, CipherSuite};
pub use eag_netsim::{Crash, FaultKind, FaultPlan};
pub use error::{CollectiveError, FailureCause};
pub use metrics::Metrics;
pub use payload::{pattern_block, pattern_block_pair, Chunk, Data, Item, Parcel, Sealed};
pub use sched::RunGate;
pub use session::{AdmitError, RetryBudget, Session, SessionConfig, SessionManager, SessionStats};
pub use shared::{NodeShared, SlotKey};
pub use trace::{BusyBreakdown, Event, EventKind, Trace};
pub use world::{
    quiet_expected_panics, run, run_crashable, try_run, try_run_crashable, CrashReport, DataMode,
    ProcCtx, RetryPolicy, RunReport, WorldSpec,
};
