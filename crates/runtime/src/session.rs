//! The multi-tenant session layer: admit, schedule, and retire many
//! concurrent worlds over one shared runtime and fabric.
//!
//! The paper frames the encrypted all-gather as a library call one job
//! makes; a deployed collective *service* instead runs many independent
//! tenant groups at once. [`SessionManager`] is that service's control
//! plane:
//!
//! - **Admission.** At most `max_live` sessions run at once. A blocking
//!   [`SessionManager::admit`] queues per tenant (FIFO within a tenant);
//!   when a tenant's queue is full the request is **shed** — typed
//!   backpressure, not an unbounded pile-up. The non-blocking
//!   [`SessionManager::try_admit`] is **rejected** instead of waiting.
//! - **Fairness.** Freed slots are handed to waiting tenants round-robin,
//!   so a tenant that floods the queue cannot starve a tenant with a
//!   single pending session.
//! - **Keys.** Every session seals under its own AEAD key, derived from
//!   the service master key via [`SessionKeychain`] from the triple
//!   `(tenant, session, epoch)`. [`SessionManager::rotate_keys`] bumps the
//!   epoch: later admissions re-key, live sessions finish under the key
//!   they were admitted with.
//! - **One worker pool.** All sessions draw run permits from a single
//!   [`RunGate`], so total running ranks across every live world is
//!   bounded by the host — not multiplied per world.
//! - **One fabric.** The manager owns the *physical* node NICs; each
//!   session's logical nodes are mapped onto them, so concurrent sessions
//!   sharing a physical node genuinely contend for its NIC in virtual
//!   time. Reservations are owner-stamped with the session id and retired
//!   when the session ends, leaving other sessions' ledgers intact.

use crate::error::{CollectiveError, FailureCause};
use crate::sched::RunGate;
use crate::world::{run, try_run, CrashReport, ProcCtx, RunReport, WorldSpec};
use eag_crypto::{Key, SessionKeychain};
use eag_netsim::nic::NodeNic;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`SessionManager`].
pub struct SessionConfig {
    /// Service master key all session keys are derived from.
    pub master_key: Key,
    /// Maximum sessions admitted (running) at once.
    pub max_live: usize,
    /// Per-tenant cap on *waiting* admissions; a blocking admit beyond it
    /// is shed.
    pub queue_capacity: usize,
    /// Width of the shared run-permit gate. `None` uses the
    /// [process-global gate](RunGate::global); `Some(w)` builds a
    /// dedicated gate of `w` permits for this manager's sessions.
    pub gate_width: Option<usize>,
    /// Physical nodes (NICs) the service runs on. Sessions whose worlds
    /// span more logical nodes wrap around these.
    pub physical_nodes: usize,
    /// Aggregate bandwidth of each physical NIC in B/µs
    /// (`f64::INFINITY` disables cross-session NIC contention).
    pub nic_bandwidth: f64,
}

impl SessionConfig {
    /// A config with service defaults: 8 live sessions, 64 queued per
    /// tenant, the process-global gate, 4 physical nodes, no NIC cap.
    pub fn new(master_key: Key) -> Self {
        SessionConfig {
            master_key,
            max_live: 8,
            queue_capacity: 64,
            gate_width: None,
            physical_nodes: 4,
            nic_bandwidth: f64::INFINITY,
        }
    }
}

/// A session's whole-collective retry budget: how many times a tenant may
/// re-run a failed collective, how long to back off between attempts, and
/// a hard wall-clock deadline across all of them.
///
/// This sits *above* the per-receive [`RetryPolicy`](crate::RetryPolicy):
/// the policy retries one blocked receive inside an attempt, the budget
/// retries whole attempts of the collective. [`Session::run_with_budget`]
/// enforces it and converts exhaustion into a typed
/// [`BudgetExhausted`](FailureCause::BudgetExhausted) error — a tenant
/// whose group keeps failing is parked with an answer, never a hang.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Whole-collective attempts before giving up (min 1).
    pub max_attempts: u32,
    /// Sleep before the second attempt; grows by `backoff_factor` after
    /// each further failure.
    pub initial_backoff: Duration,
    /// Multiplier applied to the backoff after every failed attempt
    /// (clamped to ≥ 1.0).
    pub backoff_factor: f64,
    /// Hard wall-clock ceiling across all attempts and backoffs. Every
    /// blocking receive inside an attempt is clamped to the remaining
    /// deadline, so a wedged attempt surfaces as a typed timeout.
    pub deadline: Duration,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(5),
            backoff_factor: 2.0,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Why an admission did not produce a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Backpressure: the tenant's waiting queue is full, so the blocking
    /// [`SessionManager::admit`] dropped the request instead of queueing
    /// it. The flooding tenant sees this; other tenants' queues are
    /// unaffected.
    Shed {
        /// The tenant whose queue overflowed.
        tenant: u64,
        /// Sessions of that tenant already waiting.
        queued: usize,
    },
    /// The non-blocking [`SessionManager::try_admit`] found no free slot
    /// (or waiters ahead of it) and refused to block.
    Rejected {
        /// The tenant that was refused.
        tenant: u64,
        /// Sessions currently live across all tenants.
        live: usize,
    },
}

/// Monotone counters of a manager's lifetime (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions admitted (immediately or after queueing).
    pub admitted: u64,
    /// Blocking admissions shed by per-tenant backpressure.
    pub shed: u64,
    /// Non-blocking admissions rejected.
    pub rejected: u64,
    /// Sessions retired (dropped or run to completion).
    pub completed: u64,
    /// Peak concurrently-live sessions.
    pub peak_live: u64,
}

/// Admission bookkeeping behind the manager's mutex.
struct Admission {
    /// Live (admitted, unretired) sessions.
    live: usize,
    /// Per-tenant FIFO of waiting ticket ids.
    queues: BTreeMap<u64, VecDeque<u64>>,
    /// Round-robin order over tenants (first-contact order).
    order: Vec<u64>,
    /// Next tenant index in `order` to serve.
    cursor: usize,
    /// Tickets granted a slot but not yet collected by their waiter.
    granted: HashSet<u64>,
    /// Next waiting-ticket id.
    next_ticket: u64,
    /// Monotone counters (under the lock; snapshot via `stats`).
    admitted: u64,
    shed: u64,
    rejected: u64,
    completed: u64,
    peak_live: u64,
}

impl Admission {
    /// Total tickets still waiting across all tenants.
    fn waiting(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Hands the freed (or still-free) slot to the next waiting tenant in
    /// round-robin order, if any.
    fn grant_next(&mut self) {
        let n = self.order.len();
        for step in 0..n {
            let tenant = self.order[(self.cursor + step) % n];
            if let Some(q) = self.queues.get_mut(&tenant) {
                if let Some(ticket) = q.pop_front() {
                    self.granted.insert(ticket);
                    self.live += 1;
                    self.peak_live = self.peak_live.max(self.live as u64);
                    self.cursor = (self.cursor + step + 1) % n;
                    return;
                }
            }
        }
    }
}

struct ManagerInner {
    gate: Arc<RunGate>,
    /// The physical per-node NICs every session's traffic shares.
    nics: Vec<Arc<NodeNic>>,
    keychain: SessionKeychain,
    epoch: AtomicU64,
    next_session: AtomicU64,
    max_live: usize,
    queue_capacity: usize,
    admission: Mutex<Admission>,
    cv: Condvar,
}

impl ManagerInner {
    /// Returns a session's slot and serves the next waiter.
    fn release(&self) {
        let mut adm = self.admission.lock();
        adm.live -= 1;
        adm.completed += 1;
        if adm.live < self.max_live {
            adm.grant_next();
        }
        drop(adm);
        self.cv.notify_all();
    }
}

/// The multi-tenant control plane. See the [module docs](self).
pub struct SessionManager {
    inner: Arc<ManagerInner>,
}

impl SessionManager {
    /// A manager over `cfg`. Builds the shared gate and the physical NIC
    /// ledgers; derives no keys until sessions are admitted.
    pub fn new(cfg: SessionConfig) -> Self {
        let gate = match cfg.gate_width {
            Some(w) => Arc::new(RunGate::new(w)),
            None => RunGate::global(),
        };
        let nics = (0..cfg.physical_nodes.max(1))
            .map(|_| Arc::new(NodeNic::new(cfg.nic_bandwidth)))
            .collect();
        SessionManager {
            inner: Arc::new(ManagerInner {
                gate,
                nics,
                keychain: SessionKeychain::new(&cfg.master_key),
                epoch: AtomicU64::new(0),
                // Session ids start at 1: id 0 is the standalone
                // (non-session) world and must never collide with a
                // tenant session on a shared NIC ledger.
                next_session: AtomicU64::new(1),
                max_live: cfg.max_live.max(1),
                queue_capacity: cfg.queue_capacity,
                admission: Mutex::new(Admission {
                    live: 0,
                    queues: BTreeMap::new(),
                    order: Vec::new(),
                    cursor: 0,
                    granted: HashSet::new(),
                    next_ticket: 0,
                    admitted: 0,
                    shed: 0,
                    rejected: 0,
                    completed: 0,
                    peak_live: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Admits a session for `tenant`, blocking while the service is full.
    /// Returns [`AdmitError::Shed`] without blocking when the tenant
    /// already has `queue_capacity` sessions waiting — the backpressure
    /// signal a flooding tenant sees.
    pub fn admit(&self, tenant: u64) -> Result<Session, AdmitError> {
        let inner = &self.inner;
        let ticket = {
            let mut adm = inner.admission.lock();
            // Fast path: free slot and nobody waiting → no queueing.
            if adm.live < inner.max_live && adm.waiting() == 0 {
                adm.live += 1;
                adm.peak_live = adm.peak_live.max(adm.live as u64);
                adm.admitted += 1;
                drop(adm);
                return Ok(self.open_session(tenant));
            }
            let queued = adm.queues.get(&tenant).map_or(0, |q| q.len());
            if queued >= inner.queue_capacity {
                adm.shed += 1;
                return Err(AdmitError::Shed { tenant, queued });
            }
            let ticket = adm.next_ticket;
            adm.next_ticket += 1;
            if !adm.order.contains(&tenant) {
                adm.order.push(tenant);
            }
            adm.queues.entry(tenant).or_default().push_back(ticket);
            // A slot may already be free (e.g. others queued behind a
            // different tenant raced us); try to serve immediately. The
            // grant may land on an earlier waiter, so wake them all.
            if adm.live < inner.max_live {
                adm.grant_next();
                inner.cv.notify_all();
            }
            ticket
        };
        let mut adm = inner.admission.lock();
        while !adm.granted.remove(&ticket) {
            inner.cv.wait(&mut adm);
        }
        adm.admitted += 1;
        drop(adm);
        Ok(self.open_session(tenant))
    }

    /// Admits a session for `tenant` only if a slot is free *and* no one
    /// is waiting; otherwise returns [`AdmitError::Rejected`] immediately.
    pub fn try_admit(&self, tenant: u64) -> Result<Session, AdmitError> {
        let inner = &self.inner;
        let mut adm = inner.admission.lock();
        if adm.live < inner.max_live && adm.waiting() == 0 {
            adm.live += 1;
            adm.peak_live = adm.peak_live.max(adm.live as u64);
            adm.admitted += 1;
            drop(adm);
            return Ok(self.open_session(tenant));
        }
        adm.rejected += 1;
        let live = adm.live;
        Err(AdmitError::Rejected { tenant, live })
    }

    fn open_session(&self, tenant: u64) -> Session {
        let inner = &self.inner;
        let id = inner.next_session.fetch_add(1, Ordering::Relaxed);
        let epoch = inner.epoch.load(Ordering::SeqCst);
        let key = inner.keychain.derive(tenant, id, epoch);
        Session {
            mgr: Arc::clone(inner),
            tenant,
            id,
            epoch,
            key,
        }
    }

    /// Starts a new rotation epoch and returns it. Sessions admitted from
    /// now on derive their keys under the new epoch; live sessions keep
    /// the key they were admitted with.
    pub fn rotate_keys(&self) -> u64 {
        self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The current rotation epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// The run-permit gate all of this manager's sessions share.
    pub fn gate(&self) -> Arc<RunGate> {
        Arc::clone(&self.inner.gate)
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> SessionStats {
        let adm = self.inner.admission.lock();
        SessionStats {
            admitted: adm.admitted,
            shed: adm.shed,
            rejected: adm.rejected,
            completed: adm.completed,
            peak_live: adm.peak_live,
        }
    }

    /// Sessions of `tenant` currently waiting for admission.
    pub fn queue_depth(&self, tenant: u64) -> usize {
        self.inner
            .admission
            .lock()
            .queues
            .get(&tenant)
            .map_or(0, |q| q.len())
    }
}

/// One admitted tenant session: a slot in the service, a derived AEAD
/// key, and an owner id for shared-NIC reservations. Dropping the session
/// retires its NIC intervals and hands its slot to the next waiter.
pub struct Session {
    mgr: Arc<ManagerInner>,
    tenant: u64,
    id: u64,
    epoch: u64,
    key: Key,
}

impl Session {
    /// The owning tenant.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Service-unique session id (also the NIC reservation owner).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rotation epoch this session's key was derived under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session's derived AEAD key.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Equips `spec` to run *inside* the service: the shared gate (unless
    /// the spec pins an explicit `workers` width for cooperative
    /// interleaving), the physical NICs (logical node `i` maps to
    /// physical NIC `i % physical_nodes`), the session's owner id, and
    /// its derived key.
    pub fn equip(&self, spec: &mut WorldSpec) {
        if spec.workers.is_none() {
            spec.gate = Some(Arc::clone(&self.mgr.gate));
        }
        let physical = self.mgr.nics.len();
        spec.shared_nics = Some(
            (0..spec.topology.nodes())
                .map(|node| Arc::clone(&self.mgr.nics[node % physical]))
                .collect(),
        );
        spec.session_id = self.id;
        spec.key = Some(self.key.clone());
    }

    /// Runs one collective under this session: equips a copy of `spec`
    /// (see [`Session::equip`]), runs it, then retires this session's NIC
    /// reservations so the shared ledgers only carry live traffic.
    pub fn run<T, F>(&self, spec: &WorldSpec, f: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut ProcCtx) -> T + Sync,
    {
        let mut spec = spec.clone();
        self.equip(&mut spec);
        let report = run(&spec, f);
        for nic in &self.mgr.nics {
            nic.retire(self.id);
        }
        report
    }

    /// Like [`Session::run`] for a world whose fault plan injects crashes:
    /// survivors recover (or fail with a typed error), the runner keeps
    /// the world alive, and this session's NIC reservations are retired
    /// afterwards either way.
    pub fn run_crashable<T, F>(&self, spec: &WorldSpec, f: F) -> CrashReport<T>
    where
        T: Send,
        F: Fn(&mut ProcCtx) -> T + Sync,
    {
        let mut spec = spec.clone();
        self.equip(&mut spec);
        let report = crate::world::run_crashable(&spec, f);
        for nic in &self.mgr.nics {
            nic.retire(self.id);
        }
        report
    }

    /// Runs a collective under this session with a whole-collective
    /// [`RetryBudget`]: failed attempts are retried with exponential
    /// backoff until the budget's attempts or hard deadline run out, at
    /// which point a typed [`BudgetExhausted`](FailureCause::BudgetExhausted)
    /// error is returned — never a hang.
    ///
    /// Every attempt's blocking receives are clamped to the remaining
    /// deadline (tightening any `recv_timeout` the spec already sets), so
    /// even an attempt that would otherwise wedge forever is converted
    /// into a failure the budget can account. NIC reservations are retired
    /// after every attempt, successful or not.
    pub fn run_with_budget<T, F>(
        &self,
        spec: &WorldSpec,
        budget: &RetryBudget,
        f: F,
    ) -> Result<RunReport<T>, CollectiveError>
    where
        T: Send,
        F: Fn(&mut ProcCtx) -> T + Sync,
    {
        let start = Instant::now();
        let max_attempts = budget.max_attempts.max(1);
        let mut backoff = budget.initial_backoff;
        let mut attempts = 0u32;
        while attempts < max_attempts {
            let Some(remaining) = budget
                .deadline
                .checked_sub(start.elapsed())
                .filter(|r| !r.is_zero())
            else {
                break;
            };
            let mut attempt_spec = spec.clone();
            self.equip(&mut attempt_spec);
            attempt_spec.recv_timeout = Some(
                attempt_spec
                    .recv_timeout
                    .map_or(remaining, |t| t.min(remaining)),
            );
            attempts += 1;
            let result = try_run(&attempt_spec, &f);
            for nic in &self.mgr.nics {
                nic.retire(self.id);
            }
            match result {
                Ok(report) => return Ok(report),
                Err(_) if attempts < max_attempts => {
                    if let Some(rem) = budget.deadline.checked_sub(start.elapsed()) {
                        std::thread::sleep(backoff.min(rem));
                    }
                    backoff = backoff.mul_f64(budget.backoff_factor.max(1.0));
                }
                Err(_) => break,
            }
        }
        Err(CollectiveError {
            rank: 0,
            phase: "session-retry",
            cause: FailureCause::BudgetExhausted {
                attempts,
                elapsed: start.elapsed(),
            },
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        for nic in &self.mgr.nics {
            nic.retire(self.id);
        }
        self.mgr.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::DataMode;
    use eag_netsim::{profile, Mapping, Topology};
    use std::thread;
    use std::time::Duration;

    fn manager(max_live: usize, queue_capacity: usize) -> SessionManager {
        let mut cfg = SessionConfig::new(Key::from_bytes([9u8; 16]));
        cfg.max_live = max_live;
        cfg.queue_capacity = queue_capacity;
        cfg.gate_width = Some(4);
        cfg.physical_nodes = 2;
        cfg.nic_bandwidth = 100.0;
        SessionManager::new(cfg)
    }

    #[test]
    fn sessions_get_distinct_derived_keys() {
        let m = manager(4, 4);
        let a = m.admit(1).unwrap();
        let b = m.admit(1).unwrap();
        let c = m.admit(2).unwrap();
        assert_ne!(a.key().as_bytes(), b.key().as_bytes());
        assert_ne!(a.key().as_bytes(), c.key().as_bytes());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn rotation_changes_epoch_for_later_sessions() {
        let m = manager(4, 4);
        let before = m.admit(1).unwrap();
        assert_eq!(before.epoch(), 0);
        assert_eq!(m.rotate_keys(), 1);
        let after = m.admit(1).unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn flooding_tenant_is_shed_but_not_others() {
        let m = Arc::new(manager(1, 1));
        let live = m.admit(7).unwrap();
        // One waiter fills tenant 7's queue.
        let waiter = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.admit(7).map(|s| s.tenant()))
        };
        while m.queue_depth(7) < 1 {
            thread::sleep(Duration::from_millis(1));
        }
        // Tenant 7 flooding past its queue is shed...
        match m.admit(7) {
            Err(e) => assert_eq!(
                e,
                AdmitError::Shed {
                    tenant: 7,
                    queued: 1
                }
            ),
            Ok(_) => panic!("flooding admit must be shed, not admitted"),
        }
        // ...and a non-blocking probe is rejected, not queued.
        assert!(matches!(
            m.try_admit(8),
            Err(AdmitError::Rejected { tenant: 8, .. })
        ));
        let stats = m.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        drop(live);
        assert_eq!(waiter.join().unwrap().unwrap(), 7);
    }

    /// Round-robin handoff: with tenant A flooding and tenant B holding a
    /// single pending admission, B is served after at most one A grant —
    /// never starved behind A's whole queue.
    #[test]
    fn freed_slots_rotate_across_tenants() {
        let m = Arc::new(manager(1, 8));
        let live = m.admit(0xA).unwrap();
        let grant_order = Arc::new(Mutex::new(Vec::new()));

        // Three A waiters first, then one B waiter.
        let mut handles = Vec::new();
        for tenant in [0xA, 0xA, 0xA] {
            let m2 = Arc::clone(&m);
            let order = Arc::clone(&grant_order);
            let before = m.queue_depth(0xA);
            handles.push(thread::spawn(move || {
                let s = m2.admit(tenant).unwrap();
                order.lock().push(s.tenant());
            }));
            while m.queue_depth(0xA) <= before {
                thread::sleep(Duration::from_millis(1));
            }
        }
        {
            let m2 = Arc::clone(&m);
            let order = Arc::clone(&grant_order);
            handles.push(thread::spawn(move || {
                let s = m2.admit(0xB).unwrap();
                order.lock().push(s.tenant());
            }));
            while m.queue_depth(0xB) < 1 {
                thread::sleep(Duration::from_millis(1));
            }
        }

        drop(live); // start the handoff chain
        for h in handles {
            h.join().unwrap();
        }
        let order = grant_order.lock().clone();
        assert_eq!(order.len(), 4);
        let b_pos = order.iter().position(|&t| t == 0xB).unwrap();
        assert!(
            b_pos <= 1,
            "tenant B starved behind tenant A's flood: grant order {order:?}"
        );
        assert_eq!(m.stats().completed, 5);
        assert_eq!(m.stats().peak_live, 1);
    }

    #[test]
    fn equip_wires_gate_nics_key_and_owner() {
        let m = manager(2, 2);
        let s = m.admit(3).unwrap();
        let mut spec = WorldSpec::new(
            Topology::new(8, 4, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 5 },
        );
        s.equip(&mut spec);
        assert!(spec
            .gate
            .as_ref()
            .is_some_and(|g| Arc::ptr_eq(g, &m.gate())));
        let nics = spec.shared_nics.as_ref().unwrap();
        // 4 logical nodes wrap onto 2 physical NICs.
        assert_eq!(nics.len(), 4);
        assert!(Arc::ptr_eq(&nics[0], &nics[2]));
        assert!(Arc::ptr_eq(&nics[1], &nics[3]));
        assert!(!Arc::ptr_eq(&nics[0], &nics[1]));
        assert_eq!(spec.session_id, s.id());
        assert_eq!(spec.key.as_ref().unwrap().as_bytes(), s.key().as_bytes());

        // A pinned worker width keeps its private cooperative gate.
        let mut coop = WorldSpec::new(
            Topology::new(2, 1, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 5 },
        );
        coop.workers = Some(1);
        s.equip(&mut coop);
        assert!(coop.gate.is_none());
    }

    #[test]
    fn budget_returns_first_success_unretried() {
        let m = manager(2, 2);
        let s = m.admit(1).unwrap();
        let mut spec = WorldSpec::new(
            Topology::new(4, 2, Mapping::Block),
            profile::noleland(),
            DataMode::Real { seed: 11 },
        );
        spec.workers = Some(2);
        let report = s
            .run_with_budget(&spec, &RetryBudget::default(), |ctx| ctx.rank())
            .expect("clean world must succeed on the first attempt");
        assert_eq!(report.outputs, vec![0, 1, 2, 3]);
        for nic in &s.mgr.nics {
            assert!(nic.busy_intervals().is_empty());
        }
    }

    #[test]
    fn exhausted_budget_is_a_typed_error_not_a_hang() {
        use crate::payload::{Item, Parcel};
        use eag_netsim::{Crash, FaultPlan};

        let m = manager(2, 2);
        let s = m.admit(4).unwrap();
        let mut spec = WorldSpec::new(
            Topology::new(2, 2, Mapping::Block),
            profile::noleland(),
            DataMode::Real { seed: 3 },
        );
        spec.workers = Some(2);
        // Rank 1 dies at its first send on every attempt; the collective
        // (which does not recover) fails each time, so the budget runs dry.
        spec.faults = FaultPlan {
            crashes: vec![Crash::before(1, 0)],
            ..FaultPlan::default()
        };
        crate::world::quiet_expected_panics();
        let start = Instant::now();
        let err = s
            .run_with_budget(
                &spec,
                &RetryBudget {
                    max_attempts: 2,
                    initial_backoff: Duration::from_millis(1),
                    backoff_factor: 2.0,
                    deadline: Duration::from_secs(20),
                },
                |ctx| {
                    if ctx.rank() == 1 {
                        ctx.send(0, 9, Parcel::one(Item::Plain(ctx.my_block(8))));
                        0
                    } else {
                        ctx.recv(1, 9).items.len()
                    }
                },
            )
            .map(|_| ())
            .expect_err("every attempt crashes; the budget must exhaust");
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "hung to deadline"
        );
        assert_eq!(err.phase, "session-retry");
        assert_eq!(
            err.cause,
            FailureCause::BudgetExhausted {
                attempts: 2,
                elapsed: match err.cause {
                    FailureCause::BudgetExhausted { elapsed, .. } => elapsed,
                    _ => unreachable!(),
                }
            }
        );
        for nic in &s.mgr.nics {
            assert!(
                nic.busy_intervals().is_empty(),
                "failed attempts must retire NICs"
            );
        }
    }

    #[test]
    fn zero_deadline_budget_fails_before_any_attempt() {
        let m = manager(2, 2);
        let s = m.admit(1).unwrap();
        let mut spec = WorldSpec::new(
            Topology::new(2, 1, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 1 },
        );
        spec.workers = Some(1);
        let err = s
            .run_with_budget(
                &spec,
                &RetryBudget {
                    deadline: Duration::ZERO,
                    ..RetryBudget::default()
                },
                |ctx| ctx.rank(),
            )
            .map(|_| ())
            .expect_err("an already-expired deadline admits no attempts");
        assert!(matches!(
            err.cause,
            FailureCause::BudgetExhausted { attempts: 0, .. }
        ));
    }

    /// End-to-end: a session's world runs, produces output, and leaves
    /// the shared NIC ledgers clean afterwards.
    #[test]
    fn session_run_retires_its_nic_reservations() {
        let m = manager(2, 2);
        let s = m.admit(1).unwrap();
        let mut spec = WorldSpec::new(
            Topology::new(4, 2, Mapping::Block),
            profile::noleland(),
            DataMode::Real { seed: 11 },
        );
        spec.workers = Some(2);
        let report = s.run(&spec, |ctx| ctx.rank());
        assert_eq!(report.outputs, vec![0, 1, 2, 3]);
        for nic in &s.mgr.nics {
            assert!(
                nic.busy_intervals().is_empty(),
                "session traffic must be retired after the run"
            );
        }
    }
}
