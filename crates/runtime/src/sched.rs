//! The rank scheduler: per-rank mailboxes, event-driven parking, and a
//! worker gate bounding how many rank state machines run at once.
//!
//! The world used to be thread-per-rank all the way down: every rank owned
//! an OS thread that *ran* whenever it was not blocked in a channel
//! `recv_timeout`, so p ranks meant p schedulable threads spinning poll
//! loops against each other. This module inverts that. A rank's OS thread
//! is demoted to a stack for its state machine; whether the machine may
//! *run* is a scheduler decision:
//!
//! - **Run permits.** A [`Scheduler`] holds a gate of `width` run permits
//!   (the "worker pool"). A rank executes algorithm steps only while it
//!   holds a permit; at most `width` ranks make progress at any instant, no
//!   matter how large p is.
//! - **Mailboxes.** Point-to-point traffic lands in a per-rank inbound
//!   queue ([`Scheduler::send`]); the owner drains it in batches
//!   ([`Scheduler::drain_into`]).
//! - **Parking.** A rank with nothing to do does not poll. It calls
//!   [`Scheduler::park`], which returns its permit to the gate and blocks
//!   until one of its wake sources fires: mail arrives, a *world event* is
//!   raised, or its earliest timer (receive watchdog, retry round, suspect
//!   deadline) expires. Waking re-acquires a permit before returning, so a
//!   woken rank is again a running rank.
//! - **World events.** State every rank may be parked on — a departure, an
//!   attempt abort, a poisoning panic — is published through
//!   [`Scheduler::world_event`], which bumps a generation counter and wakes
//!   all parked ranks. Parkers snapshot the generation *before* re-checking
//!   their conditions and pass it to `park`; an event that fires in the
//!   race window makes the park return immediately instead of being lost.
//! - **Departures.** Liveness is a scheduler fact, not a wall-clock guess:
//!   the runner records how every rank left the world
//!   ([`Scheduler::depart`]), including hard crashes — the simulation
//!   analogue of per-node OS process monitoring. The failure detector in
//!   `world` keys suspicion off these records, so a rank that is merely
//!   descheduled (oversubscribed, busy in a long compute step) can never be
//!   suspected: it has not departed.
//!
//! The scheduler is deliberately oblivious to what the messages mean;
//! reliability framing, virtual clocks, and failure semantics stay in
//! [`crate::world`].

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Why [`Scheduler::park`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The rank's mailbox is non-empty.
    Mail,
    /// A world event was raised after the parker's generation snapshot.
    Event,
    /// The requested deadline passed.
    Deadline,
}

/// How a rank left the scheduler (recorded by the world runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Departure {
    /// Its step function returned normally.
    Finished,
    /// Killed by an injected crash that leaves an exit notice for
    /// survivors.
    SoftCrash,
    /// Killed by an injected crash that leaves no notice. Survivors learn
    /// of it only through this departure record — after the world's
    /// `suspect_after` grace period, the failure detector turns a silent
    /// departure into a suspected crash.
    HardCrash,
    /// Unwound by a propagating (poisoning) panic.
    Poisoned,
}

/// Counting semaphore of run permits, shareable across schedulers.
///
/// Every [`Scheduler`] draws its run permits from a `RunGate`. A world that
/// builds its own scheduler gets a private gate ([`Scheduler::new`]); worlds
/// that should contend for the *same* worker pool — concurrent tenant
/// sessions on one host — are built with [`Scheduler::with_gate`] over one
/// shared `Arc<RunGate>`, so the bound is per host, not per world. Ranks
/// never touch the gate directly; they go through [`Scheduler::enter`] /
/// [`Scheduler::exit`] / [`Scheduler::park`] / [`Scheduler::blocking`],
/// which release the permit across every blocking region — a parked or
/// blocked rank costs no permit, so sharing a gate cannot deadlock worlds
/// against each other.
pub struct RunGate {
    state: Mutex<GateState>,
    cv: Condvar,
    width: usize,
}

struct GateState {
    free: usize,
    waiting: usize,
}

impl RunGate {
    /// A gate holding `width` run permits (clamped to at least 1).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        RunGate {
            state: Mutex::new(GateState {
                free: width,
                waiting: 0,
            }),
            cv: Condvar::new(),
            width,
        }
    }

    /// The process-global gate, sized to `available_parallelism()` (floor
    /// 4) on first use. Worlds that specify neither an explicit worker
    /// count nor their own gate share this one, so N concurrent worlds
    /// are bounded by the host's core count — not N× it.
    pub fn global() -> Arc<RunGate> {
        static GLOBAL: OnceLock<Arc<RunGate>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let width = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4);
            Arc::new(RunGate::new(width))
        }))
    }

    /// Total number of run permits this gate was built with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Run permits currently unheld — a diagnostic snapshot (stale the
    /// moment it returns). Tests use it to assert that parked or retired
    /// worlds hold no permits; schedulers must not branch on it.
    pub fn free_permits(&self) -> usize {
        self.state.lock().free
    }

    fn acquire(&self) {
        let mut st = self.state.lock();
        while st.free == 0 {
            st.waiting += 1;
            self.cv.wait(&mut st);
            st.waiting -= 1;
        }
        st.free -= 1;
    }

    fn release(&self) {
        let mut st = self.state.lock();
        st.free += 1;
        if st.waiting > 0 {
            self.cv.notify_one();
        }
    }

    fn has_waiters(&self) -> bool {
        self.state.lock().waiting > 0
    }
}

struct RankSlot<M> {
    mail: Mutex<VecDeque<M>>,
    cv: Condvar,
    /// Monotone count of this rank's scheduler interactions (drains, parks,
    /// yields) — diagnostics for tests and tooling, not a liveness oracle.
    progress: AtomicU64,
    departed: Mutex<Option<(Departure, Instant)>>,
}

/// The event-driven rank scheduler. See the [module docs](self) for the
/// execution model.
pub struct Scheduler<M> {
    slots: Vec<RankSlot<M>>,
    /// World-event generation counter (see [`Scheduler::world_event`]).
    generation: AtomicU64,
    gate: Arc<RunGate>,
}

impl<M> Scheduler<M> {
    /// A scheduler for `p` ranks driven by a private gate of `width` run
    /// permits (clamped to at least 1).
    pub fn new(p: usize, width: usize) -> Self {
        Self::with_gate(p, Arc::new(RunGate::new(width)))
    }

    /// A scheduler for `p` ranks drawing permits from a caller-provided
    /// (possibly shared) gate. Multiple schedulers over one gate contend
    /// for the same worker pool: total running ranks across all of them
    /// never exceed the gate's width.
    pub fn with_gate(p: usize, gate: Arc<RunGate>) -> Self {
        Scheduler {
            slots: (0..p)
                .map(|_| RankSlot {
                    mail: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                    progress: AtomicU64::new(0),
                    departed: Mutex::new(None),
                })
                .collect(),
            generation: AtomicU64::new(0),
            gate,
        }
    }

    /// Number of run permits in this scheduler's gate.
    pub fn width(&self) -> usize {
        self.gate.width()
    }

    /// Acquires a run permit; a rank's state machine must hold one while
    /// executing. Blocks until a permit frees up.
    pub fn enter(&self) {
        self.gate.acquire();
    }

    /// Returns the run permit (rank finished or unwinding).
    pub fn exit(&self) {
        self.gate.release();
    }

    /// Pushes `msg` into `dst`'s mailbox and wakes `dst` if it is parked.
    pub fn send(&self, dst: usize, msg: M) {
        let slot = &self.slots[dst];
        let mut mail = slot.mail.lock();
        mail.push_back(msg);
        slot.cv.notify_one();
    }

    /// Moves everything queued for `rank` into `buf` (appending).
    pub fn drain_into(&self, rank: usize, buf: &mut Vec<M>) {
        let slot = &self.slots[rank];
        slot.progress.fetch_add(1, Ordering::Relaxed);
        let mut mail = slot.mail.lock();
        buf.extend(mail.drain(..));
    }

    /// Current world-event generation. A parker must snapshot this *before*
    /// draining its mailbox and re-checking its wake conditions, then pass
    /// the snapshot to [`Scheduler::park`]: any event raised after the
    /// snapshot aborts the park instead of being lost in the race window.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Publishes a state change every rank may be parked on (a departure,
    /// an attempt abort, a poisoning panic): bumps the generation and wakes
    /// all parked ranks so they re-examine the world.
    pub fn world_event(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        for slot in &self.slots {
            // Taking the mailbox lock orders this notification after any
            // parker that read the old generation but has not yet blocked:
            // the parker holds the lock from its generation check until
            // `wait` atomically enqueues it.
            let _mail = slot.mail.lock();
            slot.cv.notify_all();
        }
    }

    /// Parks `rank` until mail arrives, a world event postdates the `gen`
    /// snapshot, or `deadline` passes (`None` = no timer). The caller must
    /// hold a run permit; the permit is returned to the gate for the
    /// duration of the block and re-acquired before `park` returns, so a
    /// parked rank costs no worker.
    pub fn park(&self, rank: usize, deadline: Option<Instant>, gen: u64) -> Wake {
        let slot = &self.slots[rank];
        slot.progress.fetch_add(1, Ordering::Relaxed);
        // Fast path: already satisfied — keep the permit, skip the gate.
        {
            let mail = slot.mail.lock();
            if !mail.is_empty() {
                return Wake::Mail;
            }
            if self.generation.load(Ordering::SeqCst) != gen {
                return Wake::Event;
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Wake::Deadline;
            }
        }
        self.blocking(|| {
            let mut mail = slot.mail.lock();
            loop {
                if !mail.is_empty() {
                    return Wake::Mail;
                }
                if self.generation.load(Ordering::SeqCst) != gen {
                    return Wake::Event;
                }
                match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Wake::Deadline;
                        }
                        slot.cv.wait_for(&mut mail, d - now);
                    }
                    None => slot.cv.wait(&mut mail),
                }
            }
        })
    }

    /// Runs `f` with the run permit returned to the gate, re-acquiring it
    /// afterwards (on unwind too). For blocking operations outside the
    /// scheduler's own parking — shared-memory fetches and barriers block
    /// on their segment's condvar and must not hold a worker hostage.
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Reacquire<'a>(&'a RunGate);
        impl Drop for Reacquire<'_> {
            fn drop(&mut self) {
                self.0.acquire();
            }
        }
        self.gate.release();
        let _reacquire = Reacquire(&self.gate);
        f()
    }

    /// Cooperative yield: if other ranks are waiting for a run permit,
    /// cycles this rank's permit through the gate so they get a turn.
    /// Algorithms call this at step boundaries; on an uncontended gate it
    /// is a single mutex probe.
    pub fn yield_now(&self, rank: usize) {
        self.slots[rank].progress.fetch_add(1, Ordering::Relaxed);
        if self.gate.has_waiters() {
            self.gate.release();
            self.gate.acquire();
        }
    }

    /// Records how `rank` left the world and raises a world event so every
    /// parked rank re-examines liveness.
    pub fn depart(&self, rank: usize, how: Departure) {
        *self.slots[rank].departed.lock() = Some((how, Instant::now()));
        self.world_event();
    }

    /// How `rank` left the world, if it has.
    pub fn departure(&self, rank: usize) -> Option<Departure> {
        self.slots[rank].departed.lock().map(|(how, _)| how)
    }

    /// When `rank` departed *silently* (a hard crash), if it did. This is
    /// what the failure detector's suspicion clock runs from.
    pub fn hard_departed_at(&self, rank: usize) -> Option<Instant> {
        match *self.slots[rank].departed.lock() {
            Some((Departure::HardCrash, at)) => Some(at),
            _ => None,
        }
    }

    /// This rank's scheduler-interaction counter (monotone; diagnostics).
    pub fn progress(&self, rank: usize) -> u64 {
        self.slots[rank].progress.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn queued_mail_returns_without_blocking() {
        let s = Scheduler::new(2, 4);
        s.enter();
        s.send(0, 7u32);
        let before = s.progress(0);
        assert_eq!(s.park(0, None, s.generation()), Wake::Mail);
        assert!(s.progress(0) > before, "park must count as progress");
        let mut buf = Vec::new();
        s.drain_into(0, &mut buf);
        assert_eq!(buf, vec![7]);
        s.exit();
    }

    /// The lost-wakeup race, made deterministic: an event raised *between*
    /// the generation snapshot and the park must abort the park.
    #[test]
    fn stale_generation_snapshot_aborts_the_park() {
        let s: Scheduler<u32> = Scheduler::new(1, 4);
        s.enter();
        let gen = s.generation();
        s.world_event();
        assert_eq!(s.park(0, None, gen), Wake::Event);
        s.exit();
    }

    #[test]
    fn past_deadline_returns_immediately() {
        let s: Scheduler<u32> = Scheduler::new(1, 4);
        s.enter();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(s.park(0, Some(past), s.generation()), Wake::Deadline);
        s.exit();
    }

    #[test]
    fn deadline_park_times_out() {
        let s: Scheduler<u32> = Scheduler::new(1, 4);
        s.enter();
        let t0 = Instant::now();
        let wake = s.park(0, Some(t0 + Duration::from_millis(20)), s.generation());
        assert_eq!(wake, Wake::Deadline);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        s.exit();
    }

    #[test]
    fn send_wakes_a_parked_rank() {
        let s = Arc::new(Scheduler::new(2, 4));
        let parker = Arc::clone(&s);
        let handle = thread::spawn(move || {
            parker.enter();
            let wake = parker.park(1, None, parker.generation());
            parker.exit();
            wake
        });
        thread::sleep(Duration::from_millis(20));
        s.send(1, 42u32);
        assert_eq!(handle.join().unwrap(), Wake::Mail);
    }

    #[test]
    fn world_event_wakes_all_parked_ranks() {
        let s: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(3, 4));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let parker = Arc::clone(&s);
                thread::spawn(move || {
                    parker.enter();
                    let wake = parker.park(rank, None, parker.generation());
                    parker.exit();
                    wake
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        s.depart(2, Departure::SoftCrash);
        for h in handles {
            assert_eq!(h.join().unwrap(), Wake::Event);
        }
        assert_eq!(s.departure(2), Some(Departure::SoftCrash));
        assert_eq!(s.departure(0), None);
    }

    #[test]
    fn departure_records_distinguish_silence() {
        let s: Scheduler<u32> = Scheduler::new(3, 4);
        s.depart(0, Departure::Finished);
        s.depart(1, Departure::HardCrash);
        assert!(s.hard_departed_at(0).is_none());
        assert!(s.hard_departed_at(1).is_some());
        assert!(s.hard_departed_at(2).is_none());
    }

    #[test]
    fn gate_bounds_concurrent_runners() {
        let s: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(8, 2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    s.enter();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                    s.exit();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate width exceeded");
    }

    /// One gate, two schedulers: the permit bound is global across both,
    /// not per scheduler — this is what keeps N concurrent worlds from
    /// oversubscribing the host N×.
    #[test]
    fn shared_gate_bounds_ranks_across_schedulers() {
        let gate = Arc::new(RunGate::new(2));
        let a: Arc<Scheduler<u32>> = Arc::new(Scheduler::with_gate(4, Arc::clone(&gate)));
        let b: Arc<Scheduler<u32>> = Arc::new(Scheduler::with_gate(4, Arc::clone(&gate)));
        assert_eq!(a.width(), 2);
        assert_eq!(b.width(), 2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = if i % 2 == 0 {
                    Arc::clone(&a)
                } else {
                    Arc::clone(&b)
                };
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    s.enter();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                    s.exit();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "shared gate width exceeded across schedulers"
        );
    }

    #[test]
    fn global_gate_is_one_instance() {
        let g1 = RunGate::global();
        let g2 = RunGate::global();
        assert!(Arc::ptr_eq(&g1, &g2));
        assert!(g1.width() >= 4);
    }

    /// A rank inside `blocking` must not hold a worker hostage: with a
    /// single permit, a second rank can only run if the first gave its
    /// permit back for the duration of the blocking section.
    #[test]
    fn blocking_releases_the_run_permit() {
        let s: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(2, 1));
        let a_inside = Arc::new(AtomicBool::new(false));
        let b_done = Arc::new(AtomicBool::new(false));
        let a = {
            let s = Arc::clone(&s);
            let a_inside = Arc::clone(&a_inside);
            let b_done = Arc::clone(&b_done);
            thread::spawn(move || {
                s.enter();
                s.blocking(|| {
                    a_inside.store(true, Ordering::SeqCst);
                    while !b_done.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(1));
                    }
                });
                s.exit();
            })
        };
        let b = {
            let s = Arc::clone(&s);
            let a_inside = Arc::clone(&a_inside);
            let b_done = Arc::clone(&b_done);
            thread::spawn(move || {
                while !a_inside.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
                s.enter();
                b_done.store(true, Ordering::SeqCst);
                s.exit();
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        assert!(b_done.load(Ordering::SeqCst));
    }

    /// A parked rank costs no worker: with one permit, a parked rank A must
    /// let rank B run, and B's send must then wake A.
    #[test]
    fn park_hands_its_permit_to_another_rank() {
        let s: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(2, 1));
        let a = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                s.enter();
                let wake = s.park(0, None, s.generation());
                s.exit();
                wake
            })
        };
        let b = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                s.enter(); // only acquirable while A is parked
                s.send(0, 9u32);
                s.exit();
            })
        };
        assert_eq!(a.join().unwrap(), Wake::Mail);
        b.join().unwrap();
    }
}
