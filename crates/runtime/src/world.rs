//! The process world: spawns one thread per MPI-style rank and gives each a
//! [`ProcCtx`] with point-to-point messaging, shared memory, crypto, and a
//! virtual clock priced by the cost model.

use crate::metrics::Metrics;
use crate::payload::{Chunk, Data, Item, Parcel, Sealed};
use crate::shared::{NodeShared, SlotKey};
use crate::trace::{Event, EventKind, Trace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use eag_crypto::{AesGcm128, Key, NonceSource, WIRE_OVERHEAD};
use eag_netsim::fabric::FabricState;
use eag_netsim::nic::NodeNic;
use eag_netsim::{
    ClusterProfile, CostModel, FrameKind, FrameRecord, LinkClass, Rank, Topology, Wiretap,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Whether payloads carry real bytes or only lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Real bytes; real AES-128-GCM. Input blocks are the deterministic
    /// pattern `pattern_block(seed, rank, len)`.
    Real {
        /// Seed for the per-rank input patterns.
        seed: u64,
    },
    /// Length-only payloads; crypto and communication are priced but not
    /// performed. Needed for cluster-scale simulations.
    Phantom,
}

/// Active-adversary fault injection (real mode only).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Flip one byte of the n-th inter-node frame (0-based, counted across
    /// all ranks). Models on-path tampering; GCM must detect it.
    pub corrupt_nth_inter_frame: Option<u64>,
}

/// Configuration of one run.
#[derive(Clone)]
pub struct WorldSpec {
    /// Rank-to-node topology (p, N, mapping).
    pub topology: Topology,
    /// Cost model + metadata.
    pub profile: ClusterProfile,
    /// Real bytes or phantom lengths.
    pub mode: DataMode,
    /// Serialize concurrent inter-node streams through each node's NIC.
    /// Disable for fully deterministic virtual times.
    pub nic_contention: bool,
    /// Store the bytes of inter-node frames in the wiretap (real mode only;
    /// needed by the security tests, costs memory).
    pub capture_wire: bool,
    /// Record per-rank virtual-time event traces.
    pub trace: bool,
    /// Inject wire faults (tampering).
    pub faults: FaultPlan,
    /// Abort a blocking receive after this much *wall-clock* time with a
    /// diagnostic panic instead of hanging. `None` waits forever. A
    /// mismatched tag or a peer that never sends then fails the run loudly
    /// (and the poison protocol unwinds the other ranks).
    pub recv_timeout: Option<std::time::Duration>,
}

impl WorldSpec {
    /// A spec with contention on and wire capture off.
    pub fn new(topology: Topology, profile: ClusterProfile, mode: DataMode) -> Self {
        WorldSpec {
            topology,
            profile,
            mode,
            nic_contention: true,
            capture_wire: false,
            trace: false,
            faults: FaultPlan::default(),
            recv_timeout: Some(std::time::Duration::from_secs(300)),
        }
    }
}

/// Reserved tag used to propagate panics between ranks.
const POISON_TAG: u64 = u64::MAX;

/// Associated data binding a sealed chunk to its routing metadata. The
/// origins list and block length travel *outside* the ciphertext (receivers
/// need them to route and split), so an active adversary could otherwise
/// swap the metadata of two same-length ciphertexts and have blocks placed
/// under the wrong ranks without failing authentication. Deriving the AAD
/// from the metadata makes any such swap a GCM tag mismatch.
fn seal_aad_into(origins: &[Rank], block_len: usize, aad: &mut Vec<u8>) {
    aad.clear();
    aad.reserve(8 + 8 * origins.len() + 8);
    aad.extend_from_slice(&(origins.len() as u64).to_le_bytes());
    for &o in origins {
        aad.extend_from_slice(&(o as u64).to_le_bytes());
    }
    aad.extend_from_slice(&(block_len as u64).to_le_bytes());
}

struct Message {
    src: Rank,
    tag: u64,
    parcel: Parcel,
    arrive_us: f64,
}

/// Everything a rank needs during a collective: identity, messaging, shared
/// memory, crypto, clock, and metrics.
pub struct ProcCtx<'w> {
    rank: Rank,
    topo: &'w Topology,
    model: &'w CostModel,
    mvapich_switch_bytes: usize,
    mode: DataMode,
    clock_us: f64,
    metrics: Metrics,
    senders: &'w [Sender<Message>],
    rx: Receiver<Message>,
    pending: HashMap<(Rank, u64), VecDeque<Message>>,
    gcm: &'w AesGcm128,
    nonces: NonceSource,
    /// Reusable wire buffer for [`ProcCtx::encrypt`]: each seal writes into
    /// it and takes ownership, leaving the consumed plaintext Vec behind as
    /// the next scratch — steady state is allocation-free.
    seal_scratch: Vec<u8>,
    /// Reusable AAD buffer (the routing-metadata binding is rebuilt per
    /// chunk but never needs a fresh allocation).
    aad_scratch: Vec<u8>,
    nics: &'w [NodeNic],
    fabric: Option<&'w FabricState>,
    wiretap: &'w Wiretap,
    shared: &'w [Arc<NodeShared>],
    nic_contention: bool,
    capture_wire: bool,
    epoch: u64,
    recv_timeout: Option<std::time::Duration>,
    trace: Option<Trace>,
    faults: FaultPlan,
    inter_frame_counter: &'w std::sync::atomic::AtomicU64,
}

impl<'w> ProcCtx<'w> {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of processes p.
    pub fn p(&self) -> usize {
        self.topo.p()
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The node hosting this rank.
    pub fn node(&self) -> usize {
        self.topo.node_of(self.rank)
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        self.model
    }

    /// Message size at which the modeled MVAPICH baseline switches RD→Ring.
    pub fn mvapich_switch_bytes(&self) -> usize {
        self.mvapich_switch_bytes
    }

    /// The data mode of this run.
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    /// Current virtual time in µs.
    pub fn clock_us(&self) -> f64 {
        self.clock_us
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Resets clock and metrics (between repetitions inside one world).
    pub fn reset_accounting(&mut self) {
        self.clock_us = 0.0;
        self.metrics = Metrics::default();
    }

    /// Starts a new collective epoch. Every collective invocation must call
    /// this once on every rank so that shared-memory slot keys (and any
    /// other epoch-scoped state) never collide with a previous invocation
    /// in the same world.
    pub fn begin_collective(&mut self) {
        self.epoch += 1;
    }

    /// A shared-memory slot key scoped to the current collective epoch.
    pub fn slot(&self, base: u64, idx: usize) -> SlotKey {
        debug_assert!(base < 1 << 32, "slot base must fit below the epoch bits");
        (base | (self.epoch << 32), idx)
    }

    #[inline]
    fn record(&mut self, start_us: f64, kind: EventKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(Event {
                start_us,
                end_us: self.clock_us,
                kind,
            });
        }
    }

    /// This rank's own m-byte input block.
    pub fn my_block(&self, len: usize) -> Chunk {
        let data = match self.mode {
            DataMode::Real { seed } => {
                Data::Real(crate::payload::pattern_block(seed, self.rank, len))
            }
            DataMode::Phantom => Data::Phantom(len),
        };
        Chunk::single(self.rank, data)
    }

    // ----- point-to-point -------------------------------------------------

    /// Sends `parcel` to `dst` with `tag`. Advances this rank's clock by the
    /// transmission occupancy; the message arrives at
    /// `occupancy end + α(link)`.
    pub fn send(&mut self, dst: Rank, tag: u64, mut parcel: Parcel) {
        assert!(tag != POISON_TAG, "tag {POISON_TAG} is reserved");
        let t0 = self.clock_us;
        let bytes = parcel.wire_len();
        let link = self.topo.link(self.rank, dst);
        let (done_us, arrive_us) = match link {
            LinkClass::SelfLoop => (self.clock_us, self.clock_us),
            LinkClass::Intra => {
                let done = self.clock_us + bytes as f64 / self.model.intra.bandwidth;
                (done, done + self.model.intra.alpha_us)
            }
            LinkClass::Inter => {
                let stream_done = self.clock_us + bytes as f64 / self.model.inter.bandwidth;
                let nic_done = if self.nic_contention {
                    self.nics[self.node()].reserve(self.clock_us, bytes)
                } else {
                    self.clock_us
                };
                let mut done = stream_done.max(nic_done);
                let mut alpha = self.model.inter.alpha_us;
                if let Some(fabric) = self.fabric {
                    let (fab_done, extra_alpha) =
                        fabric.reserve(self.clock_us, self.node(), self.topo.node_of(dst), bytes);
                    done = done.max(fab_done);
                    alpha += extra_alpha;
                }
                (done, done + alpha)
            }
        };
        self.clock_us = done_us;
        // A self-send is a local buffer hand-off, not communication: it
        // must not inflate the Table II traffic columns.
        if link != LinkClass::SelfLoop {
            self.metrics.bytes_sent += bytes as u64;
            self.metrics.payload_sent += parcel.payload_len() as u64;
        }
        if link == LinkClass::Inter {
            self.metrics.inter_bytes_sent += bytes as u64;
            let frame_idx = self
                .inter_frame_counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if self.faults.corrupt_nth_inter_frame == Some(frame_idx) {
                corrupt_parcel(&mut parcel);
            }
            self.capture(dst, &parcel);
        }
        self.record(t0, EventKind::Send { dst, bytes, link });
        self.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                parcel,
                arrive_us,
            })
            .expect("receiver hung up");
    }

    fn capture(&self, dst: Rank, parcel: &Parcel) {
        let kind = if parcel.has_plain() {
            FrameKind::Plain
        } else if parcel.items.iter().all(|i| match i {
            Item::Sealed(s) => s.data.is_real(),
            Item::Plain(_) => false,
        }) && !parcel.items.is_empty()
        {
            FrameKind::Cipher
        } else {
            FrameKind::Phantom
        };
        let bytes = if self.capture_wire {
            let mut buf = Vec::with_capacity(parcel.wire_len());
            for item in &parcel.items {
                match item {
                    Item::Plain(c) => {
                        if c.data.is_real() {
                            buf.extend_from_slice(c.data.bytes());
                        }
                    }
                    Item::Sealed(s) => {
                        if s.data.is_real() {
                            buf.extend_from_slice(s.data.bytes());
                        }
                    }
                }
            }
            buf
        } else {
            Vec::new()
        };
        self.wiretap.capture(FrameRecord {
            src: self.rank,
            dst,
            kind,
            len: parcel.wire_len(),
            bytes,
        });
    }

    /// Receives the parcel tagged `tag` from `src`, blocking until it
    /// arrives. Advances the clock to the arrival time and counts one
    /// communication round.
    pub fn recv(&mut self, src: Rank, tag: u64) -> Parcel {
        let t0 = self.clock_us;
        let msg = self.wait_for(src, tag);
        self.clock_us = self.clock_us.max(msg.arrive_us);
        let bytes = msg.parcel.wire_len();
        // Receiving one's own self-send is a local hand-off, not a
        // communication round (mirrors the send-side SelfLoop exclusion).
        if msg.src != self.rank {
            self.metrics.comm_rounds += 1;
            self.metrics.bytes_recv += bytes as u64;
            self.metrics.payload_recv += msg.parcel.payload_len() as u64;
        }
        self.record(t0, EventKind::Recv { src, bytes });
        msg.parcel
    }

    fn wait_for(&mut self, src: Rank, tag: u64) -> Message {
        if let Some(queue) = self.pending.get_mut(&(src, tag)) {
            if let Some(msg) = queue.pop_front() {
                return msg;
            }
        }
        // The watchdog limit is an absolute deadline for this receive, not a
        // per-poll allowance: unrelated traffic draining through the channel
        // must not keep pushing the timeout out indefinitely.
        let deadline = self
            .recv_timeout
            .map(|limit| std::time::Instant::now() + limit);
        loop {
            let msg = match deadline {
                None => self.rx.recv().expect("all peers disconnected"),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                    match self.rx.recv_timeout(remaining) {
                        Ok(msg) => msg,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => panic!(
                            "rank {} waited {:?} for a message from rank {src} \
                             with tag {tag} that never arrived (deadlock or tag \
                             mismatch in the algorithm)",
                            self.rank,
                            self.recv_timeout.unwrap_or_default()
                        ),
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            panic!("all peers disconnected while receiving")
                        }
                    }
                }
            };
            if msg.tag == POISON_TAG {
                panic!("rank {} panicked; propagating", msg.src);
            }
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(msg);
        }
    }

    /// Send to `dst` and receive from `src` with the same tag — the classic
    /// exchange step of ring and recursive-doubling algorithms.
    pub fn sendrecv(&mut self, dst: Rank, src: Rank, tag: u64, parcel: Parcel) -> Parcel {
        self.send(dst, tag, parcel);
        self.recv(src, tag)
    }

    // ----- crypto ----------------------------------------------------------

    /// Encrypts a chunk: one encryption operation of `chunk.len()` bytes
    /// (`αe + βe·m` in the model).
    pub fn encrypt(&mut self, chunk: Chunk) -> Sealed {
        chunk.check();
        let t0 = self.clock_us;
        let plain_len = chunk.len();
        self.clock_us += self.model.crypto.enc_time(plain_len);
        self.record(t0, EventKind::Encrypt { bytes: plain_len });
        self.metrics.enc_rounds += 1;
        self.metrics.enc_bytes += plain_len as u64;
        let Chunk {
            origins,
            block_len,
            data,
        } = chunk;
        let data = match data {
            Data::Real(bytes) => {
                seal_aad_into(&origins, block_len, &mut self.aad_scratch);
                let mut wire = std::mem::take(&mut self.seal_scratch);
                eag_crypto::seal_message_into(
                    self.gcm,
                    &mut self.nonces,
                    &self.aad_scratch,
                    &bytes,
                    &mut wire,
                );
                // Recycle the consumed plaintext Vec as the next scratch:
                // after the first message of each size class, encryption
                // allocates nothing.
                self.seal_scratch = bytes;
                Data::Real(wire)
            }
            Data::Phantom(_) => Data::Phantom(plain_len + WIRE_OVERHEAD),
        };
        Sealed {
            origins,
            block_len,
            plain_len,
            data,
        }
    }

    /// Decrypts a sealed chunk: one decryption operation of `plain_len`
    /// bytes (`αd + βd·m`). Panics if authentication fails — an encrypted
    /// collective cannot proceed on forged data.
    pub fn decrypt(&mut self, sealed: Sealed) -> Chunk {
        let t0 = self.clock_us;
        self.clock_us += self.model.crypto.dec_time(sealed.plain_len);
        self.record(
            t0,
            EventKind::Decrypt {
                bytes: sealed.plain_len,
            },
        );
        self.metrics.dec_rounds += 1;
        self.metrics.dec_bytes += sealed.plain_len as u64;
        let Sealed {
            origins,
            block_len,
            plain_len,
            data,
        } = sealed;
        let data = match data {
            Data::Real(mut wire) => {
                seal_aad_into(&origins, block_len, &mut self.aad_scratch);
                eag_crypto::open_message_in_place(self.gcm, &self.aad_scratch, &mut wire).expect(
                    "GCM authentication failed: forged, corrupted, or relabeled ciphertext",
                );
                Data::Real(wire)
            }
            Data::Phantom(_) => Data::Phantom(plain_len),
        };
        let chunk = Chunk {
            origins,
            block_len,
            data,
        };
        chunk.check();
        chunk
    }

    // ----- shared memory ----------------------------------------------------

    /// Deposits `item` into this node's shared segment, charging a memory
    /// copy. Visible to siblings once the copy completes.
    pub fn shared_deposit(&mut self, key: SlotKey, item: Item) {
        let t0 = self.clock_us;
        let bytes = item.wire_len();
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
        self.shared[self.node()].deposit(key, item, self.clock_us);
    }

    /// Fetches the item in `key` from this node's shared segment, charging a
    /// memory copy and waiting (in virtual time) for the deposit.
    pub fn shared_fetch(&mut self, key: SlotKey) -> Item {
        let (item, ready_us) = self.shared[self.node()].fetch(key);
        self.clock_us = self.clock_us.max(ready_us);
        let bytes = item.wire_len();
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        item
    }

    /// Deposits without charging a copy: models producing data directly
    /// into the shared buffer (e.g. decrypting into it).
    pub fn shared_deposit_free(&mut self, key: SlotKey, item: Item) {
        self.shared[self.node()].deposit(key, item, self.clock_us);
    }

    /// Fetches without charging a copy: models reading the shared buffer in
    /// place (e.g. encrypting or decrypting straight out of it). Still waits
    /// (in virtual time) for the deposit to complete.
    pub fn shared_fetch_free(&mut self, key: SlotKey) -> Item {
        let (item, ready_us) = self.shared[self.node()].fetch(key);
        self.clock_us = self.clock_us.max(ready_us);
        item
    }

    /// Charges a pure memory copy of `bytes` (e.g. user-buffer placement)
    /// without touching the shared segment.
    pub fn charge_copy(&mut self, bytes: usize) {
        let t0 = self.clock_us;
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
    }

    /// Charges a strided (cache-unfriendly) memory copy of `bytes` — the
    /// per-block rank-order rearrangement of HS1/HS2 under cyclic mapping.
    pub fn charge_strided_copy(&mut self, bytes: usize) {
        let t0 = self.clock_us;
        self.clock_us += self.model.strided_copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
    }

    /// Node-local barrier synchronizing the virtual clocks of all processes
    /// on this node.
    pub fn node_barrier(&mut self) {
        let t0 = self.clock_us;
        self.clock_us = self.shared[self.node()].barrier(self.clock_us, self.model.barrier_us);
        self.record(t0, EventKind::Barrier);
    }
}

/// Flips one byte of the first real payload in `parcel` (tamper injection).
fn corrupt_parcel(parcel: &mut Parcel) {
    for item in &mut parcel.items {
        let data = match item {
            Item::Plain(c) => &mut c.data,
            Item::Sealed(s) => &mut s.data,
        };
        if let Data::Real(bytes) = data {
            if !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x80;
                return;
            }
        }
    }
}

/// The result of one [`run`].
pub struct RunReport<T> {
    /// Per-rank closure outputs, indexed by rank.
    pub outputs: Vec<T>,
    /// Collective latency: max over ranks of the final virtual clock, µs.
    pub latency_us: f64,
    /// Final virtual clock per rank, µs.
    pub clocks_us: Vec<f64>,
    /// Metrics per rank.
    pub metrics: Vec<Metrics>,
    /// The inter-node traffic recorder.
    pub wiretap: Arc<Wiretap>,
    /// Per-rank virtual-time traces (empty unless `WorldSpec::trace`).
    pub traces: Vec<Trace>,
}

impl<T> RunReport<T> {
    /// Component-wise maximum of the per-rank metrics (the critical path
    /// values the paper's Table II reports).
    pub fn max_metrics(&self) -> Metrics {
        Metrics::component_max(&self.metrics)
    }
}

/// Spawns one thread per rank, runs `f` on each, and collects the report.
///
/// A panic on any rank is broadcast to all ranks (poisoning channels and
/// shared segments) so the world shuts down instead of deadlocking, and the
/// original panic is re-raised here.
pub fn run<T, F>(spec: &WorldSpec, f: F) -> RunReport<T>
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    let p = spec.topology.p();
    let n_nodes = spec.topology.nodes();
    let model = &spec.profile.model;

    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let seed = match spec.mode {
        DataMode::Real { seed } => seed,
        DataMode::Phantom => 0,
    };
    let mut key_bytes = [0u8; 16];
    key_bytes[..8].copy_from_slice(&seed.to_le_bytes());
    key_bytes[8..].copy_from_slice(&(!seed).to_le_bytes());
    let gcm = AesGcm128::new(&Key::from_bytes(key_bytes));

    let nics: Vec<NodeNic> = (0..n_nodes)
        .map(|_| NodeNic::new(model.nic_bandwidth))
        .collect();
    let fabric = model.fabric.map(|fm| FabricState::new(fm, n_nodes));
    let shared: Vec<Arc<NodeShared>> = (0..n_nodes)
        .map(|node| Arc::new(NodeShared::new(spec.topology.ranks_on_node(node).len())))
        .collect();
    let wiretap = Arc::new(Wiretap::new());
    let frame_counter = std::sync::atomic::AtomicU64::new(0);

    let mut slots: Vec<Option<(T, f64, Metrics, Trace)>> = (0..p).map(|_| None).collect();

    {
        let senders = &senders;
        let nics = &nics;
        let fabric_ref = fabric.as_ref();
        let shared = &shared;
        let wiretap_ref = &*wiretap;
        let f = &f;
        let spec_ref = spec;
        let frame_counter_ref = &frame_counter;
        let gcm_ref = &gcm;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (rx, slot)) in receivers.iter_mut().zip(slots.iter_mut()).enumerate() {
                let rx = rx.take().expect("receiver already taken");
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(1 << 20)
                    .spawn_scoped(scope, move || {
                        let mut ctx = ProcCtx {
                            rank,
                            topo: &spec_ref.topology,
                            model: &spec_ref.profile.model,
                            mvapich_switch_bytes: spec_ref.profile.mvapich_switch_bytes,
                            mode: spec_ref.mode,
                            clock_us: 0.0,
                            metrics: Metrics::default(),
                            senders,
                            rx,
                            pending: HashMap::new(),
                            gcm: gcm_ref,
                            nonces: NonceSource::seeded(
                                seed ^ (rank as u64).wrapping_mul(0x0100_0000_01B3),
                            ),
                            seal_scratch: Vec::new(),
                            aad_scratch: Vec::new(),
                            nics,
                            fabric: fabric_ref,
                            wiretap: wiretap_ref,
                            shared,
                            nic_contention: spec_ref.nic_contention,
                            capture_wire: spec_ref.capture_wire,
                            epoch: 0,
                            recv_timeout: spec_ref.recv_timeout,
                            trace: spec_ref.trace.then(Vec::new),
                            faults: spec_ref.faults,
                            inter_frame_counter: frame_counter_ref,
                        };
                        let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                        match result {
                            Ok(out) => {
                                *slot = Some((
                                    out,
                                    ctx.clock_us,
                                    ctx.metrics,
                                    ctx.trace.take().unwrap_or_default(),
                                ));
                            }
                            Err(payload) => {
                                // Wake everyone up before propagating.
                                for seg in shared.iter() {
                                    seg.poison();
                                }
                                for tx in senders.iter() {
                                    let _ = tx.send(Message {
                                        src: rank,
                                        tag: POISON_TAG,
                                        parcel: Parcel::new(),
                                        arrive_us: 0.0,
                                    });
                                }
                                resume_unwind(payload);
                            }
                        }
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            let mut first_panic = None;
            for handle in handles {
                if let Err(e) = handle.join() {
                    first_panic.get_or_insert(e);
                }
            }
            if let Some(e) = first_panic {
                resume_unwind(e);
            }
        });
    }

    let mut outputs = Vec::with_capacity(p);
    let mut clocks_us = Vec::with_capacity(p);
    let mut metrics = Vec::with_capacity(p);
    let mut traces = Vec::with_capacity(p);
    for slot in slots {
        let (out, clock, m, trace) = slot.expect("rank produced no output");
        outputs.push(out);
        clocks_us.push(clock);
        metrics.push(m);
        traces.push(trace);
    }
    let latency_us = clocks_us.iter().cloned().fold(0.0f64, f64::max);
    RunReport {
        outputs,
        latency_us,
        clocks_us,
        metrics,
        wiretap,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eag_netsim::{profile, Mapping};

    fn spec(p: usize, nodes: usize) -> WorldSpec {
        WorldSpec::new(
            Topology::new(p, nodes, Mapping::Block),
            profile::unit(),
            DataMode::Real { seed: 1 },
        )
    }

    #[test]
    fn ranks_see_their_identity() {
        let report = run(&spec(4, 2), |ctx| (ctx.rank(), ctx.node()));
        assert_eq!(report.outputs, vec![(0, 0), (1, 0), (2, 1), (3, 1)]);
    }

    #[test]
    fn simple_exchange_moves_data_and_clock() {
        // Rank 0 sends 10 bytes to rank 1 (intra-node in a 2x1 world).
        let report = run(&spec(2, 1), |ctx| {
            if ctx.rank() == 0 {
                let chunk = ctx.my_block(10);
                ctx.send(1, 1, Parcel::one(Item::Plain(chunk)));
                Vec::new()
            } else {
                let parcel = ctx.recv(0, 1);
                parcel.items[0].clone().into_plain().data.bytes().to_vec()
            }
        });
        assert_eq!(report.outputs[1], crate::payload::pattern_block(1, 0, 10));
        // Unit model: sender occupied 10 B / 1 B/µs = 10 µs; arrival 11 µs.
        assert_eq!(report.clocks_us[0], 10.0);
        assert_eq!(report.clocks_us[1], 11.0);
        assert_eq!(report.latency_us, 11.0);
        assert_eq!(report.metrics[1].comm_rounds, 1);
        assert_eq!(report.metrics[0].bytes_sent, 10);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_real_mode() {
        let report = run(&spec(1, 1), |ctx| {
            let chunk = ctx.my_block(100);
            let expected = chunk.data.bytes().to_vec();
            let sealed = ctx.encrypt(chunk);
            assert_eq!(sealed.wire_len(), 128);
            let back = ctx.decrypt(sealed);
            (expected, back.data.bytes().to_vec())
        });
        let (expected, got) = &report.outputs[0];
        assert_eq!(expected, got);
        // Unit crypto: (1 + 100) each way.
        assert_eq!(report.latency_us, 202.0);
        assert_eq!(report.metrics[0].enc_rounds, 1);
        assert_eq!(report.metrics[0].dec_bytes, 100);
    }

    #[test]
    fn phantom_mode_tracks_lengths() {
        let mut s = spec(2, 2);
        s.mode = DataMode::Phantom;
        let report = run(&s, |ctx| {
            if ctx.rank() == 0 {
                let sealed = ctx.encrypt(ctx.my_block(50));
                ctx.send(1, 7, Parcel::one(Item::Sealed(sealed)));
                0
            } else {
                let parcel = ctx.recv(0, 7);
                let sealed = parcel.items[0].clone().into_sealed();
                let chunk = ctx.decrypt(sealed);
                chunk.data.len()
            }
        });
        assert_eq!(report.outputs[1], 50);
        assert_eq!(report.wiretap.frame_count(), 1);
        assert_eq!(report.wiretap.frames()[0].len, 78);
    }

    #[test]
    fn inter_node_frames_are_captured() {
        let mut s = spec(2, 2);
        s.capture_wire = true;
        let report = run(&s, |ctx| {
            if ctx.rank() == 0 {
                let sealed = ctx.encrypt(ctx.my_block(16));
                ctx.send(1, 3, Parcel::one(Item::Sealed(sealed)));
            } else {
                let _ = ctx.recv(0, 3);
            }
        });
        assert_eq!(report.wiretap.frame_count(), 1);
        let frames = report.wiretap.frames();
        assert_eq!(frames[0].kind, FrameKind::Cipher);
        assert_eq!(frames[0].bytes.len(), 16 + WIRE_OVERHEAD);
        // The plaintext pattern must not appear in the captured frame.
        let pt = crate::payload::pattern_block(1, 0, 16);
        assert!(!report.wiretap.contains(&pt));
    }

    #[test]
    fn intra_node_frames_are_not_captured() {
        let report = run(&spec(2, 1), |ctx| {
            if ctx.rank() == 0 {
                let chunk = ctx.my_block(16);
                ctx.send(1, 3, Parcel::one(Item::Plain(chunk)));
            } else {
                let _ = ctx.recv(0, 3);
            }
        });
        assert_eq!(report.wiretap.frame_count(), 0);
    }

    #[test]
    fn sendrecv_pairs_exchange() {
        let report = run(&spec(2, 1), |ctx| {
            let peer = 1 - ctx.rank();
            let mine = ctx.my_block(8);
            let got = ctx.sendrecv(peer, peer, 5, Parcel::one(Item::Plain(mine)));
            got.items[0].origins()[0]
        });
        assert_eq!(report.outputs, vec![1, 0]);
    }

    #[test]
    fn shared_memory_deposit_fetch_and_barrier() {
        let report = run(&spec(2, 1), |ctx| {
            if (ctx.rank()) == 0 {
                let item = Item::Plain(ctx.my_block(4));
                ctx.shared_deposit((1, 0), item);
            }
            ctx.node_barrier();
            let got = ctx.shared_fetch((1, 0));
            got.origins()[0]
        });
        assert_eq!(report.outputs, vec![0, 0]);
        assert!(report.metrics[1].copies >= 1);
    }

    #[test]
    fn recv_watchdog_converts_hangs_into_panics() {
        let mut s = spec(2, 1);
        s.recv_timeout = Some(std::time::Duration::from_millis(200));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&s, |ctx| {
                if ctx.rank() == 0 {
                    // Wrong tag: rank 0 waits for a message that never comes.
                    let _ = ctx.recv(1, 12345);
                }
                // Rank 1 exits immediately.
            })
        }));
        assert!(result.is_err(), "hang was not detected");
    }

    #[test]
    fn panic_on_one_rank_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&spec(4, 2), |ctx| {
                if ctx.rank() == 2 {
                    panic!("boom on rank 2");
                }
                // Everyone else blocks on a message that never comes.
                let _ = ctx.recv(2, 99);
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn self_send_is_free_and_delivered() {
        let report = run(&spec(2, 1), |ctx| {
            if ctx.rank() == 0 {
                let chunk = ctx.my_block(64);
                ctx.send(0, 42, Parcel::one(Item::Plain(chunk)));
                let got = ctx.recv(0, 42);
                (got.items[0].origins()[0], ctx.clock_us())
            } else {
                (1, 0.0)
            }
        });
        let (origin, clock) = report.outputs[0];
        assert_eq!(origin, 0);
        // Self-loop link: no communication cost charged.
        assert_eq!(clock, 0.0);
    }

    #[test]
    fn self_loop_traffic_is_excluded_from_metrics() {
        // A rank handing a parcel to itself is a local buffer move; none of
        // the Table II communication columns may count it.
        let report = run(&spec(2, 1), |ctx| {
            if ctx.rank() == 0 {
                let chunk = ctx.my_block(64);
                ctx.send(0, 42, Parcel::one(Item::Plain(chunk)));
                let _ = ctx.recv(0, 42);
            }
        });
        let m = report.metrics[0];
        assert_eq!(m.bytes_sent, 0, "self-send must not count bytes_sent");
        assert_eq!(m.payload_sent, 0, "self-send must not count payload_sent");
        assert_eq!(m.comm_rounds, 0, "self-receive must not count a round");
        assert_eq!(m.bytes_recv, 0, "self-receive must not count bytes_recv");
        assert_eq!(
            m.payload_recv, 0,
            "self-receive must not count payload_recv"
        );
    }

    #[test]
    fn mixed_self_and_peer_traffic_counts_only_the_peer_leg() {
        let report = run(&spec(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(0, 1, Parcel::one(Item::Plain(ctx.my_block(32))));
                ctx.send(1, 2, Parcel::one(Item::Plain(ctx.my_block(10))));
                let _ = ctx.recv(0, 1);
            } else {
                let _ = ctx.recv(0, 2);
            }
        });
        // Sender: only the 10-byte intra-node leg counts.
        assert_eq!(report.metrics[0].bytes_sent, 10);
        assert_eq!(report.metrics[0].comm_rounds, 0);
        // Receiver: one genuine round.
        assert_eq!(report.metrics[1].comm_rounds, 1);
        assert_eq!(report.metrics[1].bytes_recv, 10);
    }

    #[test]
    fn recv_watchdog_deadline_is_absolute_not_per_message() {
        // Rank 1 keeps feeding rank 0 messages with an unrelated tag at a
        // cadence shorter than the timeout. Under the buggy per-poll
        // interpretation each arrival restarts the clock and the watchdog
        // fires only long after the feeder stops; with an absolute deadline
        // it fires once the limit elapses regardless of traffic.
        let mut s = spec(2, 1);
        s.recv_timeout = Some(std::time::Duration::from_millis(200));
        let started = std::time::Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&s, |ctx| {
                if ctx.rank() == 0 {
                    // Waits for a tag that never arrives.
                    let _ = ctx.recv(1, 999);
                } else {
                    for _ in 0..8 {
                        std::thread::sleep(std::time::Duration::from_millis(60));
                        ctx.send(0, 1, Parcel::one(Item::Plain(ctx.my_block(1))));
                    }
                }
            })
        }));
        let elapsed = started.elapsed();
        assert!(result.is_err(), "watchdog did not fire");
        // 8 feeds x 60 ms keep a per-poll timer alive past 480 ms; the
        // absolute deadline panics at ~200 ms. Generous margin for CI noise.
        assert!(
            elapsed < std::time::Duration::from_millis(450),
            "watchdog took {elapsed:?}; deadline is being reset per message"
        );
    }

    #[test]
    fn reset_accounting_clears_clock_and_metrics() {
        let report = run(&spec(2, 1), |ctx| {
            let sealed = ctx.encrypt(ctx.my_block(100));
            let _ = ctx.decrypt(sealed);
            assert!(ctx.clock_us() > 0.0);
            assert!(ctx.metrics().enc_rounds > 0);
            ctx.reset_accounting();
            (ctx.clock_us(), ctx.metrics())
        });
        for (clock, metrics) in report.outputs {
            assert_eq!(clock, 0.0);
            assert_eq!(metrics, Metrics::default());
        }
    }

    #[test]
    fn charge_helpers_accumulate_copies() {
        let report = run(&spec(1, 1), |ctx| {
            ctx.charge_copy(1000);
            ctx.charge_strided_copy(1000);
            ctx.metrics()
        });
        let m = report.outputs[0];
        assert_eq!(m.copies, 2);
        assert_eq!(m.copy_bytes, 2000);
    }

    #[test]
    fn phantom_fault_injection_is_inert() {
        // FaultPlan only corrupts real bytes; a phantom run must complete.
        let mut s = spec(2, 2);
        s.mode = DataMode::Phantom;
        s.faults = FaultPlan {
            corrupt_nth_inter_frame: Some(0),
        };
        let report = run(&s, |ctx| {
            if ctx.rank() == 0 {
                let sealed = ctx.encrypt(ctx.my_block(32));
                ctx.send(1, 1, Parcel::one(Item::Sealed(sealed)));
            } else {
                let got = ctx.recv(0, 1);
                let _ = ctx.decrypt(got.items[0].clone().into_sealed());
            }
        });
        assert_eq!(report.outputs.len(), 2);
    }

    #[test]
    fn epochs_scope_slot_keys() {
        let report = run(&spec(2, 1), |ctx| {
            // Same (base, idx) in two epochs must address distinct slots.
            ctx.begin_collective();
            let k1 = ctx.slot(7, 0);
            ctx.begin_collective();
            let k2 = ctx.slot(7, 0);
            (k1, k2)
        });
        for (k1, k2) in report.outputs {
            assert_ne!(k1, k2);
            assert_eq!(k1.1, k2.1);
        }
    }

    #[test]
    fn nic_contention_serializes_when_enabled() {
        // Two ranks on node 0 both send 1000 B to node 1. Unit model has
        // infinite NIC bandwidth, so use a custom profile.
        let mut profile = profile::unit();
        profile.model.nic_bandwidth = 1.0; // 1 B/µs, same as stream rate
        let spec = WorldSpec {
            topology: Topology::new(4, 2, Mapping::Block),
            profile,
            mode: DataMode::Phantom,
            nic_contention: true,
            capture_wire: false,
            trace: false,
            faults: FaultPlan::default(),
            recv_timeout: Some(std::time::Duration::from_secs(300)),
        };
        let report = run(&spec, |ctx| match ctx.rank() {
            0 | 1 => {
                let chunk = ctx.my_block(1000);
                ctx.send(ctx.rank() + 2, 1, Parcel::one(Item::Plain(chunk)));
            }
            r => {
                let _ = ctx.recv(r - 2, 1);
            }
        });
        // One of the receivers sees its message delayed behind the other's
        // NIC occupancy: latencies 1001 and 2001.
        let mut recv_clocks = [report.clocks_us[2], report.clocks_us[3]];
        recv_clocks.sort_by(f64::total_cmp);
        assert_eq!(recv_clocks[0], 1001.0);
        assert_eq!(recv_clocks[1], 2001.0);
    }
}
