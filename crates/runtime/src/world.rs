//! The process world: runs one state machine per MPI-style rank on the
//! event-driven [`crate::sched::Scheduler`] and gives each a
//! [`ProcCtx`] with point-to-point messaging, shared memory, crypto, and a
//! virtual clock priced by the cost model.
//!
//! Each rank's state machine keeps its stack on a (cheap, almost always
//! parked) OS thread, but whether it *runs* is a scheduler decision: at
//! most [`WorldSpec::workers`] ranks execute concurrently, messages land
//! in per-rank mailboxes, and a rank with nothing to do parks until mail,
//! a world event (departure, abort, poison), or its earliest timer wakes
//! it. No rank ever spins a poll loop, which is what lets real-mode
//! worlds of p=256–1024 run on one machine.
//!
//! # Reliable transport (chaos mode)
//!
//! When the spec's [`FaultPlan`] is enabled, every point-to-point send is
//! framed for recovery: frames carry a per-`(dst, tag)` stream sequence
//! number and a transport checksum, senders keep a retransmit log, and
//! receivers detect loss (receive timeout), corruption (checksum or per-hop
//! GCM verification), duplication and reordering (sequence numbers), and
//! recover by NACKing the sender, which replays the affected frames from its
//! log. Ranks that finish while chaos is armed *linger* to service late
//! NACKs until every rank has finished. Unrecoverable situations raise a
//! structured [`CollectiveError`] instead of hanging: a receive that
//! exhausts its retry budget or wall-clock watchdog fails with
//! `Timeout`, a receive blocked on a rank that already exited fails with
//! `DeadPeer`, and a GCM authentication failure at a consumer fails with
//! `AuthFailure`.
//!
//! Recovery happens at the wall-clock level and is deliberately invisible to
//! the virtual-time cost model: retransmissions do not advance clocks and
//! their bytes are accounted separately (`Metrics::retransmit_bytes`), so
//! the paper's Table II traffic columns stay fault-independent.
//!
//! # Crash tolerance
//!
//! A [`FaultPlan`] may additionally carry a schedule of seeded
//! [`eag_netsim::Crash`] events, each killing one rank's thread at a
//! chosen send step of a chosen membership epoch — including steps inside
//! the recovery machinery itself (agreement rounds, degraded re-runs).
//! The world does not treat these as poisoning panics: the runner records
//! each death (a *crash notice* for soft crashes, or only a silent
//! scheduler departure for hard crashes, which survivors suspect after a
//! grace period — see [`WorldSpec::suspect_after`]), wakes any same-node
//! sibling blocked on the shared segment, and keeps the world alive. A
//! receive blocked on a dead peer resolves through the failure detector
//! with a recoverable `Crash { rank }` cause instead of waiting out its
//! deadline; [`ProcCtx::try_recv`] surfaces the cause as a value so
//! survivor-agreement protocols can probe dead ranks without unwinding.
//! Collective epochs are folded into every wire tag, so frames of an
//! abandoned attempt can never alias the agreement rounds or the degraded
//! re-runs that follow it, and abandonments are serial-scoped so a stale
//! abort from one membership epoch never bleeds into a later attempt
//! (see `recover_collective` in `eag-core`). Use
//! [`run_crashable`]/[`try_run_crashable`] to harvest per-rank outputs with
//! the crashed ranks marked instead of panicking on the missing output.

use crate::error::{CollectiveError, FailureCause};
use crate::metrics::Metrics;
use crate::payload::{Chunk, Data, Item, Parcel, Sealed};
use crate::sched::{Departure, RunGate, Scheduler};
use crate::shared::{NodeShared, SlotKey};
use crate::trace::{Event, EventKind, Trace};
use eag_crypto::{Aead, CipherSuite, Key, NonceSource, WIRE_OVERHEAD};
use eag_netsim::fabric::FabricState;
use eag_netsim::nic::NodeNic;
use eag_netsim::{
    ClusterProfile, CostModel, FaultKind, FaultPlan, FrameKind, FrameRecord, LinkClass, Rank,
    Topology, Wiretap,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether payloads carry real bytes or only lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Real bytes; real AES-128-GCM. Input blocks are the deterministic
    /// pattern `pattern_block(seed, rank, len)`.
    Real {
        /// Seed for the per-rank input patterns.
        seed: u64,
    },
    /// Length-only payloads; crypto and communication are priced but not
    /// performed. Needed for cluster-scale simulations.
    Phantom,
}

/// How a blocking receive retries before giving up (chaos mode).
///
/// Each receive gets `max_attempts` rounds; a round that elapses without the
/// expected frame arriving sends a NACK to the peer and starts the next
/// round with its timeout scaled by `backoff`. Exhausting the budget raises
/// a typed `Timeout` [`CollectiveError`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Wall-clock budget of the first receive round.
    pub attempt_timeout: Duration,
    /// Rounds before the receive fails with a typed timeout.
    pub max_attempts: u32,
    /// Multiplier applied to the round timeout after each round (≥ 1.0).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempt_timeout: Duration::from_millis(50),
            max_attempts: 8,
            backoff: 1.6,
        }
    }
}

/// Configuration of one run.
#[derive(Clone)]
pub struct WorldSpec {
    /// Rank-to-node topology (p, N, mapping).
    pub topology: Topology,
    /// Cost model + metadata.
    pub profile: ClusterProfile,
    /// Real bytes or phantom lengths.
    pub mode: DataMode,
    /// The AEAD cipher suite every rank seals/opens under (real mode; in
    /// phantom mode it is priced but not performed). All suites share the
    /// 28-byte wire framing, so traffic metrics are suite-invariant.
    pub suite: CipherSuite,
    /// Serialize concurrent inter-node streams through each node's NIC.
    /// Disable for fully deterministic virtual times.
    pub nic_contention: bool,
    /// Store the bytes of inter-node frames in the wiretap (real mode only;
    /// needed by the security tests, costs memory).
    pub capture_wire: bool,
    /// Record per-rank virtual-time event traces.
    pub trace: bool,
    /// Deterministic fault injection. When the plan is
    /// [enabled](FaultPlan::enabled), the reliability framing described in
    /// the module docs is armed on every rank.
    pub faults: FaultPlan,
    /// Receive retry/backoff budget used while the fault plan is enabled.
    pub retry: RetryPolicy,
    /// Abort a blocking receive after this much *wall-clock* time with a
    /// typed `Timeout` error instead of hanging. `None` waits forever
    /// (dead peers are still detected and fail fast). Also bounds the
    /// post-collective linger of each rank in chaos mode.
    pub recv_timeout: Option<Duration>,
    /// Grace period of the failure detector for *hard* crashes, which
    /// leave no exit notice: a peer that departed the scheduler without
    /// finishing and has stayed silent this long is suspected crashed.
    /// Soft crashes are detected immediately from the runner's notice.
    /// Suspicion keys off the scheduler's departure records, never off
    /// wall-clock thread liveness, so a rank that is merely busy or
    /// descheduled (an oversubscribed world) cannot be falsely suspected
    /// however small the threshold. `None` (the default) disables
    /// suspicion.
    pub suspect_after: Option<Duration>,
    /// Width of the scheduler's worker gate: how many rank state machines
    /// may run concurrently. Parked and blocked ranks cost no worker.
    /// `Some(w)` builds a *private* gate of `w` permits for this world
    /// (cooperative-interleave tests rely on this). `None` (the default)
    /// shares the [process-global gate](RunGate::global), so concurrent
    /// worlds are together bounded by the host's parallelism instead of
    /// each bringing its own host-wide pool.
    pub workers: Option<usize>,
    /// Explicit run-permit gate, overriding both [`WorldSpec::workers`]
    /// and the process-global default. The session layer hands every
    /// tenant world the same `Arc` so total running ranks across all live
    /// sessions never exceed one configured width.
    pub gate: Option<Arc<RunGate>>,
    /// Physical per-node NICs shared with other worlds, one per logical
    /// node of this world (entries may alias the same physical NIC).
    /// `None` builds private NICs. Shared ledgers are scoped by
    /// [`WorldSpec::session_id`], so retiring one session's reservations
    /// leaves the others' intact.
    pub shared_nics: Option<Vec<Arc<NodeNic>>>,
    /// Owner id stamped on this world's NIC reservations (and surfaced in
    /// diagnostics). Distinct concurrent sessions sharing NICs must use
    /// distinct ids; the standalone default is 0.
    pub session_id: u64,
    /// Explicit AEAD key for real-mode sealing, e.g. a per-session key
    /// derived from a service master key. `None` (the standalone default)
    /// derives the key from the data seed as before.
    pub key: Option<Key>,
}

impl WorldSpec {
    /// A spec with contention on and wire capture off.
    pub fn new(topology: Topology, profile: ClusterProfile, mode: DataMode) -> Self {
        WorldSpec {
            topology,
            profile,
            mode,
            suite: CipherSuite::AesGcm128,
            nic_contention: true,
            capture_wire: false,
            trace: false,
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            recv_timeout: Some(Duration::from_secs(300)),
            suspect_after: None,
            workers: None,
            gate: None,
            shared_nics: None,
            session_id: 0,
            key: None,
        }
    }
}

/// Wire tags carry the collective epoch in their upper bits so that frames
/// of an abandoned attempt can never be mistaken for frames of the
/// agreement round or the degraded re-run that reuse the same logical tag
/// bases in later epochs. Communicating ranks always agree on the epoch
/// (every collective bumps it once on every rank), so the mapping is
/// transparent to the algorithms.
const EPOCH_SHIFT: u32 = 40;
const LOGICAL_TAG_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

/// Strips the epoch bits back off a wire tag (for errors and traces).
fn logical_tag(wire_tag: u64) -> u64 {
    wire_tag & LOGICAL_TAG_MASK
}

/// Panic payload of an injected crash. Deliberately *not* a
/// [`CollectiveError`]: the runner intercepts it and records the death
/// instead of poisoning the world. Carries the hardness of the death so
/// the runner needs no fault-plan lookup (multi-crash schedules can kill
/// the same rank list in different ways).
struct RankCrash {
    hard: bool,
}

/// Associated data binding a sealed chunk to its routing metadata. The
/// origins list and block length travel *outside* the ciphertext (receivers
/// need them to route and split), so an active adversary could otherwise
/// swap the metadata of two same-length ciphertexts and have blocks placed
/// under the wrong ranks without failing authentication. Deriving the AAD
/// from the metadata makes any such swap a GCM tag mismatch.
fn seal_aad_into(origins: &[Rank], block_len: usize, aad: &mut Vec<u8>) {
    aad.clear();
    aad.reserve(8 + 8 * origins.len() + 8);
    aad.extend_from_slice(&(origins.len() as u64).to_le_bytes());
    for &o in origins {
        aad.extend_from_slice(&(o as u64).to_le_bytes());
    }
    aad.extend_from_slice(&(block_len as u64).to_le_bytes());
}

/// What travels on a channel: a data frame with reliability framing, one of
/// the two recovery control frames, or the poison marker that propagates a
/// panic.
#[derive(Clone)]
enum Wire {
    /// An application frame. `seq` numbers the `(src, tag)` stream (always 0
    /// outside chaos mode); `checksum` is the transport-level integrity
    /// check (`None` outside chaos mode).
    Data {
        tag: u64,
        seq: u64,
        checksum: Option<u64>,
        parcel: Parcel,
    },
    /// "Retransmit everything on `tag` from `seq` onward."
    Nack { tag: u64, seq: u64 },
    /// "I have nothing logged for `tag`" — the NACKed sender will never
    /// produce the frame; lets the receiver fail fast with `DeadPeer`.
    NackMiss { tag: u64 },
    /// The sender panicked; unwind.
    Poison,
}

#[derive(Clone)]
struct Message {
    src: Rank,
    arrive_us: f64,
    wire: Wire,
}

/// One logged transmission, kept for NACK-triggered replay. The parcel is
/// the *pre-fault* clone: retransmissions are always clean.
struct SentRecord {
    tag: u64,
    seq: u64,
    attempts: u32,
    parcel: Parcel,
}

/// Everything a rank needs during a collective: identity, messaging, shared
/// memory, crypto, clock, and metrics.
pub struct ProcCtx<'w> {
    rank: Rank,
    topo: &'w Topology,
    model: &'w CostModel,
    mvapich_switch_bytes: usize,
    mode: DataMode,
    clock_us: f64,
    metrics: Metrics,
    sched: &'w Scheduler<Message>,
    /// Reused drain buffer for mailbox batches (allocation-free receives).
    inbox_scratch: Vec<Message>,
    /// Accepted, in-order frames awaiting a matching `recv`, with their
    /// virtual arrival times.
    pending: HashMap<(Rank, u64), VecDeque<(Parcel, f64)>>,
    /// Next sequence number per outgoing `(dst, tag)` stream (chaos mode).
    next_seq: HashMap<(Rank, u64), u64>,
    /// Next expected sequence number per incoming `(src, tag)` stream.
    expected: HashMap<(Rank, u64), u64>,
    /// Out-of-order frames buffered until the gap before them fills.
    ooo: HashMap<(Rank, u64), BTreeMap<u64, (Parcel, f64)>>,
    /// Retransmit log per destination (chaos mode only; grows with the
    /// collective — bounded by the run, not pruned).
    sent_log: HashMap<Rank, Vec<SentRecord>>,
    /// Frames held back by an injected `Reorder` fault; released after the
    /// next send (or when this rank blocks or finishes).
    reorder_limbo: Vec<(Rank, Message)>,
    aead: &'w dyn Aead,
    nonces: NonceSource,
    /// Reusable AAD buffer (the routing-metadata binding is rebuilt per
    /// chunk but never needs a fresh allocation).
    aad_scratch: Vec<u8>,
    nics: &'w [Arc<NodeNic>],
    /// Owner id stamped on shared-NIC reservations (see
    /// [`WorldSpec::session_id`]).
    session_id: u64,
    fabric: Option<&'w FabricState>,
    wiretap: &'w Wiretap,
    shared: &'w [Arc<NodeShared>],
    nic_contention: bool,
    capture_wire: bool,
    epoch: u64,
    recv_timeout: Option<Duration>,
    trace: Option<Trace>,
    faults: &'w FaultPlan,
    retry: RetryPolicy,
    /// Cached `faults.enabled()`: reliability framing armed.
    chaos: bool,
    /// Current collective phase, stamped into [`CollectiveError`]s.
    phase: &'static str,
    inter_frame_counter: &'w AtomicU64,
    finished: &'w [AtomicBool],
    /// Ranks that have left the world for any reason — clean completion or
    /// crash. Drives linger termination and the `Finished` broadcast.
    departed_count: &'w AtomicUsize,
    /// Crash notices: set by the runner when a rank dies softly (hard
    /// crashes leave the flag clear and are only caught by heartbeats).
    crashed: &'w [AtomicBool],
    /// Per-rank abandonment serials: the attempt serial the rank most
    /// recently abandoned (0 = never; set by the rank itself via
    /// [`ProcCtx::abort_attempt`]). Receives are attempt-scoped: a peer
    /// counts as aborted only if its abandoned serial reaches this rank's
    /// current serial, so stale abandonments from earlier membership
    /// epochs never leak into later attempts.
    aborted: &'w [AtomicU64],
    /// Per-rank abort blame: the rank + 1 whose crash triggered that
    /// rank's most recent abandonment (0 = none). Lets a cascaded receive
    /// failure name the *new* crash of the current epoch rather than a
    /// stale world-first notice.
    abort_blame: &'w [AtomicUsize],
    /// First crashed rank + 1 (0 = none). Publish-before-flag ordering
    /// anchor for soft-crash notices and hard-crash suspicions.
    crash_notice: &'w AtomicUsize,
    suspect_after: Option<Duration>,
    /// Count of this rank's peer-bound send steps since it entered the
    /// current membership epoch (the crash trigger).
    send_steps: u64,
    /// The membership epoch crash events arm against: 0 during the
    /// initial optimistic attempt, `e ≥ 1` during the e-th recovery
    /// iteration. Advanced by [`ProcCtx::enter_epoch`].
    membership_epoch: u64,
    /// Serial number of the current (or most recent) recoverable attempt,
    /// bumped by every [`ProcCtx::begin_attempt`]. Attempts are
    /// protocol-lockstep across ranks, so equal serials name the same
    /// attempt world-wide.
    attempt_serial: u64,
    /// Whether receives are currently scoped to a recoverable attempt.
    attempt_active: bool,
}

impl<'w> ProcCtx<'w> {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of processes p.
    pub fn p(&self) -> usize {
        self.topo.p()
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The node hosting this rank.
    pub fn node(&self) -> usize {
        self.topo.node_of(self.rank)
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        self.model
    }

    /// Message size at which the modeled MVAPICH baseline switches RD→Ring.
    pub fn mvapich_switch_bytes(&self) -> usize {
        self.mvapich_switch_bytes
    }

    /// The data mode of this run.
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    /// True when this world has a fault plan armed (chaos mode). Worlds
    /// without one cannot inject crashes, so crash-tolerant wrappers may
    /// skip their agreement traffic entirely.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos
    }

    /// Current virtual time in µs.
    pub fn clock_us(&self) -> f64 {
        self.clock_us
    }

    /// Metrics accumulated so far. The data-plane probe counters
    /// (`memcpy_bytes`, `buf_allocs`) are folded in from this rank thread's
    /// [`eag_rope::probe`] at read time, so they cover the same window as
    /// the rest of the metrics (since world start or the last
    /// [`ProcCtx::reset_accounting`]).
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics;
        let probe = eag_rope::probe::snapshot();
        m.memcpy_bytes += probe.copied_bytes;
        m.buf_allocs += probe.buffers;
        m
    }

    /// Resets clock and metrics (between repetitions inside one world).
    pub fn reset_accounting(&mut self) {
        self.clock_us = 0.0;
        self.metrics = Metrics::default();
        eag_rope::probe::reset();
    }

    /// Names the collective phase now in force; structured failures raised
    /// after this call carry the name (e.g. the algorithm being run).
    pub fn set_phase(&mut self, phase: &'static str) {
        self.phase = phase;
    }

    /// Raises a structured, rank-attributed failure as a panic payload; the
    /// poison protocol unwinds the remaining ranks and
    /// [`try_run`] surfaces the error to the caller.
    fn fail(&self, cause: FailureCause) -> ! {
        panic_any(CollectiveError {
            rank: self.rank,
            phase: self.phase,
            cause,
        })
    }

    /// Starts a new collective epoch. Every collective invocation must call
    /// this once on every rank so that shared-memory slot keys (and any
    /// other epoch-scoped state) never collide with a previous invocation
    /// in the same world.
    pub fn begin_collective(&mut self) {
        self.epoch += 1;
    }

    /// A shared-memory slot key scoped to the current collective epoch.
    pub fn slot(&self, base: u64, idx: usize) -> SlotKey {
        debug_assert!(base < 1 << 32, "slot base must fit below the epoch bits");
        (base | (self.epoch << 32), idx)
    }

    /// Folds the current collective epoch into a logical tag, yielding the
    /// tag that actually travels on the wire (and keys every reliability
    /// structure). Frames of different epochs can never alias.
    fn wire_tag(&self, tag: u64) -> u64 {
        debug_assert!(tag <= LOGICAL_TAG_MASK, "tag collides with epoch bits");
        tag | (self.epoch << EPOCH_SHIFT)
    }

    /// Failure-detector verdict for the peer a receive is blocked on:
    /// `Some(rank)` when the peer can never satisfy the receive because
    /// `rank` crashed — the peer itself (crash notice or suspected silent
    /// departure), or, for attempt-scoped receives from a peer that
    /// abandoned the attempt, the crash that triggered the abandonment.
    fn peer_dead(&self, src: Rank) -> Option<Rank> {
        if src == self.rank {
            return None;
        }
        if self.crashed[src].load(Ordering::SeqCst) {
            return Some(src);
        }
        if self.attempt_active && self.aborted[src].load(Ordering::SeqCst) >= self.attempt_serial {
            // The peer abandoned this attempt (or a later one): it will
            // never send the awaited frame. Blame the crash that made it
            // abandon — published before the serial, so it is visible here.
            let blame = self.abort_blame[src].load(Ordering::SeqCst);
            return Some(if blame > 0 { blame - 1 } else { src });
        }
        // Hard crashes leave no notice, but the scheduler still records the
        // departure (the runner observes every exit — the simulation
        // analogue of a node's OS seeing the process die). Suspicion means
        // "departed without finishing and stayed silent past the grace
        // period". A live rank that is merely busy or descheduled has not
        // departed and therefore can never be suspected, no matter how
        // oversubscribed the world.
        if let Some(limit) = self.suspect_after {
            if self.chaos && !self.finished[src].load(Ordering::SeqCst) {
                if let Some(at) = self.sched.hard_departed_at(src) {
                    if at.elapsed() >= limit {
                        // Publish the suspicion so cascade aborts triggered
                        // by it attribute their failure to this rank.
                        let _ = self.crash_notice.compare_exchange(
                            0,
                            src + 1,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        return Some(src);
                    }
                }
            }
        }
        None
    }

    /// The instant at which [`Self::peer_dead`] will start suspecting
    /// `src`, if a suspicion clock is running — a park deadline, so the
    /// detector fires on time instead of on the next unrelated wake.
    fn suspect_deadline(&self, src: Rank) -> Option<Instant> {
        let limit = self.suspect_after?;
        if !self.chaos || src == self.rank || self.finished[src].load(Ordering::SeqCst) {
            return None;
        }
        self.sched.hard_departed_at(src).map(|at| at + limit)
    }

    /// Kills this rank's thread per a fault-plan crash event. The unwind
    /// is intercepted by the runner, which records the death and keeps the
    /// world alive instead of poisoning it.
    fn die(&mut self, hard: bool) -> ! {
        self.record_marker(EventKind::Crash { rank: self.rank });
        self.wiretap.note_crash(self.rank);
        panic_any(RankCrash { hard })
    }

    /// Enters membership epoch `epoch` and resets the per-epoch send-step
    /// counter, re-arming crash events scheduled for this epoch. Called by
    /// the recovery driver once per iteration (epoch 0 is the initial
    /// attempt and is entered implicitly at world start).
    pub fn enter_epoch(&mut self, epoch: u64) {
        self.membership_epoch = epoch;
        self.send_steps = 0;
    }

    /// The membership epoch this rank is currently executing under.
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// The fault bound `f` of this world's crash schedule. The recovery
    /// engine sizes its agreement rounds from it.
    pub fn fault_bound(&self) -> usize {
        self.faults.fault_bound()
    }

    /// Marks the start of a recoverable collective attempt (the initial
    /// optimistic run or a degraded re-run). While active, a receive
    /// blocked on a peer that abandoned its own attempt resolves through
    /// the failure detector (that peer will never send attempt frames
    /// again) instead of waiting out its deadline. Attempts are
    /// protocol-lockstep: every rank performs the same sequence of
    /// attempts, so the serial bumped here names the same attempt on
    /// every rank.
    pub fn begin_attempt(&mut self) {
        self.attempt_serial += 1;
        self.attempt_active = true;
    }

    /// Ends the recoverable attempt successfully (this rank produced the
    /// attempt's output and sent every frame the attempt asked of it).
    pub fn complete_attempt(&mut self) {
        self.attempt_active = false;
    }

    /// Abandons the recoverable attempt, blaming `blamed` (the crashed
    /// rank whose detection made this rank give up). Publishes the
    /// abandonment so peers still blocked on this rank inside their own
    /// attempts fail over to recovery promptly — the blame is published
    /// *before* the abandonment serial, so a cascading peer always sees
    /// which crash to pin its own failure on.
    pub fn abort_attempt(&mut self, blamed: Rank) {
        self.attempt_active = false;
        self.abort_blame[self.rank].store(blamed + 1, Ordering::SeqCst);
        self.aborted[self.rank].store(self.attempt_serial, Ordering::SeqCst);
        // Peers parked on a receive from this rank must re-examine the
        // abort serial now, not on their next timer.
        self.sched.world_event();
        // Same-node siblings may be blocked in a barrier or on a shared
        // deposit this abandoned attempt will never serve. Fail our
        // node's segment over to the blamed crash so they cascade into
        // recovery too. (The segment stays dead afterwards: shared-memory
        // algorithms are unavailable post-crash, which the recovery
        // dispatcher respects by re-running over channels only.)
        self.shared[self.node()].crash_abort(blamed);
    }

    /// Records a completed shrink-and-recover on this rank: a `Recover`
    /// trace marker plus the `recoveries` metrics counter. Called by the
    /// recovery driver (`recover_allgather` in `eag-core`) after the
    /// degraded re-run completes.
    pub fn note_recovery(&mut self, survivors: usize) {
        self.metrics.recoveries += 1;
        self.record_marker(EventKind::Recover { survivors });
    }

    /// Labels this rank's metrics with the collective operation being run
    /// (ids assigned by the collective layer in `eag-core`). Max-merged like
    /// `cipher_suite`, so the label survives aggregation.
    pub fn note_operation(&mut self, id: u64) {
        self.metrics.operation = self.metrics.operation.max(id);
    }

    /// Converts a crash reported by the node-shared segment (a same-node
    /// sibling died while we were blocked on its deposit or barrier) into
    /// the recoverable typed failure.
    /// Books a same-node crash observed through the shared segment and
    /// returns it as a failure cause (attributing any wider cascade to it).
    fn note_shared_crash(&mut self, dead: Rank) -> FailureCause {
        let _ = self
            .crash_notice
            .compare_exchange(0, dead + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.metrics.crashes_detected += 1;
        self.record_marker(EventKind::Crash { rank: dead });
        FailureCause::Crash { rank: dead }
    }

    fn shared_crash(&mut self, dead: Rank) -> ! {
        let cause = self.note_shared_crash(dead);
        self.fail(cause)
    }

    #[inline]
    fn record(&mut self, start_us: f64, kind: EventKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(Event {
                start_us,
                end_us: self.clock_us,
                kind,
            });
        }
    }

    /// Records a zero-duration marker event (faults, retries).
    #[inline]
    fn record_marker(&mut self, kind: EventKind) {
        let now = self.clock_us;
        self.record(now, kind);
    }

    /// This rank's own m-byte input block.
    pub fn my_block(&self, len: usize) -> Chunk {
        self.block_for(self.rank, len)
    }

    /// The m-byte input block of rank `origin`, synthesized locally. Only a
    /// rank that *owns* the data may call this (e.g. a scatter root, whose
    /// send buffer holds every destination's block); the pattern is the same
    /// one `origin` would generate with [`ProcCtx::my_block`], so the
    /// standard output verification applies unchanged.
    pub fn block_for(&self, origin: Rank, len: usize) -> Chunk {
        let data = match self.mode {
            DataMode::Real { seed } => {
                Data::Real(crate::payload::pattern_block(seed, origin, len).into())
            }
            DataMode::Phantom => Data::Phantom(len),
        };
        Chunk::single(origin, data)
    }

    /// The *personalized* block this rank sends to `dst` in an all-to-all:
    /// pair-keyed pattern (`pattern_block_pair`), carried under this rank's
    /// origin so the receiver can identify the source from chunk metadata.
    pub fn my_block_for(&self, dst: Rank, len: usize) -> Chunk {
        let data = match self.mode {
            DataMode::Real { seed } => Data::Real(
                crate::payload::pattern_block_pair(seed, self.rank, dst, len).into(),
            ),
            DataMode::Phantom => Data::Phantom(len),
        };
        Chunk::single(self.rank, data)
    }

    // ----- point-to-point -------------------------------------------------

    /// Sends `parcel` to `dst` with `tag`. Advances this rank's clock by the
    /// transmission occupancy; the message arrives at
    /// `occupancy end + α(link)`. In chaos mode the frame additionally gets
    /// a stream sequence number, a transport checksum, and a retransmit-log
    /// entry, and may be perturbed per the world's [`FaultPlan`].
    pub fn send(&mut self, dst: Rank, tag: u64, mut parcel: Parcel) {
        let tag = self.wire_tag(tag);
        // `Some(hard)` when a crash event fires after this frame leaves.
        let mut crash_after_send = None;
        if dst != self.rank {
            // Crash events arm per membership epoch: the trigger is this
            // rank's send-step count *within* the epoch, so schedules can
            // kill ranks inside the recovery machinery itself (agreement
            // rounds and degraded re-runs run under epochs ≥ 1). Nothing
            // is suppressed — the epoch-versioned recovery loop restarts
            // agreement when a crash lands inside it.
            let hit = self
                .faults
                .crashes
                .iter()
                .find(|c| {
                    c.rank == self.rank
                        && c.epoch == self.membership_epoch
                        && c.phase_step == self.send_steps
                })
                .copied();
            if let Some(c) = hit {
                if c.after_send {
                    crash_after_send = Some(c.hard);
                } else {
                    self.die(c.hard);
                }
            }
            self.send_steps += 1;
        }
        // Frames held back by an earlier Reorder injection are released
        // after this send's delivery — i.e. genuinely overtaken by it.
        let held = std::mem::take(&mut self.reorder_limbo);
        let t0 = self.clock_us;
        let bytes = parcel.wire_len();
        let link = self.topo.link(self.rank, dst);
        let (done_us, arrive_us) = match link {
            LinkClass::SelfLoop => (self.clock_us, self.clock_us),
            LinkClass::Intra => {
                let done = self.clock_us + bytes as f64 / self.model.intra.bandwidth;
                (done, done + self.model.intra.alpha_us)
            }
            LinkClass::Inter => {
                let stream_done = self.clock_us + bytes as f64 / self.model.inter.bandwidth;
                let nic_done = if self.nic_contention {
                    self.nics[self.node()].reserve_for(self.session_id, self.clock_us, bytes)
                } else {
                    self.clock_us
                };
                let mut done = stream_done.max(nic_done);
                let mut alpha = self.model.inter.alpha_us;
                if let Some(fabric) = self.fabric {
                    let (fab_done, extra_alpha) =
                        fabric.reserve(self.clock_us, self.node(), self.topo.node_of(dst), bytes);
                    done = done.max(fab_done);
                    alpha += extra_alpha;
                }
                (done, done + alpha)
            }
        };
        self.clock_us = done_us;
        // A self-send is a local buffer hand-off, not communication: it
        // must not inflate the Table II traffic columns.
        if link != LinkClass::SelfLoop {
            self.metrics.bytes_sent += bytes as u64;
            self.metrics.payload_sent += parcel.payload_len() as u64;
        }
        let mut seq = 0u64;
        let mut checksum = None;
        // Faults are only ever injected on inter-node links, and a
        // `(src, dst)` pair's link class never changes — so intra-node and
        // self streams can skip the framing (sequence numbers, checksum,
        // retransmit log) entirely. A frame with `checksum: None` bypasses
        // the reliability admission at the receiver.
        if self.chaos && link == LinkClass::Inter {
            let s = self.next_seq.entry((dst, tag)).or_insert(0);
            seq = *s;
            *s += 1;
            // Checksum and log the frame *before* any fault touches it:
            // retransmissions replay the clean bytes.
            checksum = Some(parcel.checksum());
            self.sent_log.entry(dst).or_default().push(SentRecord {
                tag,
                seq,
                attempts: 0,
                parcel: parcel.clone(),
            });
        }
        let mut fault = None;
        if link == LinkClass::Inter {
            self.metrics.inter_bytes_sent += bytes as u64;
            let frame_idx = self.inter_frame_counter.fetch_add(1, Ordering::Relaxed);
            if self.faults.corrupt_nth_inter_frame == Some(frame_idx) {
                // Legacy unrecovered adversary: corrupt without arming any
                // recovery (the checksum, if present, is left stale so GCM
                // aborts the collective downstream).
                corrupt_parcel(&mut parcel);
            }
            if self.chaos {
                // Fault decisions hash the *logical* tag: a stream's fault
                // pattern at a given seed is a property of the collective's
                // structure, not of which epoch it runs in.
                fault = match self.faults.fault_nth_inter_frame {
                    Some((n, kind)) if n == frame_idx => Some(kind),
                    _ => self.faults.decide(self.rank, dst, logical_tag(tag), seq, 0),
                };
            }
            if fault == Some(FaultKind::Tamper) {
                corrupt_parcel(&mut parcel);
                if self.faults.adversarial_tamper {
                    // On-path adversary: fix up the transport checksum so
                    // only the per-hop GCM verification can catch it.
                    checksum = Some(parcel.checksum());
                }
            }
            self.capture(dst, &parcel);
        }
        self.record(t0, EventKind::Send { dst, bytes, link });
        if let Some(kind) = fault {
            self.metrics.faults_injected += 1;
            self.record_marker(EventKind::Fault { kind, dst });
        }
        let data = |arrive_us: f64, parcel: Parcel| Message {
            src: self.rank,
            arrive_us,
            wire: Wire::Data {
                tag,
                seq,
                checksum,
                parcel,
            },
        };
        match fault {
            Some(FaultKind::Drop) => {}
            Some(FaultKind::Reorder) => {
                self.reorder_limbo.push((dst, data(arrive_us, parcel)));
            }
            Some(FaultKind::Duplicate) => {
                let msg = data(arrive_us, parcel);
                self.sched.send(dst, msg.clone());
                self.sched.send(dst, msg);
            }
            Some(FaultKind::Delay) => {
                self.sched
                    .send(dst, data(arrive_us + self.faults.delay_us, parcel));
            }
            Some(FaultKind::Tamper) | None => {
                self.sched.send(dst, data(arrive_us, parcel));
            }
        }
        for (d, m) in held {
            self.sched.send(d, m);
        }
        if let Some(hard) = crash_after_send {
            self.die(hard);
        }
    }

    fn capture(&self, dst: Rank, parcel: &Parcel) {
        let kind = if parcel.has_plain() {
            FrameKind::Plain
        } else if parcel.items.iter().all(|i| match i {
            Item::Sealed(s) => s.data.is_real(),
            Item::Plain(_) => false,
        }) && !parcel.items.is_empty()
        {
            FrameKind::Cipher
        } else {
            FrameKind::Phantom
        };
        let bytes = if self.capture_wire {
            // The tap records refcounted views of the payload ropes — an
            // observer, not a copier.
            let mut buf = eag_rope::Rope::new();
            for item in &parcel.items {
                let data = match item {
                    Item::Plain(c) => &c.data,
                    Item::Sealed(s) => &s.data,
                };
                if let Data::Real(b) = data {
                    buf.append(b.clone());
                }
            }
            buf
        } else {
            eag_rope::Rope::new()
        };
        self.wiretap.capture(FrameRecord {
            src: self.rank,
            dst,
            kind,
            len: parcel.wire_len(),
            bytes,
        });
    }

    /// Receives the parcel tagged `tag` from `src`, blocking until it
    /// arrives. Advances the clock to the arrival time and counts one
    /// communication round. Duplicated and retransmitted frames are
    /// deduplicated before they reach the metrics, so the Table II traffic
    /// columns are fault-independent.
    pub fn recv(&mut self, src: Rank, tag: u64) -> Parcel {
        match self.try_recv(src, tag) {
            Ok(parcel) => parcel,
            Err(cause) => self.fail(cause),
        }
    }

    /// Like [`Self::recv`], but returns the failure cause as a value
    /// instead of unwinding the rank. This is what survivor-agreement
    /// protocols use to probe possibly-dead peers: a probe of a crashed
    /// rank yields `Err(Crash { .. })` and the caller carries on.
    pub fn try_recv(&mut self, src: Rank, tag: u64) -> Result<Parcel, FailureCause> {
        let t0 = self.clock_us;
        let tag = self.wire_tag(tag);
        let (parcel, arrive_us) = self.wait_for(src, tag)?;
        self.clock_us = self.clock_us.max(arrive_us);
        let bytes = parcel.wire_len();
        // Receiving one's own self-send is a local hand-off, not a
        // communication round (mirrors the send-side SelfLoop exclusion).
        if src != self.rank {
            self.metrics.comm_rounds += 1;
            self.metrics.bytes_recv += bytes as u64;
            self.metrics.payload_recv += parcel.payload_len() as u64;
        }
        self.record(t0, EventKind::Recv { src, bytes });
        Ok(parcel)
    }

    /// Pops the next accepted in-order frame for `(src, tag)`, if any.
    fn take_ready(&mut self, src: Rank, tag: u64) -> Option<(Parcel, f64)> {
        self.pending
            .get_mut(&(src, tag))
            .and_then(VecDeque::pop_front)
    }

    /// Releases any frames held back by Reorder injections.
    fn flush_limbo(&mut self) {
        for (dst, msg) in std::mem::take(&mut self.reorder_limbo) {
            self.sched.send(dst, msg);
        }
    }

    /// Drains this rank's mailbox and admits every message. `want` routes
    /// `NackMiss` into the caller's dead-peer detection.
    fn drain_inbox(&mut self, want: (Rank, u64), peer_missed: &mut bool) {
        let mut scratch = std::mem::take(&mut self.inbox_scratch);
        self.sched.drain_into(self.rank, &mut scratch);
        for msg in scratch.drain(..) {
            self.admit(msg, want, peer_missed);
        }
        self.inbox_scratch = scratch;
    }

    /// The blocking receive loop: admits mailbox traffic, issues NACK-based
    /// recovery rounds (chaos mode), enforces the absolute wall-clock
    /// watchdog, and detects dead and crashed peers. Takes a *wire* tag;
    /// returns the accepted frame and its virtual arrival time, or the
    /// failure cause (with the logical tag restored).
    ///
    /// Fully event-driven: between checks the rank parks in the scheduler
    /// (returning its run permit) until mail arrives, a world event fires,
    /// or the earliest of its timers — watchdog, retry round, suspicion —
    /// expires. There is no poll tick; every condition checked below has a
    /// wake source (flag publishers raise world events, timers become park
    /// deadlines).
    fn wait_for(&mut self, src: Rank, tag: u64) -> Result<(Parcel, f64), FailureCause> {
        self.flush_limbo();
        if let Some(got) = self.take_ready(src, tag) {
            return Ok(got);
        }
        let started = Instant::now();
        // The watchdog limit is an absolute deadline for this receive, not
        // a per-wake allowance: unrelated traffic draining through the
        // mailbox must not keep pushing the timeout out indefinitely.
        let watchdog = self.recv_timeout.map(|limit| started + limit);
        let mut attempt: u32 = 0;
        let mut attempt_deadline = self.chaos.then(|| started + self.retry.attempt_timeout);
        let mut peer_missed = false;
        loop {
            // Snapshot the event generation *before* reading any world
            // state: an event raised during the checks below aborts the
            // park instead of being lost.
            let gen = self.sched.generation();
            self.drain_inbox((src, tag), &mut peer_missed);
            if let Some(got) = self.take_ready(src, tag) {
                return Ok(got);
            }
            let now = Instant::now();
            if let Some(w) = watchdog {
                if now >= w {
                    return Err(FailureCause::Timeout {
                        src,
                        tag: logical_tag(tag),
                        waited: started.elapsed(),
                        attempts: attempt,
                    });
                }
            }
            if let Some(a) = attempt_deadline {
                if now >= a {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        return Err(FailureCause::Timeout {
                            src,
                            tag: logical_tag(tag),
                            waited: started.elapsed(),
                            attempts: attempt,
                        });
                    }
                    // Ask the peer to replay the stream from where we are.
                    let from_seq = self.expected.get(&(src, tag)).copied().unwrap_or(0);
                    self.metrics.nacks_sent += 1;
                    self.record_marker(EventKind::Retry {
                        peer: src,
                        tag: logical_tag(tag),
                        attempt,
                    });
                    self.sched.send(
                        src,
                        Message {
                            src: self.rank,
                            arrive_us: 0.0,
                            wire: Wire::Nack { tag, seq: from_seq },
                        },
                    );
                    attempt_deadline = Some(
                        now + self
                            .retry
                            .attempt_timeout
                            .mul_f64(self.retry.backoff.powi(attempt as i32)),
                    );
                }
            }
            if self.finished[src].load(Ordering::SeqCst) {
                // The peer exited; drain anything it left in our mailbox.
                self.drain_inbox((src, tag), &mut peer_missed);
                if let Some(got) = self.take_ready(src, tag) {
                    return Ok(got);
                }
                // Outside chaos mode a finished peer can never send again.
                // Inside it, a lingering peer may still replay logged
                // frames — unless it answered NackMiss, which is only ever
                // emitted once the peer's log is complete (post-finish),
                // proving it has nothing for this stream.
                if !self.chaos || peer_missed {
                    return Err(FailureCause::DeadPeer {
                        peer: src,
                        tag: logical_tag(tag),
                    });
                }
            }
            if let Some(dead) = self.peer_dead(src) {
                // Failure detector: the peer will never send this frame.
                // Everything a rank sends is pushed into our mailbox before
                // its thread can unwind (and before it publishes an attempt
                // abort), so after a drain an absent frame is *permanently*
                // absent — resolve the receive now instead of waiting out
                // the watchdog.
                self.drain_inbox((src, tag), &mut peer_missed);
                if let Some(got) = self.take_ready(src, tag) {
                    return Ok(got);
                }
                self.metrics.crashes_detected += 1;
                self.record_marker(EventKind::Crash { rank: dead });
                return Err(FailureCause::Crash { rank: dead });
            }
            let mut wake = watchdog;
            if let Some(a) = attempt_deadline {
                wake = Some(wake.map_or(a, |w| w.min(a)));
            }
            if let Some(s) = self.suspect_deadline(src) {
                wake = Some(wake.map_or(s, |w| w.min(s)));
            }
            self.sched.park(self.rank, wake, gen);
        }
    }

    /// Processes one channel message: control frames act immediately; data
    /// frames pass integrity and ordering checks before joining `pending`.
    /// `want` is the `(src, tag)` the caller is blocked on (used to route
    /// `NackMiss` into its dead-peer detection).
    fn admit(&mut self, msg: Message, want: (Rank, u64), peer_missed: &mut bool) {
        let src = msg.src;
        match msg.wire {
            Wire::Poison => panic!("rank {src} panicked; propagating"),
            Wire::Nack { tag, seq } => self.service_nack(src, tag, seq),
            Wire::NackMiss { tag } => {
                if (src, tag) == want {
                    *peer_missed = true;
                }
            }
            Wire::Data {
                tag,
                seq,
                checksum,
                parcel,
            } => {
                let key = (src, tag);
                // `checksum: None` marks an unframed frame: either chaos is
                // off, or the stream is intra-node/self and can never be
                // faulted, so it skips the reliability admission.
                if !self.chaos || checksum.is_none() {
                    self.pending
                        .entry(key)
                        .or_default()
                        .push_back((parcel, msg.arrive_us));
                    return;
                }
                let expected0 = *self.expected.entry(key).or_insert(0);
                if seq < expected0 {
                    // Already accepted (duplicate or redundant retransmit).
                    self.metrics.dup_frames_dropped += 1;
                    return;
                }
                // The transport checksum covers random corruption; the
                // (expensive) per-hop GCM verification is only armed when
                // the threat model includes checksum-evading tamper.
                let intact = checksum.is_none_or(|c| parcel.checksum() == c)
                    && (!self.faults.adversarial_tamper || self.hop_verify(&parcel));
                if !intact {
                    self.metrics.faults_detected += 1;
                    self.metrics.nacks_sent += 1;
                    self.record_marker(EventKind::Retry {
                        peer: src,
                        tag: logical_tag(tag),
                        attempt: 0,
                    });
                    self.sched.send(
                        src,
                        Message {
                            src: self.rank,
                            arrive_us: 0.0,
                            wire: Wire::Nack {
                                tag,
                                seq: expected0,
                            },
                        },
                    );
                    return;
                }
                if seq == expected0 {
                    let mut ready = vec![(parcel, msg.arrive_us)];
                    let mut next = seq + 1;
                    if let Some(buf) = self.ooo.get_mut(&key) {
                        while let Some(e) = buf.remove(&next) {
                            ready.push(e);
                            next += 1;
                        }
                    }
                    self.expected.insert(key, next);
                    self.pending.entry(key).or_default().extend(ready);
                } else {
                    // A gap: buffer and (once per gap) ask for the replay.
                    let buf = self.ooo.entry(key).or_default();
                    if buf.contains_key(&seq) {
                        self.metrics.dup_frames_dropped += 1;
                    } else {
                        let first_of_gap = buf.is_empty();
                        buf.insert(seq, (parcel, msg.arrive_us));
                        if first_of_gap {
                            self.metrics.faults_detected += 1;
                            self.metrics.nacks_sent += 1;
                            self.record_marker(EventKind::Retry {
                                peer: src,
                                tag: logical_tag(tag),
                                attempt: 0,
                            });
                            self.sched.send(
                                src,
                                Message {
                                    src: self.rank,
                                    arrive_us: 0.0,
                                    wire: Wire::Nack {
                                        tag,
                                        seq: expected0,
                                    },
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Per-hop integrity check of a frame's sealed items: verifies each GCM
    /// tag (without decrypting) against the AAD rebuilt from the routing
    /// metadata. Catches adversarial tampering that recomputed the transport
    /// checksum; armed only when the fault plan's `adversarial_tamper` flag
    /// is set (it is a full AES-GCM pass over every sealed byte at every
    /// hop). Plaintext items have no authenticator — corruption of them
    /// under an adversarial tamper goes undetected here, which is exactly
    /// the integrity gap the encrypted algorithms close.
    fn hop_verify(&mut self, parcel: &Parcel) -> bool {
        for item in &parcel.items {
            if let Item::Sealed(s) = item {
                if let Data::Real(wire) = &s.data {
                    seal_aad_into(&s.origins, s.block_len, &mut self.aad_scratch);
                    // Seals are built contiguous and forwarded whole, so the
                    // borrow fast path always hits today; the materializing
                    // fallback keeps this correct for any future fragmented
                    // frame.
                    let ok = match wire.as_contiguous() {
                        Some(flat) => {
                            eag_crypto::verify_message(self.aead, &self.aad_scratch, flat).is_ok()
                        }
                        None => {
                            let flat = wire.to_vec();
                            eag_crypto::verify_message(self.aead, &self.aad_scratch, &flat).is_ok()
                        }
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Replays logged frames on `tag` from `from_seq` onward to `from`, or
    /// answers `NackMiss` if nothing is logged. Retransmissions are faulted
    /// independently (keyed by their attempt number, so a deterministic
    /// re-fault cannot starve recovery), do not advance the virtual clock,
    /// and are accounted in `retransmit_bytes` rather than `bytes_sent`.
    fn service_nack(&mut self, from: Rank, tag: u64, from_seq: u64) {
        let mut jobs = Vec::new();
        if let Some(log) = self.sent_log.get_mut(&from) {
            for rec in log.iter_mut() {
                if rec.tag == tag && rec.seq >= from_seq {
                    rec.attempts += 1;
                    jobs.push((rec.seq, rec.attempts, rec.parcel.clone()));
                }
            }
        }
        if jobs.is_empty() {
            // A NackMiss is a proof that the requested frames will *never*
            // exist — which is only true once this rank has finished and
            // its log is complete. Mid-run, the NACK may simply be early:
            // the receiver's retry timer can race a send that has not
            // happened yet (and whose frame may then be dropped in flight).
            // Answering NackMiss then would let the receiver conclude
            // DeadPeer the moment we finish, instead of re-asking the
            // lingering log. Stay silent; the receiver's backoff re-asks.
            if self.finished[self.rank].load(Ordering::SeqCst) {
                self.sched.send(
                    from,
                    Message {
                        src: self.rank,
                        arrive_us: 0.0,
                        wire: Wire::NackMiss { tag },
                    },
                );
            }
            return;
        }
        let link = self.topo.link(self.rank, from);
        for (seq, attempt, mut parcel) in jobs {
            self.metrics.retransmits += 1;
            self.metrics.retransmit_bytes += parcel.wire_len() as u64;
            self.record_marker(EventKind::Retry {
                peer: from,
                tag: logical_tag(tag),
                attempt,
            });
            let mut checksum = Some(parcel.checksum());
            let fault = if link == LinkClass::Inter {
                self.faults
                    .decide(self.rank, from, logical_tag(tag), seq, attempt)
            } else {
                None
            };
            let mut arrive_us = self.clock_us;
            match fault {
                Some(FaultKind::Drop) => {
                    self.metrics.faults_injected += 1;
                    self.record_marker(EventKind::Fault {
                        kind: FaultKind::Drop,
                        dst: from,
                    });
                    continue;
                }
                Some(FaultKind::Delay) => {
                    self.metrics.faults_injected += 1;
                    self.record_marker(EventKind::Fault {
                        kind: FaultKind::Delay,
                        dst: from,
                    });
                    arrive_us += self.faults.delay_us;
                }
                Some(FaultKind::Tamper) => {
                    self.metrics.faults_injected += 1;
                    self.record_marker(EventKind::Fault {
                        kind: FaultKind::Tamper,
                        dst: from,
                    });
                    corrupt_parcel(&mut parcel);
                    if self.faults.adversarial_tamper {
                        checksum = Some(parcel.checksum());
                    }
                }
                // Duplication/reordering of a retransmission adds nothing
                // the receiver's dedup does not already absorb.
                Some(FaultKind::Duplicate) | Some(FaultKind::Reorder) | None => {}
            }
            self.sched.send(
                from,
                Message {
                    src: self.rank,
                    arrive_us,
                    wire: Wire::Data {
                        tag,
                        seq,
                        checksum,
                        parcel,
                    },
                },
            );
        }
    }

    /// Post-collective service loop (chaos mode): a finished rank keeps
    /// answering NACKs until every rank has departed (finished or
    /// crashed), so a peer recovering a lost frame never finds its sender
    /// gone. Parked between requests — each departure raises a world event,
    /// so the loop blocks on the spec's actual `recv_timeout` deadline
    /// (`None` = unbounded) instead of spinning a short poll.
    fn linger(&mut self) {
        let deadline = self.recv_timeout.map(|limit| Instant::now() + limit);
        loop {
            let gen = self.sched.generation();
            let mut scratch = std::mem::take(&mut self.inbox_scratch);
            self.sched.drain_into(self.rank, &mut scratch);
            let mut poisoned = false;
            for msg in scratch.drain(..) {
                match msg.wire {
                    Wire::Poison => poisoned = true,
                    Wire::Nack { tag, seq } => self.service_nack(msg.src, tag, seq),
                    Wire::Data { .. } | Wire::NackMiss { .. } => {}
                }
            }
            self.inbox_scratch = scratch;
            if poisoned || self.departed_count.load(Ordering::SeqCst) >= self.p() {
                return;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return;
                }
            }
            self.sched.park(self.rank, deadline, gen);
        }
    }

    /// Send to `dst` and receive from `src` with the same tag — the classic
    /// exchange step of ring and recursive-doubling algorithms.
    pub fn sendrecv(&mut self, dst: Rank, src: Rank, tag: u64, parcel: Parcel) -> Parcel {
        self.send(dst, tag, parcel);
        self.recv(src, tag)
    }

    // ----- crypto ----------------------------------------------------------

    /// Encrypts a chunk: one encryption operation of `chunk.len()` bytes
    /// (`αe + βe·m` in the model).
    pub fn encrypt(&mut self, chunk: Chunk) -> Sealed {
        chunk.check();
        let t0 = self.clock_us;
        let plain_len = chunk.len();
        self.clock_us += self.model.crypto.enc_time(plain_len);
        self.record(t0, EventKind::Encrypt { bytes: plain_len });
        self.metrics.enc_rounds += 1;
        self.metrics.enc_bytes += plain_len as u64;
        let Chunk {
            origins,
            block_len,
            data,
        } = chunk;
        let data = match data {
            Data::Real(bytes) => {
                seal_aad_into(&origins, block_len, &mut self.aad_scratch);
                // Gather the plaintext segments straight into the frame that
                // becomes the wire message: the frame buffer cannot be
                // recycled (the frozen rope keeps it alive for forwarding,
                // retransmit logs, and the receiver), so this gather is the
                // one unavoidable copy of the seal path.
                let mut wire = Vec::with_capacity(plain_len + WIRE_OVERHEAD);
                eag_crypto::seal_segments_into(
                    self.aead,
                    &mut self.nonces,
                    &self.aad_scratch,
                    bytes.segments(),
                    &mut wire,
                );
                eag_rope::probe::count_buffer();
                eag_rope::probe::count_copied(plain_len);
                Data::Real(wire.into())
            }
            Data::Phantom(_) => Data::Phantom(plain_len + WIRE_OVERHEAD),
        };
        Sealed {
            origins,
            block_len,
            plain_len,
            data,
        }
    }

    /// Decrypts a sealed chunk: one decryption operation of `plain_len`
    /// bytes (`αd + βd·m`). Raises a typed `AuthFailure`
    /// [`CollectiveError`] if authentication fails — an encrypted
    /// collective cannot proceed on forged data.
    pub fn decrypt(&mut self, sealed: Sealed) -> Chunk {
        let t0 = self.clock_us;
        self.clock_us += self.model.crypto.dec_time(sealed.plain_len);
        self.record(
            t0,
            EventKind::Decrypt {
                bytes: sealed.plain_len,
            },
        );
        self.metrics.dec_rounds += 1;
        self.metrics.dec_bytes += sealed.plain_len as u64;
        let Sealed {
            origins,
            block_len,
            plain_len,
            data,
        } = sealed;
        let data = match data {
            Data::Real(rope) => {
                seal_aad_into(&origins, block_len, &mut self.aad_scratch);
                // Thaw the frame: free when this rank is the frame's sole
                // owner (the common case — each seal reaches one decryptor),
                // a counted copy when a retransmit log or wiretap still
                // shares the buffer. GCM then decrypts in place and the
                // plaintext is re-frozen as a slice view — the `drain`
                // memmove of the old path is gone.
                let mut wire = rope.into_vec();
                match eag_crypto::open_frame_in_place(self.aead, &self.aad_scratch, &mut wire) {
                    Ok(pt) => Data::Real(eag_rope::Rope::from(wire).slice(pt)),
                    Err(e) => self.fail(FailureCause::AuthFailure {
                        detail: format!("{e:?}: forged, corrupted, or relabeled ciphertext"),
                    }),
                }
            }
            Data::Phantom(_) => Data::Phantom(plain_len),
        };
        let chunk = Chunk {
            origins,
            block_len,
            data,
        };
        chunk.check();
        chunk
    }

    // ----- shared memory ----------------------------------------------------

    /// Deposits `item` into this node's shared segment, charging a memory
    /// copy. Visible to siblings once the copy completes.
    ///
    /// `consumers` declares how many [`Self::shared_fetch`] /
    /// [`Self::shared_fetch_free`] calls will read this slot; the slot
    /// self-removes after the last one, keeping the segment's map empty
    /// between collectives. A deposit with `consumers == 0` still charges
    /// the copy (the data is produced either way) but stores nothing.
    pub fn shared_deposit(&mut self, key: SlotKey, item: Item, consumers: usize) {
        let t0 = self.clock_us;
        let bytes = item.wire_len();
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
        self.shared[self.node()].deposit(key, item, self.clock_us, consumers);
    }

    /// Fetches the item in `key` from this node's shared segment, charging a
    /// memory copy and waiting (in virtual time) for the deposit.
    pub fn shared_fetch(&mut self, key: SlotKey) -> Item {
        let seg = &self.shared[self.node()];
        // The segment blocks on its own condvar; give the run permit back
        // for the duration so waiters never hold a worker hostage.
        let (item, ready_us) = match self.sched.blocking(|| seg.fetch(key)) {
            Ok(got) => got,
            Err(dead) => self.shared_crash(dead),
        };
        self.clock_us = self.clock_us.max(ready_us);
        let bytes = item.wire_len();
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        Self::unwrap_shared(item)
    }

    /// Like [`Self::shared_fetch`], but surfaces a same-node crash as a
    /// value instead of raising the structured failure — recovery code uses
    /// this to fail over instead of unwinding.
    pub fn try_shared_fetch(&mut self, key: SlotKey) -> Result<Item, FailureCause> {
        let seg = &self.shared[self.node()];
        match self.sched.blocking(|| seg.fetch(key)) {
            Ok((item, ready_us)) => {
                self.clock_us = self.clock_us.max(ready_us);
                let bytes = item.wire_len();
                self.clock_us += self.model.copy_time(bytes);
                self.metrics.copies += 1;
                self.metrics.copy_bytes += bytes as u64;
                Ok(Self::unwrap_shared(item))
            }
            Err(dead) => Err(self.note_shared_crash(dead)),
        }
    }

    /// Deposits without charging a copy: models producing data directly
    /// into the shared buffer (e.g. decrypting into it). Consumer counting
    /// as in [`Self::shared_deposit`].
    pub fn shared_deposit_free(&mut self, key: SlotKey, item: Item, consumers: usize) {
        self.shared[self.node()].deposit(key, item, self.clock_us, consumers);
    }

    /// Fetches without charging a copy: models reading the shared buffer in
    /// place (e.g. encrypting or decrypting straight out of it). Still waits
    /// (in virtual time) for the deposit to complete.
    pub fn shared_fetch_free(&mut self, key: SlotKey) -> Item {
        let seg = &self.shared[self.node()];
        let (item, ready_us) = match self.sched.blocking(|| seg.fetch(key)) {
            Ok(got) => got,
            Err(dead) => self.shared_crash(dead),
        };
        self.clock_us = self.clock_us.max(ready_us);
        Self::unwrap_shared(item)
    }

    /// Recovers an owned [`Item`] from a fetched slot handle. The last (or
    /// sole) consumer holds the only `Arc` and gets the item back without
    /// copying — on HS1's decrypt path that removes an ℓ·m-byte memcpy per
    /// ciphertext; earlier consumers clone.
    fn unwrap_shared(item: std::sync::Arc<Item>) -> Item {
        std::sync::Arc::try_unwrap(item).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Number of live slots in this node's shared segment — 0 between
    /// correctly consumer-counted collectives (diagnostics/tests).
    pub fn shared_slots_len(&self) -> usize {
        self.shared[self.node()].len()
    }

    /// Charges a pure memory copy of `bytes` (e.g. user-buffer placement)
    /// without touching the shared segment.
    pub fn charge_copy(&mut self, bytes: usize) {
        let t0 = self.clock_us;
        self.clock_us += self.model.copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
    }

    /// Charges a strided (cache-unfriendly) memory copy of `bytes` — the
    /// per-block rank-order rearrangement of HS1/HS2 under cyclic mapping.
    pub fn charge_strided_copy(&mut self, bytes: usize) {
        let t0 = self.clock_us;
        self.clock_us += self.model.strided_copy_time(bytes);
        self.metrics.copies += 1;
        self.metrics.copy_bytes += bytes as u64;
        self.record(t0, EventKind::Copy { bytes });
    }

    /// Node-local barrier synchronizing the virtual clocks of all processes
    /// on this node.
    pub fn node_barrier(&mut self) {
        let t0 = self.clock_us;
        let seg = &self.shared[self.node()];
        let clock_us = self.clock_us;
        let barrier_us = self.model.barrier_us;
        // Barrier waiters block on the segment's condvar; hand the run
        // permit back so ℓ-1 waiting siblings never exhaust the worker
        // gate and starve the one rank that would complete the barrier.
        self.clock_us = match self.sched.blocking(|| seg.barrier(clock_us, barrier_us)) {
            Ok(release) => release,
            Err(dead) => self.shared_crash(dead),
        };
        self.record(t0, EventKind::Barrier);
    }

    /// Cooperative scheduling point at an algorithm step boundary: if other
    /// ranks are waiting for a run permit, hands this rank's permit over
    /// and re-acquires it; a no-op (one mutex probe) on an uncontended
    /// world. Purely a wall-clock fairness device — the virtual clock and
    /// the cost model are untouched.
    pub fn yield_now(&mut self) {
        self.sched.yield_now(self.rank);
    }
}

/// Flips one byte of the first real payload in `parcel` (tamper injection).
/// Copy-on-write: the retransmit log's clone of the same frame shares the
/// rope's buffers, and a replayed frame must carry the original, pre-fault
/// bytes — only the corrupted in-flight view may see the flip.
fn corrupt_parcel(parcel: &mut Parcel) {
    for item in &mut parcel.items {
        let data = match item {
            Item::Plain(c) => &mut c.data,
            Item::Sealed(s) => &mut s.data,
        };
        if let Data::Real(bytes) = data {
            if !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes.xor_byte(mid, 0x80);
                return;
            }
        }
    }
}

/// The result of one [`run`].
pub struct RunReport<T> {
    /// Per-rank closure outputs, indexed by rank.
    pub outputs: Vec<T>,
    /// Collective latency: max over ranks of the final virtual clock, µs.
    pub latency_us: f64,
    /// Final virtual clock per rank, µs.
    pub clocks_us: Vec<f64>,
    /// Metrics per rank.
    pub metrics: Vec<Metrics>,
    /// The inter-node traffic recorder.
    pub wiretap: Arc<Wiretap>,
    /// Per-rank virtual-time traces (empty unless `WorldSpec::trace`).
    pub traces: Vec<Trace>,
}

impl<T> RunReport<T> {
    /// Component-wise maximum of the per-rank metrics (the critical path
    /// values the paper's Table II reports).
    pub fn max_metrics(&self) -> Metrics {
        Metrics::component_max(&self.metrics)
    }

    /// Per-rank busy-time breakdowns from the recorded traces (one entry
    /// per rank; all-zero entries when the run was not traced). Lets
    /// reporting tools attribute each rank's virtual time to send / recv /
    /// crypto / copy / barrier without re-walking raw traces.
    pub fn busy_breakdowns(&self) -> Vec<crate::trace::BusyBreakdown> {
        self.traces
            .iter()
            .map(crate::trace::BusyBreakdown::of)
            .collect()
    }
}

/// The result of one [`run_crashable`]: like [`RunReport`], but ranks killed
/// by an injected [`Crash`](eag_netsim::Crash) contribute `None` outputs
/// instead of aborting the world.
pub struct CrashReport<T> {
    /// Per-rank closure outputs, indexed by *original* rank. `None` for
    /// ranks that crashed mid-collective.
    pub outputs: Vec<Option<T>>,
    /// Ranks that crashed, in ascending order.
    pub crashed: Vec<Rank>,
    /// Collective latency: max over ranks of the final virtual clock, µs.
    pub latency_us: f64,
    /// Final virtual clock per rank, µs (a crashed rank's clock stops at
    /// its point of death).
    pub clocks_us: Vec<f64>,
    /// Metrics per rank.
    pub metrics: Vec<Metrics>,
    /// The inter-node traffic recorder.
    pub wiretap: Arc<Wiretap>,
    /// Per-rank virtual-time traces (empty unless `WorldSpec::trace`).
    pub traces: Vec<Trace>,
}

impl<T> CrashReport<T> {
    /// Component-wise maximum of the per-rank metrics.
    pub fn max_metrics(&self) -> Metrics {
        Metrics::component_max(&self.metrics)
    }

    /// The outputs of the ranks that survived, with their original ranks.
    pub fn survivor_outputs(&self) -> impl Iterator<Item = (Rank, &T)> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(rank, out)| out.as_ref().map(|o| (rank, o)))
    }
}

/// Derives the per-rank RNG seed from the world seed: splitmix64's
/// finalizer over the rank-salted seed. A full-avalanche bijection with no
/// identity point — the previous `seed ^ rank·FNV` left rank 0's nonce
/// stream seeded with the raw world seed, correlating it with every other
/// consumer of that seed.
fn mix_rank_seed(seed: u64, rank: Rank) -> u64 {
    let mut z = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run-permit gate for a spec: the explicit shared gate if one was
/// provided, else a private gate when the worker count is pinned
/// (cooperative tests), else the process-global gate — so concurrent
/// default-configured worlds contend for one host-wide pool instead of
/// each conjuring an `available_parallelism()`-wide pool of their own.
fn resolve_gate(spec: &WorldSpec) -> Arc<RunGate> {
    if let Some(gate) = &spec.gate {
        return Arc::clone(gate);
    }
    match spec.workers {
        Some(w) => Arc::new(RunGate::new(w)),
        None => RunGate::global(),
    }
}

/// Shared engine behind [`run`] and [`run_crashable`]: runs one rank state
/// machine per rank on the scheduler (stacks on parked OS threads, at most
/// [`WorldSpec::workers`] running at once) and collects per-rank slots. A
/// rank killed by an injected [`Crash`](eag_netsim::Crash) leaves a `None`
/// output (its crash is published to survivors instead of poisoning the
/// world); any other panic is broadcast as poison and re-raised, preferring
/// a structured [`CollectiveError`] over secondary string panics.
#[allow(clippy::type_complexity)]
fn run_world<T, F>(spec: &WorldSpec, f: F) -> (Vec<(Option<T>, f64, Metrics, Trace)>, Arc<Wiretap>)
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    let p = spec.topology.p();
    let n_nodes = spec.topology.nodes();
    let model = &spec.profile.model;
    let chaos = spec.faults.enabled();

    let sched: Scheduler<Message> = Scheduler::with_gate(p, resolve_gate(spec));

    let seed = match spec.mode {
        DataMode::Real { seed } => seed,
        DataMode::Phantom => 0,
    };
    let key = spec.key.clone().unwrap_or_else(|| {
        let mut key_bytes = [0u8; 16];
        key_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        key_bytes[8..].copy_from_slice(&(!seed).to_le_bytes());
        Key::from_bytes(key_bytes)
    });
    let aead = spec.suite.aead_for_key(&key);

    let nics: Vec<Arc<NodeNic>> = match &spec.shared_nics {
        Some(shared) => {
            assert_eq!(
                shared.len(),
                n_nodes,
                "shared_nics must provide one NIC per logical node"
            );
            shared.iter().map(Arc::clone).collect()
        }
        None => (0..n_nodes)
            .map(|_| Arc::new(NodeNic::new(model.nic_bandwidth)))
            .collect(),
    };
    let fabric = model.fabric.map(|fm| FabricState::new(fm, n_nodes));
    let shared: Vec<Arc<NodeShared>> = (0..n_nodes)
        .map(|node| Arc::new(NodeShared::new(spec.topology.ranks_on_node(node).len())))
        .collect();
    let wiretap = Arc::new(Wiretap::new());
    let frame_counter = AtomicU64::new(0);
    let finished: Vec<AtomicBool> = (0..p).map(|_| AtomicBool::new(false)).collect();
    let crashed: Vec<AtomicBool> = (0..p).map(|_| AtomicBool::new(false)).collect();
    let aborted: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
    let abort_blame: Vec<AtomicUsize> = (0..p).map(|_| AtomicUsize::new(0)).collect();
    let crash_notice = AtomicUsize::new(0);
    let departed_count = AtomicUsize::new(0);

    let mut slots: Vec<Option<(Option<T>, f64, Metrics, Trace)>> = (0..p).map(|_| None).collect();

    {
        let sched_ref = &sched;
        let nics = &nics;
        let fabric_ref = fabric.as_ref();
        let shared = &shared;
        let wiretap_ref = &*wiretap;
        let f = &f;
        let spec_ref = spec;
        let frame_counter_ref = &frame_counter;
        let finished_ref = &finished[..];
        let crashed_ref = &crashed[..];
        let aborted_ref = &aborted[..];
        let abort_blame_ref = &abort_blame[..];
        let crash_notice_ref = &crash_notice;
        let departed_count_ref = &departed_count;
        let aead_ref: &dyn Aead = &*aead;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, slot) in slots.iter_mut().enumerate() {
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(1 << 20)
                    .spawn_scoped(scope, move || {
                        // Fresh thread, but make the probe window explicit.
                        eag_rope::probe::reset();
                        let mut ctx = ProcCtx {
                            rank,
                            topo: &spec_ref.topology,
                            model: &spec_ref.profile.model,
                            mvapich_switch_bytes: spec_ref.profile.mvapich_switch_bytes,
                            mode: spec_ref.mode,
                            clock_us: 0.0,
                            metrics: Metrics {
                                cipher_suite: spec_ref.suite.id(),
                                ..Metrics::default()
                            },
                            sched: sched_ref,
                            inbox_scratch: Vec::new(),
                            pending: HashMap::new(),
                            next_seq: HashMap::new(),
                            expected: HashMap::new(),
                            ooo: HashMap::new(),
                            sent_log: HashMap::new(),
                            reorder_limbo: Vec::new(),
                            aead: aead_ref,
                            // Fold the session id into the nonce seed so
                            // concurrent sessions sharing a data seed never
                            // share nonce streams (a no-op for the
                            // standalone session_id = 0).
                            nonces: NonceSource::seeded(mix_rank_seed(
                                seed ^ spec_ref.session_id.wrapping_mul(0xD6E8_FEB8_6659_FD93),
                                rank,
                            )),
                            aad_scratch: Vec::new(),
                            nics,
                            session_id: spec_ref.session_id,
                            fabric: fabric_ref,
                            wiretap: wiretap_ref,
                            shared,
                            nic_contention: spec_ref.nic_contention,
                            capture_wire: spec_ref.capture_wire,
                            epoch: 0,
                            recv_timeout: spec_ref.recv_timeout,
                            // A traced timeline opens with the suite marker
                            // so consumers can attribute enc/dec intervals.
                            trace: spec_ref.trace.then(|| {
                                vec![Event {
                                    start_us: 0.0,
                                    end_us: 0.0,
                                    kind: EventKind::Suite {
                                        suite: spec_ref.suite,
                                    },
                                }]
                            }),
                            faults: &spec_ref.faults,
                            retry: spec_ref.retry,
                            chaos,
                            phase: "collective",
                            inter_frame_counter: frame_counter_ref,
                            finished: finished_ref,
                            departed_count: departed_count_ref,
                            crashed: crashed_ref,
                            aborted: aborted_ref,
                            abort_blame: abort_blame_ref,
                            crash_notice: crash_notice_ref,
                            suspect_after: spec_ref.suspect_after,
                            send_steps: 0,
                            membership_epoch: 0,
                            attempt_serial: 0,
                            attempt_active: false,
                        };
                        // The state machine runs only while it holds a run
                        // permit; parks and blocking waits hand it back.
                        sched_ref.enter();
                        let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                        match result {
                            Ok(out) => {
                                ctx.flush_limbo();
                                finished_ref[rank].store(true, Ordering::SeqCst);
                                departed_count_ref.fetch_add(1, Ordering::SeqCst);
                                // The departure event wakes every parked
                                // rank: receivers re-check `finished`,
                                // lingerers re-count departures.
                                sched_ref.depart(rank, Departure::Finished);
                                if ctx.chaos {
                                    // Stay to answer late NACKs until every
                                    // rank is done.
                                    ctx.linger();
                                }
                                *slot = Some((
                                    Some(out),
                                    ctx.clock_us,
                                    ctx.metrics(),
                                    ctx.trace.take().unwrap_or_default(),
                                ));
                            }
                            Err(payload) if payload.is::<RankCrash>() => {
                                // An injected crash: the rank is dead, but
                                // the world survives. Publish the death to
                                // survivors instead of poisoning. The
                                // payload says how the rank died — a
                                // schedule may kill several ranks, each
                                // its own way.
                                let hard = payload
                                    .downcast_ref::<RankCrash>()
                                    .map(|rc| rc.hard)
                                    .unwrap_or(false);
                                if !hard {
                                    // Attribute the cascade before raising
                                    // the flag detectors look at: a survivor
                                    // that observes `crashed[rank]` must also
                                    // see the notice naming this rank.
                                    let _ = crash_notice_ref.compare_exchange(
                                        0,
                                        rank + 1,
                                        Ordering::SeqCst,
                                        Ordering::SeqCst,
                                    );
                                    crashed_ref[rank].store(true, Ordering::SeqCst);
                                }
                                // Even a hard crash is visible to the node's
                                // OS: wake same-node shared-segment waiters.
                                shared[spec_ref.topology.node_of(rank)].crash_abort(rank);
                                departed_count_ref.fetch_add(1, Ordering::SeqCst);
                                // Hard crashes depart *silently*: the record
                                // below is all survivors ever get, and the
                                // failure detector suspects it only after
                                // the spec's grace period.
                                sched_ref.depart(
                                    rank,
                                    if hard {
                                        Departure::HardCrash
                                    } else {
                                        Departure::SoftCrash
                                    },
                                );
                                *slot = Some((
                                    None,
                                    ctx.clock_us,
                                    ctx.metrics(),
                                    ctx.trace.take().unwrap_or_default(),
                                ));
                            }
                            Err(payload) => {
                                // Wake everyone up before propagating.
                                for seg in shared.iter() {
                                    seg.poison();
                                }
                                for dst in 0..p {
                                    sched_ref.send(
                                        dst,
                                        Message {
                                            src: rank,
                                            arrive_us: 0.0,
                                            wire: Wire::Poison,
                                        },
                                    );
                                }
                                sched_ref.depart(rank, Departure::Poisoned);
                                sched_ref.exit();
                                resume_unwind(payload);
                            }
                        }
                        sched_ref.exit();
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            // Prefer the structured root-cause error over the string panics
            // of ranks that merely got poisoned by it.
            let mut typed: Option<Box<dyn std::any::Any + Send>> = None;
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                if let Err(e) = handle.join() {
                    if e.is::<CollectiveError>() {
                        typed.get_or_insert(e);
                    } else {
                        first_panic.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = typed.or(first_panic) {
                resume_unwind(e);
            }
        });
    }

    let collected = slots
        .into_iter()
        .enumerate()
        .map(|(rank, slot)| match slot {
            Some(filled) => filled,
            // A rank exited without writing its slot (and without raising
            // any panic the join loop would have re-thrown). Surface it as
            // a typed failure instead of an opaque expect-panic.
            None => panic_any(CollectiveError {
                rank,
                phase: "collect",
                cause: FailureCause::SilentExit { rank },
            }),
        })
        .collect();
    (collected, wiretap)
}

/// Runs `f` on every rank of the world and collects the report.
///
/// A panic on any rank is broadcast to all ranks (poisoning channels and
/// shared segments) so the world shuts down instead of deadlocking, and the
/// original panic is re-raised here; a structured [`CollectiveError`] is
/// preferred over secondary string panics when both occur. Use [`try_run`]
/// to receive the error as a value instead of a panic, and
/// [`run_crashable`] when the fault plan injects a
/// [`Crash`](eag_netsim::Crash).
pub fn run<T, F>(spec: &WorldSpec, f: F) -> RunReport<T>
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    let (slots, wiretap) = run_world(spec, f);
    let mut outputs = Vec::with_capacity(slots.len());
    let mut clocks_us = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    let mut traces = Vec::with_capacity(slots.len());
    for (rank, (out, clock, m, trace)) in slots.into_iter().enumerate() {
        // A crashed rank under the non-crash-tolerant runner is a typed
        // failure, not an expect-panic: `try_run` surfaces it as a value,
        // and worlds that anticipate crashes should use `run_crashable`.
        let out = out.unwrap_or_else(|| {
            panic_any(CollectiveError {
                rank,
                phase: "collect",
                cause: FailureCause::Crash { rank },
            })
        });
        outputs.push(out);
        clocks_us.push(clock);
        metrics.push(m);
        traces.push(trace);
    }
    let latency_us = clocks_us.iter().cloned().fold(0.0f64, f64::max);
    RunReport {
        outputs,
        latency_us,
        clocks_us,
        metrics,
        wiretap,
        traces,
    }
}

/// Like [`run`], but tolerates ranks killed by an injected
/// [`Crash`](eag_netsim::Crash): crashed ranks contribute `None` outputs
/// (listed in [`CrashReport::crashed`]) and survivors' outputs are returned
/// as-is. Non-crash panics still poison the world and re-raise here.
pub fn run_crashable<T, F>(spec: &WorldSpec, f: F) -> CrashReport<T>
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    let (slots, wiretap) = run_world(spec, f);
    let mut outputs = Vec::with_capacity(slots.len());
    let mut clocks_us = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    let mut traces = Vec::with_capacity(slots.len());
    for (out, clock, m, trace) in slots {
        outputs.push(out);
        clocks_us.push(clock);
        metrics.push(m);
        traces.push(trace);
    }
    let crashed = outputs
        .iter()
        .enumerate()
        .filter_map(|(rank, out)| out.is_none().then_some(rank))
        .collect();
    let latency_us = clocks_us.iter().cloned().fold(0.0f64, f64::max);
    CrashReport {
        outputs,
        crashed,
        latency_us,
        clocks_us,
        metrics,
        wiretap,
        traces,
    }
}

/// Like [`run`], but returns a structured [`CollectiveError`] as a value
/// when a rank raised one (timeout, dead peer, authentication failure)
/// instead of panicking. Plain string panics (algorithm bugs) still
/// propagate as panics.
pub fn try_run<T, F>(spec: &WorldSpec, f: F) -> Result<RunReport<T>, CollectiveError>
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| run(spec, f))) {
        Ok(report) => Ok(report),
        Err(payload) => match payload.downcast::<CollectiveError>() {
            Ok(e) => Err(*e),
            Err(other) => resume_unwind(other),
        },
    }
}

/// Installs a panic hook that suppresses the backtraces of *expected*
/// panics: the structured [`CollectiveError`]s and internal crash payloads
/// that the runners throw and catch as part of normal fault-tolerant
/// operation. Any other panic still reaches the previously installed hook.
///
/// Call once from harness binaries (chaos/crash sweeps) whose happy path
/// unwinds hundreds of rank threads — without it the logs drown in
/// backtraces of panics that were recovered by design.
pub fn quiet_expected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        if payload.is::<CollectiveError>() || payload.is::<RankCrash>() {
            return;
        }
        prev(info);
    }));
}

/// Like [`run_crashable`], but returns a structured [`CollectiveError`] as
/// a value when a *survivor* raised one (e.g. its recovery path also failed)
/// instead of panicking. Plain string panics still propagate as panics.
pub fn try_run_crashable<T, F>(spec: &WorldSpec, f: F) -> Result<CrashReport<T>, CollectiveError>
where
    T: Send,
    F: Fn(&mut ProcCtx) -> T + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| run_crashable(spec, f))) {
        Ok(report) => Ok(report),
        Err(payload) => match payload.downcast::<CollectiveError>() {
            Ok(e) => Err(*e),
            Err(other) => resume_unwind(other),
        },
    }
}

#[cfg(test)]
#[path = "world_tests.rs"]
mod tests;
