//! Structured collective failures.
//!
//! When a rank cannot make progress — a peer died, every retry of a receive
//! timed out, or an encrypted frame failed authentication at its consumer —
//! the runtime raises a [`CollectiveError`] instead of hanging or aborting
//! with an opaque string. The error is carried as a panic payload through the
//! world's poison protocol (so every rank unwinds) and surfaced intact by
//! [`crate::world::try_run`], which downcasts it back out.

use eag_netsim::Rank;
use std::time::Duration;

/// Why a collective could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// A blocking receive exhausted its deadline (and, in chaos mode, its
    /// retry budget) without the expected message arriving.
    Timeout {
        /// Rank the message was expected from.
        src: Rank,
        /// Tag the receive was matching.
        tag: u64,
        /// Wall-clock time spent waiting.
        waited: Duration,
        /// Recovery attempts (NACKs) issued before giving up.
        attempts: u32,
    },
    /// The peer a receive was blocked on has already exited the world and
    /// will never send the awaited message.
    DeadPeer {
        /// The rank that exited.
        peer: Rank,
        /// Tag the receive was matching.
        tag: u64,
    },
    /// GCM authentication failed at the consumer of a sealed chunk: forged,
    /// corrupted, or relabeled ciphertext that the transport could not (or,
    /// for the unrecovered-adversary injection, must not) recover.
    AuthFailure {
        /// Human-readable detail from the crypto layer.
        detail: String,
    },
    /// A peer's process died mid-collective (crash notice from the runner,
    /// or heartbeat staleness for hard crashes). Unlike [`DeadPeer`] —
    /// a *clean* early exit — this failure is recoverable: survivors can
    /// agree on the failed set, shrink the group, and re-run degraded
    /// (see `recover_allgather` in `eag-core`).
    ///
    /// [`DeadPeer`]: FailureCause::DeadPeer
    Crash {
        /// The rank that died.
        rank: Rank,
    },
    /// A rank left the world without producing an output or raising any
    /// failure of its own — the runner found its result slot empty at
    /// collection time. This should be unreachable through the public
    /// runners; it replaces what used to be an opaque expect-panic.
    SilentExit {
        /// The rank whose output is missing.
        rank: Rank,
    },
    /// A session's retry budget ran dry: every allowed attempt of the
    /// collective failed, or the budget's hard deadline passed. Raised by
    /// the session layer (`Session::run_with_budget` in `eag-runtime`)
    /// so an exhausted tenant sees a typed error instead of a hang.
    BudgetExhausted {
        /// Collective attempts made before giving up.
        attempts: u32,
        /// Wall-clock time spent across all attempts and backoffs.
        elapsed: Duration,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Timeout {
                src,
                tag,
                waited,
                attempts,
            } => write!(
                f,
                "receive from rank {src} (tag {tag}) timed out after {waited:?} \
                 and {attempts} recovery attempt(s)"
            ),
            FailureCause::DeadPeer { peer, tag } => write!(
                f,
                "peer rank {peer} exited the world before sending the awaited \
                 message (tag {tag})"
            ),
            FailureCause::AuthFailure { detail } => {
                write!(f, "GCM authentication failed: {detail}")
            }
            FailureCause::Crash { rank } => {
                write!(f, "peer rank {rank} crashed mid-collective")
            }
            FailureCause::SilentExit { rank } => {
                write!(f, "rank {rank} exited without producing an output")
            }
            FailureCause::BudgetExhausted { attempts, elapsed } => write!(
                f,
                "session retry budget exhausted after {attempts} attempt(s) \
                 in {elapsed:?}"
            ),
        }
    }
}

/// A structured, rank-attributed collective failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveError {
    /// The rank that detected the failure.
    pub rank: Rank,
    /// The collective phase in force when it failed (set via
    /// [`crate::world::ProcCtx::set_phase`], e.g. the algorithm name).
    pub phase: &'static str,
    /// What went wrong.
    pub cause: FailureCause,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "collective failed on rank {} during {}: {}",
            self.rank, self.phase, self.cause
        )
    }
}

impl std::error::Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CollectiveError {
            rank: 3,
            phase: "o-ring",
            cause: FailureCause::DeadPeer { peer: 7, tag: 12 },
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("o-ring"));
        assert!(s.contains("rank 7"));

        let t = CollectiveError {
            rank: 0,
            phase: "collective",
            cause: FailureCause::Timeout {
                src: 1,
                tag: 9,
                waited: Duration::from_millis(250),
                attempts: 4,
            },
        }
        .to_string();
        assert!(t.contains("tag 9"));
        assert!(t.contains("4 recovery attempt"));

        let c = CollectiveError {
            rank: 2,
            phase: "O-Ring",
            cause: FailureCause::Crash { rank: 5 },
        }
        .to_string();
        assert!(c.contains("rank 5"));
        assert!(c.contains("crashed"));

        let b = CollectiveError {
            rank: 0,
            phase: "session-retry",
            cause: FailureCause::BudgetExhausted {
                attempts: 3,
                elapsed: Duration::from_millis(120),
            },
        }
        .to_string();
        assert!(b.contains("3 attempt"));
        assert!(b.contains("budget exhausted"));
    }

    #[test]
    fn error_round_trips_through_a_panic_payload() {
        let e = CollectiveError {
            rank: 1,
            phase: "test",
            cause: FailureCause::AuthFailure {
                detail: "tag mismatch".into(),
            },
        };
        let payload = std::panic::catch_unwind(|| {
            std::panic::panic_any(e.clone());
        })
        .unwrap_err();
        let back = payload
            .downcast_ref::<CollectiveError>()
            .expect("payload downcasts");
        assert_eq!(*back, e);
    }
}
