//! Node-local shared memory: deposit/fetch slots and a clock-synchronizing
//! barrier.
//!
//! The HS1/HS2 algorithms (paper Section IV-B) communicate *within* a node
//! through shared-memory plaintext/ciphertext buffers rather than message
//! passing. [`NodeShared`] models one node's shared segment: processes
//! deposit items into named slots, peers fetch them, and a node barrier
//! separates phases. In virtual time, a fetch completes no earlier than the
//! deposit's completion, and barriers align all participants' clocks.
//!
//! Slots are reference-counted: a deposit declares how many fetches will
//! consume it, items are shared via [`Arc`] (no deep copy per fetch), and
//! the slot self-removes when the last declared consumer has fetched it —
//! so the map is empty again after every collective instead of growing by
//! one generation of slots per `begin_collective` epoch.

use crate::payload::Item;
use eag_netsim::Rank;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A slot address inside a node's shared segment.
pub type SlotKey = (u64, usize); // (phase tag, index)

struct DepositedItem {
    item: Arc<Item>,
    /// Virtual time at which the deposit became visible.
    ready_us: f64,
    /// Fetches left before the slot self-removes.
    remaining: usize,
}

#[derive(Default)]
struct SlotMap {
    slots: HashMap<SlotKey, DepositedItem>,
}

struct BarrierState {
    generation: u64,
    arrived: usize,
    max_clock_us: f64,
    release_clock_us: f64,
}

/// One node's shared-memory segment.
pub struct NodeShared {
    participants: usize,
    slots: Mutex<SlotMap>,
    slots_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    poisoned: std::sync::atomic::AtomicBool,
    /// `rank + 1` of a sibling process that crashed mid-collective, or 0.
    /// Unlike poison this is recoverable: blocked `fetch`/`barrier` calls
    /// return `Err(rank)` so survivors can run the recovery protocol.
    crashed: AtomicUsize,
}

impl NodeShared {
    /// A segment shared by `participants` processes.
    pub fn new(participants: usize) -> Self {
        NodeShared {
            participants,
            slots: Mutex::new(SlotMap::default()),
            slots_cv: Condvar::new(),
            barrier: Mutex::new(BarrierState {
                generation: 0,
                arrived: 0,
                max_clock_us: 0.0,
                release_clock_us: 0.0,
            }),
            barrier_cv: Condvar::new(),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            crashed: AtomicUsize::new(0),
        }
    }

    /// Marks the segment poisoned (a sibling process panicked) and wakes all
    /// waiters so they can propagate the failure instead of deadlocking.
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.slots_cv.notify_all();
        self.barrier_cv.notify_all();
    }

    fn check_poison(&self) {
        if self.poisoned.load(std::sync::atomic::Ordering::SeqCst) {
            panic!("node shared segment poisoned: a sibling process panicked");
        }
    }

    /// Marks a sibling process as crashed (the node's OS observes local
    /// process death immediately, even for a hard crash) and wakes all
    /// waiters so blocked `fetch`/`barrier` calls return `Err(rank)`.
    pub fn crash_abort(&self, rank: Rank) {
        let _ = self
            .crashed
            .compare_exchange(0, rank + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.slots_cv.notify_all();
        self.barrier_cv.notify_all();
    }

    fn check_crash(&self) -> Result<(), Rank> {
        match self.crashed.load(Ordering::SeqCst) {
            0 => Ok(()),
            dead => Err(dead - 1),
        }
    }

    /// Number of processes sharing this segment.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Deposits `item` into `key`, visible from virtual time `ready_us` and
    /// consumed by exactly `consumers` fetches (after the last one the slot
    /// is removed). A deposit nobody will fetch (`consumers == 0`) is
    /// skipped outright. Panics if the slot is already occupied (phase tags
    /// must be unique).
    pub fn deposit(&self, key: SlotKey, item: Item, ready_us: f64, consumers: usize) {
        if consumers == 0 {
            return;
        }
        let mut slots = self.slots.lock();
        let prev = slots.slots.insert(
            key,
            DepositedItem {
                item: Arc::new(item),
                ready_us,
                remaining: consumers,
            },
        );
        assert!(prev.is_none(), "shared-memory slot {key:?} deposited twice");
        drop(slots);
        self.slots_cv.notify_all();
    }

    /// Fetches the item in `key`, blocking until deposited. Returns a shared
    /// handle to the item (no deep copy) and the virtual time it became
    /// visible. The last declared consumer removes the slot and receives the
    /// map's own `Arc` — then sole ownership, so `Arc::try_unwrap` gives the
    /// item back without any copy at all. Returns `Err(rank)` if a sibling
    /// process on this node crashed: its deposits may never arrive, so the
    /// whole segment fails fast once [`crash_abort`](Self::crash_abort) ran.
    pub fn fetch(&self, key: SlotKey) -> Result<(Arc<Item>, f64), Rank> {
        let mut slots = self.slots.lock();
        loop {
            self.check_poison();
            self.check_crash()?;
            if let Some(d) = slots.slots.get_mut(&key) {
                debug_assert!(d.remaining > 0);
                d.remaining -= 1;
                return if d.remaining == 0 {
                    let d = slots.slots.remove(&key).expect("slot present");
                    Ok((d.item, d.ready_us))
                } else {
                    Ok((Arc::clone(&d.item), d.ready_us))
                };
            }
            self.slots_cv.wait(&mut slots);
        }
    }

    /// Removes the item in `key` if present, regardless of outstanding
    /// consumer count (cleanup between phases).
    pub fn take(&self, key: SlotKey) -> Option<Arc<Item>> {
        self.slots.lock().slots.remove(&key).map(|d| d.item)
    }

    /// Number of live (not yet fully consumed) slots — 0 after a correctly
    /// consumer-counted collective completes.
    pub fn len(&self) -> usize {
        self.slots.lock().slots.len()
    }

    /// Whether the slot map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node barrier: blocks until all participants arrive, and returns the
    /// common release clock = max(arrival clocks) + `barrier_cost_us`.
    /// Returns `Err(rank)` if a sibling process on this node crashed — the
    /// barrier would never release, so waiters fail fast instead.
    pub fn barrier(&self, my_clock_us: f64, barrier_cost_us: f64) -> Result<f64, Rank> {
        let mut st = self.barrier.lock();
        self.check_crash()?;
        let gen = st.generation;
        st.max_clock_us = st.max_clock_us.max(my_clock_us);
        st.arrived += 1;
        if st.arrived == self.participants {
            st.release_clock_us = st.max_clock_us + barrier_cost_us;
            st.generation += 1;
            st.arrived = 0;
            st.max_clock_us = 0.0;
            let release = st.release_clock_us;
            drop(st);
            self.barrier_cv.notify_all();
            Ok(release)
        } else {
            while st.generation == gen {
                self.check_poison();
                self.check_crash()?;
                self.barrier_cv.wait(&mut st);
            }
            Ok(st.release_clock_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Chunk, Data};

    fn item(v: u8) -> Item {
        Item::Plain(Chunk::single(0, Data::Real(vec![v; 4].into())))
    }

    #[test]
    fn deposit_then_fetch() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(7), 5.0, 1);
        let (got, ready) = sh.fetch((1, 0)).unwrap();
        assert_eq!(*got, item(7));
        assert_eq!(ready, 5.0);
    }

    #[test]
    fn fetch_blocks_until_deposit() {
        let sh = Arc::new(NodeShared::new(2));
        let sh2 = Arc::clone(&sh);
        let handle = std::thread::spawn(move || (*sh2.fetch((9, 3)).unwrap().0).clone());
        std::thread::sleep(std::time::Duration::from_millis(20));
        sh.deposit((9, 3), item(1), 0.0, 1);
        assert_eq!(handle.join().unwrap(), item(1));
    }

    #[test]
    #[should_panic(expected = "deposited twice")]
    fn double_deposit_panics() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(1), 0.0, 2);
        sh.deposit((1, 0), item(2), 0.0, 2);
    }

    #[test]
    fn take_removes_slot() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(1), 0.0, 5);
        assert!(sh.take((1, 0)).is_some());
        assert!(sh.take((1, 0)).is_none());
        assert!(sh.is_empty());
    }

    #[test]
    fn slot_self_removes_after_declared_consumers() {
        let sh = NodeShared::new(3);
        sh.deposit((2, 1), item(9), 1.0, 3);
        assert_eq!(sh.len(), 1);
        let (a, _) = sh.fetch((2, 1)).unwrap();
        let (b, _) = sh.fetch((2, 1)).unwrap();
        assert_eq!(sh.len(), 1, "slot must survive until the last consumer");
        let (c, _) = sh.fetch((2, 1)).unwrap();
        assert!(sh.is_empty(), "last consumer removes the slot");
        assert_eq!(*a, *b);
        drop((a, b));
        // The final fetch got the map's own Arc: with the earlier handles
        // dropped it is sole owner, so the item comes back copy-free.
        assert!(Arc::try_unwrap(c).is_ok());
    }

    #[test]
    fn zero_consumer_deposit_is_skipped() {
        let sh = NodeShared::new(1);
        sh.deposit((3, 0), item(4), 0.0, 0);
        assert!(sh.is_empty());
    }

    #[test]
    fn fetches_share_one_allocation() {
        let sh = NodeShared::new(2);
        sh.deposit((4, 0), item(6), 0.0, 2);
        let (a, _) = sh.fetch((4, 0)).unwrap();
        let (b, _) = sh.fetch((4, 0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "fetches must not deep-clone the item");
    }

    #[test]
    fn barrier_aligns_clocks_to_max() {
        let sh = Arc::new(NodeShared::new(3));
        let clocks = [3.0, 10.0, 7.0];
        let mut handles = Vec::new();
        for &c in &clocks {
            let sh = Arc::clone(&sh);
            handles.push(std::thread::spawn(move || sh.barrier(c, 0.5).unwrap()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 10.5);
        }
    }

    #[test]
    fn crash_abort_unblocks_fetch_and_barrier() {
        let sh = Arc::new(NodeShared::new(2));
        let f = {
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || sh.fetch((5, 0)))
        };
        let b = {
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || sh.barrier(1.0, 0.0))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        sh.crash_abort(1);
        assert_eq!(f.join().unwrap(), Err(1));
        assert_eq!(b.join().unwrap(), Err(1));
        // Later calls fail fast too — the segment stays dead.
        assert_eq!(sh.fetch((5, 0)), Err(1));
        assert_eq!(sh.barrier(2.0, 0.0), Err(1));
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sh = Arc::new(NodeShared::new(2));
        for round in 0..3 {
            let sh2 = Arc::clone(&sh);
            let base = round as f64 * 100.0;
            let h = std::thread::spawn(move || sh2.barrier(base + 1.0, 0.0).unwrap());
            let mine = sh.barrier(base + 2.0, 0.0).unwrap();
            assert_eq!(mine, base + 2.0);
            assert_eq!(h.join().unwrap(), base + 2.0);
        }
    }
}
