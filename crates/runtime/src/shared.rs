//! Node-local shared memory: deposit/fetch slots and a clock-synchronizing
//! barrier.
//!
//! The HS1/HS2 algorithms (paper Section IV-B) communicate *within* a node
//! through shared-memory plaintext/ciphertext buffers rather than message
//! passing. [`NodeShared`] models one node's shared segment: processes
//! deposit items into named slots, peers fetch them, and a node barrier
//! separates phases. In virtual time, a fetch completes no earlier than the
//! deposit's completion, and barriers align all participants' clocks.

use crate::payload::Item;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// A slot address inside a node's shared segment.
pub type SlotKey = (u64, usize); // (phase tag, index)

struct DepositedItem {
    item: Item,
    /// Virtual time at which the deposit became visible.
    ready_us: f64,
}

#[derive(Default)]
struct SlotMap {
    slots: HashMap<SlotKey, DepositedItem>,
}

struct BarrierState {
    generation: u64,
    arrived: usize,
    max_clock_us: f64,
    release_clock_us: f64,
}

/// One node's shared-memory segment.
pub struct NodeShared {
    participants: usize,
    slots: Mutex<SlotMap>,
    slots_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    poisoned: std::sync::atomic::AtomicBool,
}

impl NodeShared {
    /// A segment shared by `participants` processes.
    pub fn new(participants: usize) -> Self {
        NodeShared {
            participants,
            slots: Mutex::new(SlotMap::default()),
            slots_cv: Condvar::new(),
            barrier: Mutex::new(BarrierState {
                generation: 0,
                arrived: 0,
                max_clock_us: 0.0,
                release_clock_us: 0.0,
            }),
            barrier_cv: Condvar::new(),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Marks the segment poisoned (a sibling process panicked) and wakes all
    /// waiters so they can propagate the failure instead of deadlocking.
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.slots_cv.notify_all();
        self.barrier_cv.notify_all();
    }

    fn check_poison(&self) {
        if self.poisoned.load(std::sync::atomic::Ordering::SeqCst) {
            panic!("node shared segment poisoned: a sibling process panicked");
        }
    }

    /// Number of processes sharing this segment.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Deposits `item` into `key`, visible from virtual time `ready_us`.
    /// Panics if the slot is already occupied (phase tags must be unique).
    pub fn deposit(&self, key: SlotKey, item: Item, ready_us: f64) {
        let mut slots = self.slots.lock();
        let prev = slots.slots.insert(key, DepositedItem { item, ready_us });
        assert!(prev.is_none(), "shared-memory slot {key:?} deposited twice");
        drop(slots);
        self.slots_cv.notify_all();
    }

    /// Fetches (clones) the item in `key`, blocking until deposited.
    /// Returns the item and the virtual time it became visible.
    pub fn fetch(&self, key: SlotKey) -> (Item, f64) {
        let mut slots = self.slots.lock();
        loop {
            self.check_poison();
            if let Some(d) = slots.slots.get(&key) {
                return (d.item.clone(), d.ready_us);
            }
            self.slots_cv.wait(&mut slots);
        }
    }

    /// Removes the item in `key` if present (cleanup between phases).
    pub fn take(&self, key: SlotKey) -> Option<Item> {
        self.slots.lock().slots.remove(&key).map(|d| d.item)
    }

    /// Node barrier: blocks until all participants arrive, and returns the
    /// common release clock = max(arrival clocks) + `barrier_cost_us`.
    pub fn barrier(&self, my_clock_us: f64, barrier_cost_us: f64) -> f64 {
        let mut st = self.barrier.lock();
        let gen = st.generation;
        st.max_clock_us = st.max_clock_us.max(my_clock_us);
        st.arrived += 1;
        if st.arrived == self.participants {
            st.release_clock_us = st.max_clock_us + barrier_cost_us;
            st.generation += 1;
            st.arrived = 0;
            st.max_clock_us = 0.0;
            let release = st.release_clock_us;
            drop(st);
            self.barrier_cv.notify_all();
            release
        } else {
            while st.generation == gen {
                self.check_poison();
                self.barrier_cv.wait(&mut st);
            }
            st.release_clock_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Chunk, Data};
    use std::sync::Arc;

    fn item(v: u8) -> Item {
        Item::Plain(Chunk::single(0, Data::Real(vec![v; 4])))
    }

    #[test]
    fn deposit_then_fetch() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(7), 5.0);
        let (got, ready) = sh.fetch((1, 0));
        assert_eq!(got, item(7));
        assert_eq!(ready, 5.0);
    }

    #[test]
    fn fetch_blocks_until_deposit() {
        let sh = Arc::new(NodeShared::new(2));
        let sh2 = Arc::clone(&sh);
        let handle = std::thread::spawn(move || sh2.fetch((9, 3)).0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        sh.deposit((9, 3), item(1), 0.0);
        assert_eq!(handle.join().unwrap(), item(1));
    }

    #[test]
    #[should_panic(expected = "deposited twice")]
    fn double_deposit_panics() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(1), 0.0);
        sh.deposit((1, 0), item(2), 0.0);
    }

    #[test]
    fn take_removes_slot() {
        let sh = NodeShared::new(1);
        sh.deposit((1, 0), item(1), 0.0);
        assert!(sh.take((1, 0)).is_some());
        assert!(sh.take((1, 0)).is_none());
    }

    #[test]
    fn barrier_aligns_clocks_to_max() {
        let sh = Arc::new(NodeShared::new(3));
        let clocks = [3.0, 10.0, 7.0];
        let mut handles = Vec::new();
        for &c in &clocks {
            let sh = Arc::clone(&sh);
            handles.push(std::thread::spawn(move || sh.barrier(c, 0.5)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 10.5);
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sh = Arc::new(NodeShared::new(2));
        for round in 0..3 {
            let sh2 = Arc::clone(&sh);
            let base = round as f64 * 100.0;
            let h = std::thread::spawn(move || sh2.barrier(base + 1.0, 0.0));
            let mine = sh.barrier(base + 2.0, 0.0);
            assert_eq!(mine, base + 2.0);
            assert_eq!(h.join().unwrap(), base + 2.0);
        }
    }
}
