//! Virtual-time event tracing.
//!
//! When enabled, every rank records what it did and when (in virtual time):
//! sends, receives, crypto operations, copies, and barriers. Traces feed the
//! overlap analyses in tests and can be rendered as a per-rank ASCII
//! timeline for debugging algorithm schedules.

use eag_crypto::CipherSuite;
use eag_netsim::{FaultKind, LinkClass, Rank};

/// What a traced interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Transmitting a message (occupancy on the sender).
    Send {
        /// Destination rank.
        dst: Rank,
        /// Wire bytes.
        bytes: usize,
        /// Link class traversed.
        link: LinkClass,
    },
    /// Waiting for and receiving a message.
    Recv {
        /// Source rank.
        src: Rank,
        /// Wire bytes.
        bytes: usize,
    },
    /// Encrypting (sealing) plaintext.
    Encrypt {
        /// Plaintext bytes.
        bytes: usize,
    },
    /// Decrypting (opening) a ciphertext.
    Decrypt {
        /// Plaintext bytes recovered.
        bytes: usize,
    },
    /// A memory copy (shared-memory deposit/fetch or user-buffer placement).
    Copy {
        /// Bytes moved.
        bytes: usize,
    },
    /// A node-local barrier.
    Barrier,
    /// A fault injected into an outgoing frame (chaos runs only).
    /// Zero-duration marker: faults perturb the wire, not the clock.
    Fault {
        /// The kind of perturbation injected.
        kind: FaultKind,
        /// Destination of the perturbed frame.
        dst: Rank,
    },
    /// A recovery action: a NACK issued by a receiver (`attempt` counts the
    /// receive's retry round) or a frame retransmitted by a sender
    /// (`attempt` counts that frame's transmissions). Zero-duration marker.
    Retry {
        /// The peer the NACK was sent to / the retransmission went to.
        peer: Rank,
        /// Tag of the affected message stream.
        tag: u64,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A rank died mid-collective. Recorded on the dying rank at its point
    /// of death, and on each survivor when its failure detector notices.
    /// Zero-duration marker.
    Crash {
        /// The rank that died.
        rank: Rank,
    },
    /// A survivor entered degraded recovery: the failed set was agreed and
    /// the collective re-runs over the shrunk group. Zero-duration marker.
    Recover {
        /// Number of surviving ranks in the shrunk group.
        survivors: usize,
    },
    /// The cipher suite this rank's transport seals frames under. Recorded
    /// once per rank at virtual time zero. Zero-duration marker.
    Suite {
        /// The configured suite.
        suite: CipherSuite,
    },
}

impl EventKind {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Encrypt { .. } => "enc",
            EventKind::Decrypt { .. } => "dec",
            EventKind::Copy { .. } => "copy",
            EventKind::Barrier => "barrier",
            EventKind::Fault { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::Crash { .. } => "crash",
            EventKind::Recover { .. } => "recover",
            EventKind::Suite { .. } => "suite",
        }
    }
}

/// One traced interval on one rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time the activity started, µs.
    pub start_us: f64,
    /// Virtual time it ended, µs (clock value after the operation).
    pub end_us: f64,
    /// What the interval was spent on.
    pub kind: EventKind,
}

impl Event {
    /// Interval length in µs.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// A rank's recorded timeline.
pub type Trace = Vec<Event>;

/// Summed busy time per activity class: (send, recv-wait, enc, dec, copy,
/// barrier-wait) in µs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyBreakdown {
    /// Transmission occupancy.
    pub send_us: f64,
    /// Receive waits (includes blocking on slower peers).
    pub recv_us: f64,
    /// Encryption time.
    pub enc_us: f64,
    /// Decryption time.
    pub dec_us: f64,
    /// Copy time.
    pub copy_us: f64,
    /// Barrier waits.
    pub barrier_us: f64,
}

impl BusyBreakdown {
    /// Aggregates a trace.
    pub fn of(trace: &Trace) -> BusyBreakdown {
        let mut b = BusyBreakdown::default();
        for e in trace {
            let d = e.duration_us();
            match e.kind {
                EventKind::Send { .. } => b.send_us += d,
                EventKind::Recv { .. } => b.recv_us += d,
                EventKind::Encrypt { .. } => b.enc_us += d,
                EventKind::Decrypt { .. } => b.dec_us += d,
                EventKind::Copy { .. } => b.copy_us += d,
                EventKind::Barrier => b.barrier_us += d,
                // Zero-duration markers: no busy time to attribute.
                EventKind::Fault { .. }
                | EventKind::Retry { .. }
                | EventKind::Crash { .. }
                | EventKind::Recover { .. }
                | EventKind::Suite { .. } => {}
            }
        }
        b
    }

    /// Total accounted time.
    pub fn total_us(&self) -> f64 {
        self.send_us + self.recv_us + self.enc_us + self.dec_us + self.copy_us + self.barrier_us
    }
}

/// Renders per-rank timelines as an ASCII Gantt chart (one row per rank,
/// `cols` character cells across the full duration).
pub fn render_gantt(traces: &[Trace], cols: usize) -> String {
    let horizon = traces
        .iter()
        .flat_map(|t| t.iter().map(|e| e.end_us))
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let glyph = |kind: &EventKind| match kind {
        EventKind::Send { .. } => 'S',
        EventKind::Recv { .. } => 'r',
        EventKind::Encrypt { .. } => 'E',
        EventKind::Decrypt { .. } => 'D',
        EventKind::Copy { .. } => 'c',
        EventKind::Barrier => '|',
        EventKind::Fault { .. } => 'X',
        EventKind::Retry { .. } => 'R',
        EventKind::Crash { .. } => '#',
        EventKind::Recover { .. } => '+',
        EventKind::Suite { .. } => '@',
    };
    let mut out = String::new();
    out.push_str(&format!(
        "virtual time 0 .. {horizon:.2} µs ({cols} cells; S=send r=recv E=encrypt \
         D=decrypt c=copy |=barrier X=fault R=retry #=crash +=recover @=suite)\n"
    ));
    for (rank, trace) in traces.iter().enumerate() {
        let mut row = vec!['.'; cols];
        // Two passes: intervals first, then zero-duration markers
        // (Fault/Retry), so a marker is never hidden under the interval that
        // starts at the same instant (a faulted send begins exactly at the
        // fault's timestamp).
        let is_marker = |e: &Event| {
            matches!(
                e.kind,
                EventKind::Fault { .. }
                    | EventKind::Retry { .. }
                    | EventKind::Crash { .. }
                    | EventKind::Recover { .. }
                    | EventKind::Suite { .. }
            )
        };
        for e in trace
            .iter()
            .filter(|e| !is_marker(e))
            .chain(trace.iter().filter(|e| is_marker(e)))
        {
            let a = (((e.start_us / horizon) * cols as f64).floor() as usize)
                .min(cols.saturating_sub(1));
            // Paint at least one cell: a zero-duration event whose start
            // lands exactly on a cell boundary has floor(start) ==
            // ceil(end) and would otherwise vanish from the chart.
            let b = ((((e.end_us / horizon) * cols as f64).ceil() as usize).min(cols)).max(a + 1);
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = glyph(&e.kind);
            }
        }
        out.push_str(&format!("rank {rank:>4} "));
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Serializes traces in the Chrome Trace Event format (the JSON accepted by
/// `chrome://tracing` and Perfetto): one complete ("X") event per traced
/// interval, one "thread" per rank. Timestamps are the virtual clocks in µs.
pub fn to_chrome_trace(traces: &[Trace]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[");
    let mut first = true;
    for (rank, trace) in traces.iter().enumerate() {
        for e in trace {
            if !first {
                out.push(',');
            }
            first = false;
            let args = match e.kind {
                EventKind::Send { dst, bytes, link } => {
                    format!("{{\"dst\":{dst},\"bytes\":{bytes},\"link\":\"{link:?}\"}}")
                }
                EventKind::Recv { src, bytes } => {
                    format!("{{\"src\":{src},\"bytes\":{bytes}}}")
                }
                EventKind::Encrypt { bytes }
                | EventKind::Decrypt { bytes }
                | EventKind::Copy { bytes } => format!("{{\"bytes\":{bytes}}}"),
                EventKind::Barrier => "{}".to_string(),
                EventKind::Fault { kind, dst } => {
                    format!("{{\"kind\":\"{}\",\"dst\":{dst}}}", kind.label())
                }
                EventKind::Retry { peer, tag, attempt } => {
                    format!("{{\"peer\":{peer},\"tag\":{tag},\"attempt\":{attempt}}}")
                }
                EventKind::Crash { rank } => format!("{{\"rank\":{rank}}}"),
                EventKind::Recover { survivors } => {
                    format!("{{\"survivors\":{survivors}}}")
                }
                EventKind::Suite { suite } => format!("{{\"suite\":\"{suite}\"}}"),
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{rank},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{args}}}",
                esc(e.kind.label()),
                e.start_us,
                e.duration_us().max(0.0),
            ));
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, end: f64, kind: EventKind) -> Event {
        Event {
            start_us: start,
            end_us: end,
            kind,
        }
    }

    #[test]
    fn breakdown_sums_by_class() {
        let trace = vec![
            ev(0.0, 2.0, EventKind::Encrypt { bytes: 10 }),
            ev(
                2.0,
                5.0,
                EventKind::Send {
                    dst: 1,
                    bytes: 10,
                    link: LinkClass::Inter,
                },
            ),
            ev(5.0, 9.0, EventKind::Recv { src: 1, bytes: 10 }),
            ev(9.0, 10.0, EventKind::Decrypt { bytes: 10 }),
        ];
        let b = BusyBreakdown::of(&trace);
        assert_eq!(b.enc_us, 2.0);
        assert_eq!(b.send_us, 3.0);
        assert_eq!(b.recv_us, 4.0);
        assert_eq!(b.dec_us, 1.0);
        assert_eq!(b.total_us(), 10.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let traces = vec![
            vec![ev(0.0, 5.0, EventKind::Encrypt { bytes: 1 })],
            vec![ev(5.0, 10.0, EventKind::Recv { src: 0, bytes: 1 })],
        ];
        let s = render_gantt(&traces, 10);
        assert!(s.contains("rank    0"));
        assert!(s.contains('E'));
        assert!(s.contains('r'));
    }

    #[test]
    fn gantt_handles_empty() {
        assert_eq!(render_gantt(&[], 10), "(empty trace)\n");
    }

    #[test]
    fn gantt_keeps_zero_duration_marker_on_cell_boundary() {
        // A fault at t=5 of horizon 10 with 10 cells lands exactly on the
        // boundary between cells 4 and 5: floor(5/10*10) == ceil(5/10*10)
        // == 5, so the unclamped painter dropped the marker entirely.
        let traces = vec![vec![
            ev(0.0, 10.0, EventKind::Recv { src: 1, bytes: 8 }),
            ev(
                5.0,
                5.0,
                EventKind::Fault {
                    kind: FaultKind::Drop,
                    dst: 1,
                },
            ),
        ]];
        let s = render_gantt(&traces, 10);
        assert!(s.contains('X'), "fault marker missing:\n{s}");
    }

    #[test]
    fn gantt_marker_at_horizon_end_stays_in_bounds() {
        // Zero-duration retry exactly at the horizon: must clamp into the
        // last cell instead of painting past the row (or not at all).
        let traces = vec![vec![
            ev(0.0, 10.0, EventKind::Barrier),
            ev(
                10.0,
                10.0,
                EventKind::Retry {
                    peer: 0,
                    tag: 1,
                    attempt: 1,
                },
            ),
        ]];
        let s = render_gantt(&traces, 10);
        let row = s.lines().nth(1).unwrap();
        assert!(row.ends_with('R'), "retry marker not in last cell: {row:?}");
    }

    #[test]
    fn gantt_marker_not_hidden_under_coincident_interval() {
        // The faulted send starts at the fault's own timestamp; the marker
        // must still be visible (painted after intervals).
        let traces = vec![vec![
            ev(
                2.0,
                2.0,
                EventKind::Fault {
                    kind: FaultKind::Tamper,
                    dst: 1,
                },
            ),
            ev(
                2.0,
                8.0,
                EventKind::Send {
                    dst: 1,
                    bytes: 64,
                    link: LinkClass::Intra,
                },
            ),
        ]];
        let s = render_gantt(&traces, 10);
        assert!(s.contains('X'), "fault hidden under send:\n{s}");
        assert!(s.contains('S'));
    }

    #[test]
    fn gantt_paints_crash_and_recover_markers() {
        // A crash at the very end of rank 1's timeline and a recover marker
        // mid-way through rank 0's: both zero-duration, both must survive
        // the two-pass painter (crash lands on the horizon boundary).
        let traces = vec![
            vec![
                ev(0.0, 10.0, EventKind::Recv { src: 1, bytes: 8 }),
                ev(6.0, 6.0, EventKind::Recover { survivors: 3 }),
            ],
            vec![
                ev(
                    0.0,
                    4.0,
                    EventKind::Send {
                        dst: 0,
                        bytes: 8,
                        link: LinkClass::Inter,
                    },
                ),
                ev(4.0, 4.0, EventKind::Crash { rank: 1 }),
            ],
        ];
        let s = render_gantt(&traces, 10);
        assert!(s.contains('#'), "crash marker missing:\n{s}");
        assert!(s.contains('+'), "recover marker missing:\n{s}");
        assert!(s.contains("#=crash"), "legend missing crash glyph:\n{s}");
    }

    #[test]
    fn crash_and_recover_markers_carry_no_busy_time() {
        let trace = vec![
            ev(1.0, 1.0, EventKind::Crash { rank: 2 }),
            ev(2.0, 2.0, EventKind::Recover { survivors: 7 }),
        ];
        assert_eq!(BusyBreakdown::of(&trace).total_us(), 0.0);
        let json = to_chrome_trace(&[trace]);
        assert!(json.contains("\"name\":\"crash\""));
        assert!(json.contains("\"rank\":2"));
        assert!(json.contains("\"survivors\":7"));
    }

    #[test]
    fn suite_marker_is_zero_cost_and_rendered() {
        let trace = vec![
            ev(
                0.0,
                0.0,
                EventKind::Suite {
                    suite: CipherSuite::AesGcmSiv128,
                },
            ),
            ev(0.0, 4.0, EventKind::Encrypt { bytes: 32 }),
        ];
        assert_eq!(BusyBreakdown::of(&trace).total_us(), 4.0);
        let s = render_gantt(std::slice::from_ref(&trace), 10);
        assert!(s.contains('@'), "suite marker missing:\n{s}");
        let json = to_chrome_trace(&[trace]);
        assert!(json.contains("\"suite\":\"aes-gcm-siv\""));
    }

    #[test]
    fn labels() {
        assert_eq!(EventKind::Barrier.label(), "barrier");
        assert_eq!(EventKind::Encrypt { bytes: 0 }.label(), "enc");
        assert_eq!(
            EventKind::Fault {
                kind: FaultKind::Drop,
                dst: 1
            }
            .label(),
            "fault"
        );
        assert_eq!(
            EventKind::Retry {
                peer: 0,
                tag: 7,
                attempt: 1
            }
            .label(),
            "retry"
        );
    }

    #[test]
    fn fault_and_retry_markers_carry_no_busy_time() {
        let trace = vec![
            ev(
                1.0,
                1.0,
                EventKind::Fault {
                    kind: FaultKind::Tamper,
                    dst: 2,
                },
            ),
            ev(
                2.0,
                2.0,
                EventKind::Retry {
                    peer: 2,
                    tag: 4,
                    attempt: 1,
                },
            ),
        ];
        assert_eq!(BusyBreakdown::of(&trace).total_us(), 0.0);
        let json = to_chrome_trace(&[trace]);
        assert!(json.contains("\"kind\":\"tamper\""));
        assert!(json.contains("\"attempt\":1"));
    }
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_trace_is_wellformed() {
        let traces = vec![
            vec![Event {
                start_us: 0.0,
                end_us: 2.5,
                kind: EventKind::Encrypt { bytes: 64 },
            }],
            vec![Event {
                start_us: 1.0,
                end_us: 3.0,
                kind: EventKind::Send {
                    dst: 0,
                    bytes: 92,
                    link: LinkClass::Inter,
                },
            }],
        ];
        let json = to_chrome_trace(&traces);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"enc\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"dur\":2.000"));
        // Balanced braces (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn chrome_trace_empty() {
        assert_eq!(to_chrome_trace(&[]), "[]");
    }
}
