//! Tests for the world: basic messaging/pricing semantics plus the chaos
//! transport (fault injection, NACK recovery, dedup, typed failures).

use super::*;
use eag_netsim::{profile, Crash, Mapping};

fn spec(p: usize, nodes: usize) -> WorldSpec {
    WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::unit(),
        DataMode::Real { seed: 1 },
    )
}

/// `Result::expect_err` without requiring `Debug` on the report.
fn unwrap_err<T>(r: Result<RunReport<T>, CollectiveError>, msg: &str) -> CollectiveError {
    match r {
        Err(e) => e,
        Ok(_) => panic!("{msg}"),
    }
}

/// A fast retry policy so chaos tests converge in milliseconds.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_millis(10),
        max_attempts: 8,
        backoff: 1.5,
    }
}

/// Satellite-1 regression: two concurrent worlds handed the *same* gate
/// must together never run more ranks than the gate's width. Before the
/// shared gate existed, each world built its own
/// `available_parallelism()`-wide pool, so N sessions oversubscribed the
/// host N×.
#[test]
fn shared_gate_bounds_ranks_across_concurrent_worlds() {
    use std::sync::atomic::AtomicUsize;

    let gate = Arc::new(RunGate::new(2));
    let running = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let worlds: Vec<_> = (0..3)
        .map(|w| {
            let mut s = spec(4, 2);
            s.gate = Some(Arc::clone(&gate));
            s.session_id = w as u64;
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                run(&s, move |ctx| {
                    // Occupy the permit for a visible wall-clock window so
                    // the worlds genuinely overlap.
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                    running.fetch_sub(1, Ordering::SeqCst);
                    ctx.rank()
                })
            })
        })
        .collect();
    for (w, handle) in worlds.into_iter().enumerate() {
        let report = handle.join().unwrap();
        assert_eq!(report.outputs, vec![0, 1, 2, 3], "world {w} outputs");
    }
    let peak = peak.load(Ordering::SeqCst);
    assert!(
        peak <= 2,
        "shared gate must bound total running ranks across worlds; peak was {peak}"
    );
}

/// Default-configured specs (no explicit workers, no explicit gate) all
/// resolve to the one process-global gate.
#[test]
fn default_specs_share_the_global_gate() {
    let a = resolve_gate(&spec(2, 1));
    let b = resolve_gate(&spec(8, 2));
    assert!(Arc::ptr_eq(&a, &b), "default worlds must share one gate");
    assert!(Arc::ptr_eq(&a, &RunGate::global()));
    // An explicit worker count still gets a private gate of that width.
    let mut pinned = spec(2, 1);
    pinned.workers = Some(1);
    let g = resolve_gate(&pinned);
    assert!(!Arc::ptr_eq(&g, &a));
    assert_eq!(g.width(), 1);
}

#[test]
fn ranks_see_their_identity() {
    let report = run(&spec(4, 2), |ctx| (ctx.rank(), ctx.node()));
    assert_eq!(report.outputs, vec![(0, 0), (1, 0), (2, 1), (3, 1)]);
}

#[test]
fn simple_exchange_moves_data_and_clock() {
    // Rank 0 sends 10 bytes to rank 1 (intra-node in a 2x1 world).
    let report = run(&spec(2, 1), |ctx| {
        if ctx.rank() == 0 {
            let chunk = ctx.my_block(10);
            ctx.send(1, 1, Parcel::one(Item::Plain(chunk)));
            Vec::new()
        } else {
            let parcel = ctx.recv(0, 1);
            parcel.items[0].clone().into_plain().data.to_vec()
        }
    });
    assert_eq!(report.outputs[1], crate::payload::pattern_block(1, 0, 10));
    // Unit model: sender occupied 10 B / 1 B/µs = 10 µs; arrival 11 µs.
    assert_eq!(report.clocks_us[0], 10.0);
    assert_eq!(report.clocks_us[1], 11.0);
    assert_eq!(report.latency_us, 11.0);
    assert_eq!(report.metrics[1].comm_rounds, 1);
    assert_eq!(report.metrics[0].bytes_sent, 10);
}

#[test]
fn encrypt_decrypt_roundtrip_real_mode() {
    let report = run(&spec(1, 1), |ctx| {
        let chunk = ctx.my_block(100);
        let expected = chunk.data.to_vec();
        let sealed = ctx.encrypt(chunk);
        assert_eq!(sealed.wire_len(), 128);
        let back = ctx.decrypt(sealed);
        (expected, back.data.to_vec())
    });
    let (expected, got) = &report.outputs[0];
    assert_eq!(expected, got);
    // Unit crypto: (1 + 100) each way.
    assert_eq!(report.latency_us, 202.0);
    assert_eq!(report.metrics[0].enc_rounds, 1);
    assert_eq!(report.metrics[0].dec_bytes, 100);
}

#[test]
fn phantom_mode_tracks_lengths() {
    let mut s = spec(2, 2);
    s.mode = DataMode::Phantom;
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            let sealed = ctx.encrypt(ctx.my_block(50));
            ctx.send(1, 7, Parcel::one(Item::Sealed(sealed)));
            0
        } else {
            let parcel = ctx.recv(0, 7);
            let sealed = parcel.items[0].clone().into_sealed();
            let chunk = ctx.decrypt(sealed);
            chunk.data.len()
        }
    });
    assert_eq!(report.outputs[1], 50);
    assert_eq!(report.wiretap.frame_count(), 1);
    assert_eq!(report.wiretap.frames()[0].len, 78);
}

#[test]
fn inter_node_frames_are_captured() {
    let mut s = spec(2, 2);
    s.capture_wire = true;
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            let sealed = ctx.encrypt(ctx.my_block(16));
            ctx.send(1, 3, Parcel::one(Item::Sealed(sealed)));
        } else {
            let _ = ctx.recv(0, 3);
        }
    });
    assert_eq!(report.wiretap.frame_count(), 1);
    let frames = report.wiretap.frames();
    assert_eq!(frames[0].kind, FrameKind::Cipher);
    assert_eq!(frames[0].bytes.len(), 16 + WIRE_OVERHEAD);
    // The plaintext pattern must not appear in the captured frame.
    let pt = crate::payload::pattern_block(1, 0, 16);
    assert!(!report.wiretap.contains(&pt));
}

#[test]
fn intra_node_frames_are_not_captured() {
    let report = run(&spec(2, 1), |ctx| {
        if ctx.rank() == 0 {
            let chunk = ctx.my_block(16);
            ctx.send(1, 3, Parcel::one(Item::Plain(chunk)));
        } else {
            let _ = ctx.recv(0, 3);
        }
    });
    assert_eq!(report.wiretap.frame_count(), 0);
}

#[test]
fn sendrecv_pairs_exchange() {
    let report = run(&spec(2, 1), |ctx| {
        let peer = 1 - ctx.rank();
        let mine = ctx.my_block(8);
        let got = ctx.sendrecv(peer, peer, 5, Parcel::one(Item::Plain(mine)));
        got.items[0].origins()[0]
    });
    assert_eq!(report.outputs, vec![1, 0]);
}

#[test]
fn shared_memory_deposit_fetch_and_barrier() {
    let report = run(&spec(2, 1), |ctx| {
        if (ctx.rank()) == 0 {
            let item = Item::Plain(ctx.my_block(4));
            ctx.shared_deposit((1, 0), item, 2);
        }
        ctx.node_barrier();
        let got = ctx.shared_fetch((1, 0));
        ctx.node_barrier();
        (got.origins()[0], ctx.shared_slots_len())
    });
    // Both ranks got rank 0's block, and the slot self-removed after its
    // last declared consumer.
    assert_eq!(report.outputs, vec![(0, 0), (0, 0)]);
    assert!(report.metrics[1].copies >= 1);
}

#[test]
fn recv_watchdog_converts_hangs_into_panics() {
    let mut s = spec(2, 1);
    s.recv_timeout = Some(Duration::from_millis(200));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run(&s, |ctx| {
            if ctx.rank() == 0 {
                // Wrong tag: rank 0 waits for a message that never comes.
                let _ = ctx.recv(1, 12345);
            }
            // Rank 1 exits immediately.
        })
    }));
    assert!(result.is_err(), "hang was not detected");
}

#[test]
fn panic_on_one_rank_propagates_without_deadlock() {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run(&spec(4, 2), |ctx| {
            if ctx.rank() == 2 {
                panic!("boom on rank 2");
            }
            // Everyone else blocks on a message that never comes.
            let _ = ctx.recv(2, 99);
        })
    }));
    assert!(result.is_err());
}

#[test]
fn self_send_is_free_and_delivered() {
    let report = run(&spec(2, 1), |ctx| {
        if ctx.rank() == 0 {
            let chunk = ctx.my_block(64);
            ctx.send(0, 42, Parcel::one(Item::Plain(chunk)));
            let got = ctx.recv(0, 42);
            (got.items[0].origins()[0], ctx.clock_us())
        } else {
            (1, 0.0)
        }
    });
    let (origin, clock) = report.outputs[0];
    assert_eq!(origin, 0);
    // Self-loop link: no communication cost charged.
    assert_eq!(clock, 0.0);
}

#[test]
fn self_loop_traffic_is_excluded_from_metrics() {
    // A rank handing a parcel to itself is a local buffer move; none of
    // the Table II communication columns may count it.
    let report = run(&spec(2, 1), |ctx| {
        if ctx.rank() == 0 {
            let chunk = ctx.my_block(64);
            ctx.send(0, 42, Parcel::one(Item::Plain(chunk)));
            let _ = ctx.recv(0, 42);
        }
    });
    let m = report.metrics[0];
    assert_eq!(m.bytes_sent, 0, "self-send must not count bytes_sent");
    assert_eq!(m.payload_sent, 0, "self-send must not count payload_sent");
    assert_eq!(m.comm_rounds, 0, "self-receive must not count a round");
    assert_eq!(m.bytes_recv, 0, "self-receive must not count bytes_recv");
    assert_eq!(
        m.payload_recv, 0,
        "self-receive must not count payload_recv"
    );
}

#[test]
fn mixed_self_and_peer_traffic_counts_only_the_peer_leg() {
    let report = run(&spec(2, 1), |ctx| {
        if ctx.rank() == 0 {
            ctx.send(0, 1, Parcel::one(Item::Plain(ctx.my_block(32))));
            ctx.send(1, 2, Parcel::one(Item::Plain(ctx.my_block(10))));
            let _ = ctx.recv(0, 1);
        } else {
            let _ = ctx.recv(0, 2);
        }
    });
    // Sender: only the 10-byte intra-node leg counts.
    assert_eq!(report.metrics[0].bytes_sent, 10);
    assert_eq!(report.metrics[0].comm_rounds, 0);
    // Receiver: one genuine round.
    assert_eq!(report.metrics[1].comm_rounds, 1);
    assert_eq!(report.metrics[1].bytes_recv, 10);
}

#[test]
fn recv_watchdog_deadline_is_absolute_not_per_message() {
    // Rank 1 keeps feeding rank 0 messages with an unrelated tag at a
    // cadence shorter than the timeout. Under the buggy per-poll
    // interpretation each arrival restarts the clock and the watchdog
    // fires only long after the feeder stops; with an absolute deadline
    // it fires once the limit elapses regardless of traffic.
    let mut s = spec(2, 1);
    s.recv_timeout = Some(Duration::from_millis(200));
    let err = unwrap_err(
        try_run(&s, |ctx| {
            if ctx.rank() == 0 {
                // Waits for a tag that never arrives.
                let _ = ctx.recv(1, 999);
            } else {
                for _ in 0..8 {
                    std::thread::sleep(Duration::from_millis(60));
                    ctx.send(0, 1, Parcel::one(Item::Plain(ctx.my_block(1))));
                }
            }
        }),
        "watchdog did not fire",
    );
    // 8 feeds x 60 ms keep a per-poll timer alive past 480 ms; the absolute
    // deadline fires at ~200 ms. The error's `waited` field records when the
    // watchdog actually tripped (the run itself only returns once the feeder
    // thread exits). Generous margin for CI noise.
    match err.cause {
        FailureCause::Timeout { src, waited, .. } => {
            assert_eq!(src, 1);
            assert!(
                waited < Duration::from_millis(450),
                "watchdog waited {waited:?}; deadline is being reset per message"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn reset_accounting_clears_clock_and_metrics() {
    let report = run(&spec(2, 1), |ctx| {
        let sealed = ctx.encrypt(ctx.my_block(100));
        let _ = ctx.decrypt(sealed);
        assert!(ctx.clock_us() > 0.0);
        assert!(ctx.metrics().enc_rounds > 0);
        ctx.reset_accounting();
        (ctx.clock_us(), ctx.metrics())
    });
    for (clock, metrics) in report.outputs {
        assert_eq!(clock, 0.0);
        assert_eq!(metrics, Metrics::default());
    }
}

#[test]
fn charge_helpers_accumulate_copies() {
    let report = run(&spec(1, 1), |ctx| {
        ctx.charge_copy(1000);
        ctx.charge_strided_copy(1000);
        ctx.metrics()
    });
    let m = report.outputs[0];
    assert_eq!(m.copies, 2);
    assert_eq!(m.copy_bytes, 2000);
}

#[test]
fn phantom_fault_injection_is_inert() {
    // Legacy corruption only flips real bytes; a phantom run must complete.
    let mut s = spec(2, 2);
    s.mode = DataMode::Phantom;
    s.faults = FaultPlan {
        corrupt_nth_inter_frame: Some(0),
        ..FaultPlan::default()
    };
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            let sealed = ctx.encrypt(ctx.my_block(32));
            ctx.send(1, 1, Parcel::one(Item::Sealed(sealed)));
        } else {
            let got = ctx.recv(0, 1);
            let _ = ctx.decrypt(got.items[0].clone().into_sealed());
        }
    });
    assert_eq!(report.outputs.len(), 2);
}

#[test]
fn epochs_scope_slot_keys() {
    let report = run(&spec(2, 1), |ctx| {
        // Same (base, idx) in two epochs must address distinct slots.
        ctx.begin_collective();
        let k1 = ctx.slot(7, 0);
        ctx.begin_collective();
        let k2 = ctx.slot(7, 0);
        (k1, k2)
    });
    for (k1, k2) in report.outputs {
        assert_ne!(k1, k2);
        assert_eq!(k1.1, k2.1);
    }
}

#[test]
fn nic_contention_serializes_when_enabled() {
    // Two ranks on node 0 both send 1000 B to node 1. Unit model has
    // infinite NIC bandwidth, so use a custom profile.
    let mut profile = profile::unit();
    profile.model.nic_bandwidth = 1.0; // 1 B/µs, same as stream rate
    let spec = WorldSpec {
        topology: Topology::new(4, 2, Mapping::Block),
        profile,
        mode: DataMode::Phantom,
        suite: eag_crypto::CipherSuite::AesGcm128,
        nic_contention: true,
        capture_wire: false,
        trace: false,
        faults: FaultPlan::default(),
        retry: RetryPolicy::default(),
        recv_timeout: Some(Duration::from_secs(300)),
        suspect_after: None,
        workers: None,
        gate: None,
        shared_nics: None,
        session_id: 0,
        key: None,
    };
    let report = run(&spec, |ctx| match ctx.rank() {
        0 | 1 => {
            let chunk = ctx.my_block(1000);
            ctx.send(ctx.rank() + 2, 1, Parcel::one(Item::Plain(chunk)));
        }
        r => {
            let _ = ctx.recv(r - 2, 1);
        }
    });
    // One of the receivers sees its message delayed behind the other's
    // NIC occupancy: latencies 1001 and 2001.
    let mut recv_clocks = [report.clocks_us[2], report.clocks_us[3]];
    recv_clocks.sort_by(f64::total_cmp);
    assert_eq!(recv_clocks[0], 1001.0);
    assert_eq!(recv_clocks[1], 2001.0);
}

// ----- chaos transport --------------------------------------------------

/// A 2-rank, 2-node spec with chaos armed via `fault_nth_inter_frame`.
fn chaos_spec(kind: FaultKind) -> WorldSpec {
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        fault_nth_inter_frame: Some((0, kind)),
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    s
}

fn exchange_one(s: &WorldSpec, len: usize) -> RunReport<Vec<u8>> {
    run(s, move |ctx| {
        if ctx.rank() == 0 {
            let chunk = ctx.my_block(len);
            ctx.send(1, 1, Parcel::one(Item::Plain(chunk)));
            Vec::new()
        } else {
            let parcel = ctx.recv(0, 1);
            parcel.items[0].clone().into_plain().data.to_vec()
        }
    })
}

#[test]
fn dropped_frame_is_nacked_and_retransmitted() {
    let s = chaos_spec(FaultKind::Drop);
    let report = exchange_one(&s, 40);
    assert_eq!(report.outputs[1], crate::payload::pattern_block(1, 0, 40));
    // The receiver timed out at least once and NACKed; the sender (from its
    // linger loop) replayed the logged frame.
    assert!(report.metrics[1].nacks_sent >= 1, "no NACK was issued");
    assert!(report.metrics[0].retransmits >= 1, "no retransmission");
    assert_eq!(report.metrics[0].faults_injected, 1);
    // Accounting separation: the original frame only in bytes_sent, the
    // replay only in retransmit_bytes.
    assert_eq!(report.metrics[0].bytes_sent, 40);
    assert!(report.metrics[0].retransmit_bytes >= 40);
    assert_eq!(report.metrics[1].bytes_recv, 40);
}

#[test]
fn random_tamper_is_caught_by_transport_checksum() {
    let s = chaos_spec(FaultKind::Tamper);
    let report = exchange_one(&s, 32);
    // Recovered: the delivered bytes are the clean pattern.
    assert_eq!(report.outputs[1], crate::payload::pattern_block(1, 0, 32));
    assert!(
        report.metrics[1].faults_detected >= 1,
        "corruption went undetected"
    );
    assert!(report.metrics[0].retransmits >= 1);
}

#[test]
fn adversarial_tamper_is_caught_by_hop_verification() {
    // The adversary recomputes the transport checksum, so only the per-hop
    // GCM verification of the sealed item can catch the corruption.
    let mut s = chaos_spec(FaultKind::Tamper);
    s.faults.adversarial_tamper = true;
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            let sealed = ctx.encrypt(ctx.my_block(48));
            ctx.send(1, 1, Parcel::one(Item::Sealed(sealed)));
            Vec::new()
        } else {
            let parcel = ctx.recv(0, 1);
            let chunk = ctx.decrypt(parcel.items[0].clone().into_sealed());
            chunk.data.to_vec()
        }
    });
    assert_eq!(report.outputs[1], crate::payload::pattern_block(1, 0, 48));
    assert!(report.metrics[1].faults_detected >= 1);
    assert!(report.metrics[0].retransmits >= 1);
}

#[test]
fn duplicated_frame_is_deduplicated() {
    let s = chaos_spec(FaultKind::Duplicate);
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 1, Parcel::one(Item::Plain(ctx.my_block(8))));
            ctx.send(1, 2, Parcel::one(Item::Plain(ctx.my_block(16))));
            0
        } else {
            // Receiving tag 2 forces the duplicate of tag 1 (queued between
            // the two originals) through admission, where dedup counts it.
            let a = ctx.recv(0, 1).wire_len();
            let b = ctx.recv(0, 2).wire_len();
            a + b
        }
    });
    assert_eq!(report.outputs[1], 24);
    assert_eq!(report.metrics[1].dup_frames_dropped, 1);
    // Exactly two genuine rounds despite three deliveries.
    assert_eq!(report.metrics[1].comm_rounds, 2);
    assert_eq!(report.metrics[1].bytes_recv, 24);
}

#[test]
fn reordered_frames_are_delivered_in_sequence_order() {
    // Frame 0 of tag 1 is held back past frame 1 of the same tag; the
    // receiver must still observe stream order (8 bytes then 16 bytes).
    let s = chaos_spec(FaultKind::Reorder);
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 1, Parcel::one(Item::Plain(ctx.my_block(8))));
            ctx.send(1, 1, Parcel::one(Item::Plain(ctx.my_block(16))));
            (0, 0)
        } else {
            let a = ctx.recv(0, 1).wire_len();
            let b = ctx.recv(0, 1).wire_len();
            (a, b)
        }
    });
    assert_eq!(report.outputs[1], (8, 16), "stream order was not restored");
}

#[test]
fn dead_peer_fails_fast_with_typed_error() {
    let mut s = spec(2, 1);
    // No chaos: a finished peer can never send; must fail well before the
    // 300 s default watchdog.
    let started = Instant::now();
    s.recv_timeout = Some(Duration::from_secs(30));
    let err = unwrap_err(
        try_run(&s, |ctx| {
            if ctx.rank() == 0 {
                ctx.set_phase("demo-phase");
                let _ = ctx.recv(1, 77);
            }
            // Rank 1 exits immediately.
        }),
        "missing sender must fail the collective",
    );
    assert!(started.elapsed() < Duration::from_secs(5), "not fast");
    assert_eq!(err.rank, 0);
    assert_eq!(err.phase, "demo-phase");
    assert_eq!(err.cause, FailureCause::DeadPeer { peer: 1, tag: 77 });
}

#[test]
fn exhausted_retries_fail_with_typed_timeout() {
    let mut s = spec(2, 1);
    s.faults = FaultPlan {
        armed: true,
        ..FaultPlan::default()
    };
    s.retry = RetryPolicy {
        attempt_timeout: Duration::from_millis(5),
        max_attempts: 3,
        backoff: 1.0,
    };
    s.recv_timeout = Some(Duration::from_secs(30));
    let err = unwrap_err(
        try_run(&s, |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.recv(1, 5);
            } else {
                // Alive (so no DeadPeer) but never sending tag 5.
                std::thread::sleep(Duration::from_millis(300));
            }
        }),
        "silent peer must exhaust the retry budget",
    );
    assert_eq!(err.rank, 0);
    match err.cause {
        FailureCause::Timeout {
            src, tag, attempts, ..
        } => {
            assert_eq!(src, 1);
            assert_eq!(tag, 5);
            assert_eq!(attempts, 3);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn forged_ciphertext_fails_with_typed_auth_error() {
    // The legacy unrecovered adversary corrupts a sealed frame without
    // arming recovery: decrypt must raise a typed AuthFailure.
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        corrupt_nth_inter_frame: Some(0),
        ..FaultPlan::default()
    };
    let err = unwrap_err(
        try_run(&s, |ctx| {
            if ctx.rank() == 0 {
                let sealed = ctx.encrypt(ctx.my_block(24));
                ctx.send(1, 9, Parcel::one(Item::Sealed(sealed)));
            } else {
                let parcel = ctx.recv(0, 9);
                let _ = ctx.decrypt(parcel.items[0].clone().into_sealed());
            }
        }),
        "forged ciphertext must abort the collective",
    );
    assert_eq!(err.rank, 1);
    assert!(matches!(err.cause, FailureCause::AuthFailure { .. }));
}

#[test]
fn try_run_passes_reports_through_on_success() {
    let report = try_run(&spec(2, 1), |ctx| ctx.rank()).expect("clean run");
    assert_eq!(report.outputs, vec![0, 1]);
}

#[test]
fn armed_framing_at_zero_rate_changes_results_nothing() {
    // `armed` turns on sequence numbers, checksums, and the retransmit log
    // without injecting anything: results and traffic metrics must match a
    // plain run, and no recovery action may fire.
    let mut s = spec(4, 2);
    s.faults = FaultPlan {
        armed: true,
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    let run_ring = |s: &WorldSpec| {
        run(s, |ctx| {
            let p = ctx.p();
            let next = (ctx.rank() + 1) % p;
            let prev = (ctx.rank() + p - 1) % p;
            let mut got = Vec::new();
            let mut cur = Parcel::one(Item::Plain(ctx.my_block(16)));
            for _ in 0..p - 1 {
                cur = ctx.sendrecv(next, prev, 3, cur);
                got.push(cur.items[0].origins()[0]);
            }
            got
        })
    };
    let armed = run_ring(&s);
    let plain = run_ring(&spec(4, 2));
    assert_eq!(armed.outputs, plain.outputs);
    for (a, b) in armed.metrics.iter().zip(plain.metrics.iter()) {
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.comm_rounds, b.comm_rounds);
        assert_eq!(a.retries(), 0);
        assert_eq!(a.faults_injected, 0);
        assert_eq!(a.faults_detected, 0);
    }
}

#[test]
fn rate_based_chaos_recovers_a_multi_frame_stream() {
    // Aggressive rates over a long stream: every frame must still arrive,
    // in order, with clean bytes.
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        seed: 0xC0FFEE,
        drop_permille: 100,
        tamper_permille: 100,
        duplicate_permille: 50,
        reorder_permille: 50,
        delay_permille: 50,
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    let n = 40usize;
    let report = run(&s, move |ctx| {
        if ctx.rank() == 0 {
            for i in 0..n {
                ctx.send(1, 4, Parcel::one(Item::Plain(ctx.my_block(8 + i))));
            }
            Vec::new()
        } else {
            (0..n).map(|_| ctx.recv(0, 4).wire_len()).collect()
        }
    });
    let want: Vec<usize> = (0..n).map(|i| 8 + i).collect();
    assert_eq!(report.outputs[1], want, "stream corrupted or misordered");
    assert!(
        report.metrics[0].faults_injected > 0,
        "rates injected nothing — weak test"
    );
    assert!(report.metrics[1].retries() > 0);
    // Traffic metrics stay fault-independent.
    let sent: usize = want.iter().sum();
    assert_eq!(report.metrics[0].bytes_sent as usize, sent);
    assert_eq!(report.metrics[1].bytes_recv as usize, sent);
    assert_eq!(report.metrics[1].comm_rounds as usize, n);
}

#[test]
fn sent_log_clone_is_zero_copy_and_tamper_is_cow() {
    // The retransmit log stores `parcel.clone()` — with rope payloads that
    // is a refcount bump, not a deep copy. The tamper flip that follows in
    // `send()` is copy-on-write, so the logged (pre-fault) frame replayed by
    // a NACK still carries the original bytes.
    let wire: Vec<u8> = (0u8..=63).collect();
    let mut parcel = Parcel::one(Item::Sealed(Sealed {
        origins: vec![0],
        block_len: 36,
        plain_len: 36,
        data: Data::Real(wire.clone().into()),
    }));
    eag_rope::probe::reset();
    let logged = parcel.clone(); // what send() pushes into the sent_log
    assert_eq!(
        eag_rope::probe::snapshot().copied_bytes,
        0,
        "logging a frame copied payload bytes"
    );
    let before = logged.checksum();
    corrupt_parcel(&mut parcel);
    assert_ne!(parcel.checksum(), before, "tamper had no effect");
    assert_eq!(logged.checksum(), before, "tamper leaked into the log");
    assert_eq!(logged.items[0].clone().into_sealed().data.to_vec(), wire);
}

#[test]
fn slices_of_one_buffer_are_safely_shared_across_threads() {
    // Rank 0 freezes one buffer, sends two slice views of it to two other
    // rank threads, and keeps reading the parent rope itself: three threads
    // observing the same refcounted buffer concurrently.
    let report = run(&spec(3, 1), |ctx| {
        if ctx.rank() == 0 {
            let rope = ctx.my_block(64).data.rope().clone();
            for (dst, range) in [(1usize, 0..32), (2usize, 32..64)] {
                let part = Chunk {
                    origins: vec![0],
                    block_len: 32,
                    data: Data::Real(rope.slice(range)),
                };
                ctx.send(dst, 1, Parcel::one(Item::Plain(part)));
            }
            rope.to_vec()
        } else {
            ctx.recv(0, 1).items[0].clone().into_plain().data.to_vec()
        }
    });
    let whole = crate::payload::pattern_block(1, 0, 64);
    assert_eq!(report.outputs[0], whole);
    assert_eq!(report.outputs[1], whole[..32]);
    assert_eq!(report.outputs[2], whole[32..]);
}

// ----- crash tolerance --------------------------------------------------

/// A 2-rank, 2-node spec whose fault plan kills rank 0 per `crash`.
fn crash_spec(crash: Crash) -> WorldSpec {
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        crashes: vec![crash],
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    s
}

#[test]
fn soft_crash_resolves_blocked_recv_without_waiting_out_the_deadline() {
    // Rank 0 dies before its first send; rank 1 is blocked on that message.
    // The crash notice must resolve the receive in milliseconds, not after
    // the 300 s recv_timeout or the full retry budget.
    let mut s = crash_spec(Crash::before(0, 0));
    s.trace = true;
    let t0 = Instant::now();
    let report = run_crashable(&s, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, Parcel::one(Item::Plain(ctx.my_block(16))));
            None
        } else {
            Some(ctx.try_recv(0, 7))
        }
    });
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "crash detection took {:?}",
        t0.elapsed()
    );
    assert_eq!(report.crashed, vec![0]);
    assert!(report.outputs[0].is_none());
    let got = report.outputs[1].clone().expect("survivor output");
    assert_eq!(
        got.expect("closure ran on rank 1").unwrap_err(),
        FailureCause::Crash { rank: 0 }
    );
    assert_eq!(report.metrics[1].crashes_detected, 1);
    assert_eq!(report.wiretap.crashed_ranks(), vec![0]);
    // Both the dying rank and the detector recorded Crash markers.
    for rank in 0..2 {
        assert!(
            report.traces[rank]
                .iter()
                .any(|e| matches!(e.kind, EventKind::Crash { rank: 0 })),
            "rank {rank} trace missing crash marker"
        );
    }
}

#[test]
fn crash_after_send_delivers_the_final_frame_first() {
    // `after_send` kills rank 0 *after* frame 0 left: rank 1 still gets it.
    let report = run_crashable(&crash_spec(Crash::after(0, 0)), |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, Parcel::one(Item::Plain(ctx.my_block(16))));
            unreachable!("rank 0 must die inside the send");
        }
        let first = ctx.try_recv(0, 7).map(|p| p.wire_len());
        let second = ctx.try_recv(0, 8).map(|p| p.wire_len());
        (first, second)
    });
    assert_eq!(report.crashed, vec![0]);
    let (first, second) = report.outputs[1].clone().expect("survivor output");
    assert_eq!(first, Ok(16), "frame sent before the crash must arrive");
    assert_eq!(
        second.unwrap_err(),
        FailureCause::Crash { rank: 0 },
        "frame after the crash point must fail via the detector"
    );
}

#[test]
fn hard_crash_is_suspected_after_silent_departure() {
    // A hard crash leaves no notice: survivors learn of it only from the
    // scheduler's departure record, suspected after the grace period.
    let mut s = crash_spec(Crash::before(0, 0).hard());
    s.suspect_after = Some(Duration::from_millis(100));
    let t0 = Instant::now();
    let report = run_crashable(&s, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, Parcel::one(Item::Plain(ctx.my_block(16))));
            None
        } else {
            Some(ctx.try_recv(0, 7))
        }
    });
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "silent-departure suspicion took {:?}",
        t0.elapsed()
    );
    assert_eq!(report.crashed, vec![0]);
    let got = report.outputs[1].clone().expect("survivor output");
    assert_eq!(
        got.expect("closure ran on rank 1").unwrap_err(),
        FailureCause::Crash { rank: 0 }
    );
}

#[test]
fn busy_rank_is_never_suspected_however_small_the_threshold() {
    // Regression: the old detector compared wall-clock heartbeat
    // timestamps, so a rank that was merely busy (or descheduled in an
    // oversubscribed world) for longer than `suspect_after` was falsely
    // declared crashed. Suspicion now requires a scheduler *departure*; a
    // live rank that never parks and never beats anything must still be
    // waited for, even under an absurdly small threshold.
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        armed: true,
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    s.suspect_after = Some(Duration::from_millis(1));
    let report = run(&s, |ctx| {
        if ctx.rank() == 0 {
            // Busy, silent, live — for 50x the suspicion threshold.
            std::thread::sleep(Duration::from_millis(50));
            ctx.send(1, 7, Parcel::one(Item::Plain(ctx.my_block(16))));
            0
        } else {
            ctx.recv(0, 7).payload_len()
        }
    });
    assert_eq!(report.outputs, vec![0, 16]);
    assert_eq!(
        report.metrics[1].crashes_detected, 0,
        "live busy rank was falsely suspected"
    );
}

#[test]
fn crash_under_plain_run_surfaces_a_typed_error() {
    // Regression: `run` on a crash-injected world used to die on an opaque
    // `expect("rank produced no output")`-style panic; it must raise a
    // typed `CollectiveError` that `try_run` surfaces as a value.
    let s = crash_spec(Crash::before(0, 0));
    let err = unwrap_err(
        try_run(&s, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Parcel::one(Item::Plain(ctx.my_block(16))));
                0
            } else {
                ctx.try_recv(0, 7).map(|p| p.payload_len()).unwrap_or(0)
            }
        }),
        "plain run of a crashed world must fail",
    );
    assert_eq!(err.cause, FailureCause::Crash { rank: 0 });
    assert_eq!(err.phase, "collect");
}

#[test]
fn rank_seeds_are_distinct_and_never_the_raw_world_seed() {
    // Regression: `seed ^ (rank * FNV)` is the identity for rank 0, so
    // rank 0's nonce RNG was seeded with the raw world seed.
    for seed in [0u64, 1, 0xFA57, u64::MAX] {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..1024 {
            let mixed = mix_rank_seed(seed, rank);
            assert_ne!(mixed, seed, "rank {rank} reuses the world seed {seed}");
            assert!(seen.insert(mixed), "rank {rank} collides at seed {seed}");
        }
    }
}

#[test]
fn single_worker_world_interleaves_cooperatively() {
    // Deterministic interleaving: with a one-permit gate, only one rank
    // runs at a time and every park/yield hands the permit over. A full
    // ring exchange must still complete (no lost wakeups, no permit leaks).
    let mut s = spec(4, 2);
    s.workers = Some(1);
    let report = run(&s, |ctx| {
        let p = ctx.p();
        let me = ctx.rank();
        let mut seen = 0usize;
        for round in 0..p - 1 {
            ctx.yield_now();
            let parcel = ctx.sendrecv(
                (me + 1) % p,
                (me + p - 1) % p,
                round as u64,
                Parcel::one(Item::Plain(ctx.my_block(8))),
            );
            seen += parcel.payload_len();
        }
        seen
    });
    assert_eq!(report.outputs, vec![24; 4]);
}

#[test]
fn same_node_crash_unblocks_shared_memory_waiters() {
    // Ranks 0 and 1 share node 0. Rank 0 dies before depositing; rank 1 is
    // blocked in a shared-memory fetch and must fail over via the segment's
    // crash abort rather than deadlock.
    let mut s = spec(4, 2);
    s.faults = FaultPlan {
        crashes: vec![Crash::before(0, 0)],
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    let report = run_crashable(&s, |ctx| {
        match ctx.rank() {
            // The doomed rank: sending to rank 2 trips the crash.
            0 => {
                ctx.send(2, 9, Parcel::one(Item::Plain(ctx.my_block(8))));
                None
            }
            // Same-node sibling blocked on rank 0's deposit.
            1 => {
                let key = ctx.slot(5, 0);
                Some(ctx.try_shared_fetch(key).map(|_| ()))
            }
            // Off-node ranks: blocked on the doomed rank's message.
            _ => Some(ctx.try_recv(0, 9).map(|_| ())),
        }
    });
    assert_eq!(report.crashed, vec![0]);
    let sibling = report.outputs[1].clone().expect("rank 1 output");
    assert_eq!(
        sibling.expect("closure ran on rank 1").unwrap_err(),
        FailureCause::Crash { rank: 0 }
    );
    for rank in 2..4 {
        let got = report.outputs[rank].clone().expect("survivor output");
        assert_eq!(
            got.expect("closure ran on survivor").unwrap_err(),
            FailureCause::Crash { rank: 0 }
        );
    }
}

#[test]
fn aborted_attempt_resolves_peers_blocked_in_their_own_attempts() {
    // Rank 1 abandons its attempt (as if cascading from a crash elsewhere);
    // rank 0, blocked inside its own attempt on rank 1's next message, must
    // resolve through the detector instead of timing out.
    let mut s = crash_spec(Crash::before(2, 0)); // arms chaos; rank 2 absent
    s.topology = Topology::new(2, 2, Mapping::Block);
    s.faults = FaultPlan {
        armed: true,
        ..FaultPlan::default()
    };
    let report = run_crashable(&s, |ctx| {
        ctx.begin_attempt();
        if ctx.rank() == 1 {
            ctx.abort_attempt(1); // blame self: the cascade's root is here
            ctx.try_recv(0, 3).map(|_| ()) // read the release signal
        } else {
            let got = ctx.try_recv(1, 2).map(|_| ());
            ctx.abort_attempt(1);
            ctx.send(1, 3, Parcel::one(Item::Plain(ctx.my_block(4))));
            got
        }
    });
    let got = report.outputs[0].clone().expect("rank 0 output");
    // The abandonment carries its blame, so rank 0's cascaded failure is
    // attributed to the rank the aborter named.
    assert_eq!(got.unwrap_err(), FailureCause::Crash { rank: 1 });
    assert!(report.crashed.is_empty(), "no rank actually died");
}

#[test]
fn stale_aborts_from_an_earlier_attempt_do_not_leak_into_the_next() {
    // Rank 1 abandons attempt 1; both ranks then run attempt 2 cleanly.
    // Rank 0's attempt-2 receive must wait for rank 1's real message
    // instead of resolving through rank 1's stale attempt-1 abort.
    let mut s = spec(2, 2);
    s.faults = FaultPlan {
        armed: true,
        ..FaultPlan::default()
    };
    s.retry = fast_retry();
    let report = run(&s, |ctx| {
        ctx.begin_attempt();
        if ctx.rank() == 1 {
            ctx.abort_attempt(1);
        } else {
            let got = ctx.try_recv(1, 2);
            ctx.abort_attempt(1);
            assert!(got.is_err(), "attempt-1 receive must cascade");
        }
        // Attempt 2: the stale abort serial (1) is below the new serial
        // (2), so receives block for real data again.
        ctx.begin_attempt();
        let out = if ctx.rank() == 1 {
            ctx.send(0, 5, Parcel::one(Item::Plain(ctx.my_block(4))));
            4
        } else {
            ctx.try_recv(1, 5)
                .expect("live peer, live attempt")
                .payload_len()
        };
        ctx.complete_attempt();
        out
    });
    assert_eq!(report.outputs, vec![4, 4]);
}
